(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6).

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- figure9   -- one artifact
     dune exec bench/main.exe -- fast      -- reduced sweeps

   Sections:
     table1   - the program inventory (Table 1)
     figure9  - PAD vs MULTILVLPAD: miss rates + model-time improvements
     figure10 - GROUPPAD vs GROUPPAD+L2MAXPAD on the group-reuse programs
     figure11 - miss rates over problem sizes 250-520 (EXPL, SHAL)
     figure12 - change in L2/memory refs and miss rates from fusion (EXPL)
     figure13 - MFLOPS of tiled matrix multiply over matrix sizes
     predict  - analytical miss prediction vs the simulator
     bechamel - real wall-clock timings of the native kernels
     ablation - extra studies (associativity, 3-level hierarchy,
                Song-Li time tiling, write policy, footnote-1 prefetch)

   Simulated "execution time" uses the UltraSparc-flavoured cost model
   (see DESIGN.md): the paper's own conclusion — miss-rate wins rarely
   move wall-clock time — shows up as small percentages here too. *)

open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality

let machine = Cs.Machine.ultrasparc

let fast = ref false

(* ----------------------------------------------------------------- *)
(* Table 1                                                            *)
(* ----------------------------------------------------------------- *)

let table1 () =
  let rows =
    List.map
      (fun (e : K.Registry.entry) ->
        let p = e.K.Registry.build () in
        [
          e.K.Registry.name;
          e.K.Registry.description;
          K.Registry.category_name e.K.Registry.category;
          string_of_int e.K.Registry.paper_lines;
          string_of_int (List.length p.Program.arrays);
          string_of_int (List.length p.Program.nests);
        ])
      K.Registry.all
  in
  L.Report.table ~title:"Table 1: test programs"
    ~columns:[ "Program"; "Description"; "Suite"; "Paper LoC"; "Arrays"; "Nests" ]
    rows

(* ----------------------------------------------------------------- *)
(* Figure 9: PAD and MULTILVLPAD                                      *)
(* ----------------------------------------------------------------- *)

let fig9_programs () =
  let shrink n = if !fast then max 64 (n / 4) else n in
  let build name =
    let e = K.Registry.find name in
    match e.K.Registry.build_sized with
    | Some f when !fast -> (
        match name with
        | "EXPL512" | "JACOBI512" | "SHAL512" | "HYDRO2D" | "SWIM" -> f (shrink 512)
        | "ADI32" -> f 128
        | "LINPACKD" -> f 128
        | "IRR500K" -> f 100_000
        | "BUK" | "EMBAR" -> f 250_000
        | "CGM" -> f 20_000
        | "FFTPDE" -> f 65_536
        | _ -> e.K.Registry.build ())
    | _ -> e.K.Registry.build ()
  in
  List.map
    (fun (e : K.Registry.entry) -> (String.lowercase_ascii e.K.Registry.name, build e.K.Registry.name))
    K.Registry.all

let figure9 () =
  let strategies =
    [ L.Pipeline.Original; L.Pipeline.Pad_l1; L.Pipeline.Pad_multilevel ]
  in
  let rows =
    List.map
      (fun (name, p) ->
        let outcomes = List.map (fun s -> L.Experiment.run_strategy machine s p) strategies in
        match outcomes with
        | [ orig; l1; both ] ->
            [
              name;
              L.Report.pct (L.Experiment.miss_rate_pct orig 0);
              L.Report.pct (L.Experiment.miss_rate_pct l1 0);
              L.Report.pct (L.Experiment.miss_rate_pct both 0);
              L.Report.pct (L.Experiment.miss_rate_pct orig 1);
              L.Report.pct (L.Experiment.miss_rate_pct l1 1);
              L.Report.pct (L.Experiment.miss_rate_pct both 1);
              L.Report.pct (L.Experiment.time_improvement ~baseline:orig l1);
              L.Report.pct (L.Experiment.time_improvement ~baseline:orig both);
            ]
        | _ -> assert false)
      (fig9_programs ())
  in
  L.Report.table
    ~title:
      "Figure 9: PAD (L1 Opt) and MULTILVLPAD (L1&L2 Opt) — miss rates and \
       model-time improvement"
    ~columns:
      [
        "program";
        "L1 Orig"; "L1 w/L1"; "L1 w/L1&L2";
        "L2 Orig"; "L2 w/L1"; "L2 w/L1&L2";
        "dT w/L1"; "dT w/L1&L2";
      ]
    rows;
  print_endline
    "\nExpected shape (paper): L1-only PAD already recovers most of the L2\n\
     miss-rate reduction; MULTILVLPAD is only slightly better on L2 (mostly\n\
     EXPL); L1 rates are unaffected by the L2 pass; time deltas are small."

(* ----------------------------------------------------------------- *)
(* Figure 10: GROUPPAD and L2MAXPAD                                   *)
(* ----------------------------------------------------------------- *)

let figure10 () =
  let size n = if !fast then max 64 (n / 4) else n in
  let programs =
    [
      ("expl512", K.Livermore.expl (size 512));
      ("jacobi512", K.Livermore.jacobi (size 512));
      ("shal512", K.Livermore.shal (size 512));
      ("swim", K.Spec.swim (size 512));
      ("tomcatv", K.Spec.tomcatv (size 257));
    ]
  in
  let strategies =
    [ L.Pipeline.Original; L.Pipeline.Grouppad_l1; L.Pipeline.Grouppad_l1_l2 ]
  in
  let rows =
    List.map
      (fun (name, p) ->
        match List.map (fun s -> L.Experiment.run_strategy machine s p) strategies with
        | [ orig; l1; both ] ->
            [
              name;
              L.Report.pct (L.Experiment.miss_rate_pct orig 0);
              L.Report.pct (L.Experiment.miss_rate_pct l1 0);
              L.Report.pct (L.Experiment.miss_rate_pct both 0);
              L.Report.pct (L.Experiment.miss_rate_pct orig 1);
              L.Report.pct (L.Experiment.miss_rate_pct l1 1);
              L.Report.pct (L.Experiment.miss_rate_pct both 1);
              L.Report.pct (L.Experiment.time_improvement ~baseline:orig l1);
              L.Report.pct (L.Experiment.time_improvement ~baseline:orig both);
            ]
        | _ -> assert false)
      programs
  in
  L.Report.table
    ~title:
      "Figure 10: GROUPPAD (L1 Opt) with and without L2MAXPAD (L1&L2 Opt)"
    ~columns:
      [
        "program";
        "L1 Orig"; "L1 w/L1"; "L1 w/L1&L2";
        "L2 Orig"; "L2 w/L1"; "L2 w/L1&L2";
        "dT w/L1"; "dT w/L1&L2";
      ]
    rows;
  print_endline
    "\nExpected shape (paper): optimizing for the L2 cache in addition to L1\n\
     helps in few programs (EXPL benefits on L2); L1 miss rates are not\n\
     adversely affected; execution-time changes stay small."

(* ----------------------------------------------------------------- *)
(* Figure 11: problem-size sweep                                      *)
(* ----------------------------------------------------------------- *)

let sweep_one ~build ~lo ~hi ~step =
  let rec sizes n = if n > hi then [] else n :: sizes (n + step) in
  List.map
    (fun n ->
      let p = build n in
      let l1_opt = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1 p in
      let both = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1_l2 p in
      ( n,
        [
          L.Experiment.miss_rate_pct l1_opt 0;
          L.Experiment.miss_rate_pct l1_opt 1;
          L.Experiment.miss_rate_pct both 0;
          L.Experiment.miss_rate_pct both 1;
        ] ))
    (sizes lo)

let figure11 () =
  let step = if !fast then 30 else 3 in
  let run name build =
    let points = sweep_one ~build ~lo:250 ~hi:520 ~step in
    L.Report.series
      ~title:(Printf.sprintf "Figure 11 (%s): miss rates over problem sizes" name)
      ~x_label:"N"
      ~labels:
        [ "L1 w/L1Opt"; "L2 w/L1Opt"; "L1 w/L1&L2"; "L2 w/L1&L2" ]
      points
  in
  run "EXPL" K.Livermore.expl;
  run "SHAL" (fun n -> K.Livermore.shal n);
  print_endline
    "\nExpected shape (paper): L1 curves of the two versions coincide; the\n\
     L1-only version shows clusters of sizes where the L2 miss rate spikes\n\
     by a few percent; the L1&L2 version's L2 curve stays flat."

(* ----------------------------------------------------------------- *)
(* Figure 12: loop fusion on EXPL                                     *)
(* ----------------------------------------------------------------- *)

let figure12 () =
  let step = if !fast then 50 else 6 in
  let l1_size = Cs.Machine.s1 machine in
  let rec sizes n = if n > 700 then [] else n :: sizes (n + step) in
  let points =
    List.filter_map
      (fun n ->
        let orig = K.Livermore.expl n in
        match Locality.Fusion.fuse_program orig 1 with
        | exception L.Fusion.Illegal _ -> None
        | fused ->
            (* Model accounting under GROUPPAD, with L2MAXPAD assumed to
               preserve on L2 whatever L1 loses (paper's setup).  The
               paper's static counts compare the two original loop bodies
               against the fused body, so peeled prologue/epilogue
               iterations are excluded: the fused core is the nest with
               the largest body. *)
            let n76 = List.nth orig.Program.nests 1
            and n77 = List.nth orig.Program.nests 2 in
            let core =
              List.fold_left
                (fun best nest ->
                  if List.length (Nest.refs nest) > List.length (Nest.refs best)
                  then nest
                  else best)
                (List.hd fused.Program.nests)
                fused.Program.nests
            in
            let lay_o = L.Pipeline.layout_for machine L.Pipeline.Grouppad_l1 orig in
            let lay_f = L.Pipeline.layout_for machine L.Pipeline.Grouppad_l1 fused in
            let count lay nests = An.Fusion_model.count lay ~l1_size nests in
            let co = count lay_o [ n76; n77 ] and cf = count lay_f [ core ] in
            let d_l2 = cf.An.Fusion_model.l2_refs - co.An.Fusion_model.l2_refs in
            let d_mem = cf.An.Fusion_model.memory_refs - co.An.Fusion_model.memory_refs in
            (* Simulated miss-rate change, normalized to the original
               version's reference count as in the paper. *)
            let ro = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1_l2 orig in
            let rf = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1_l2 fused in
            let refs_o = float_of_int ro.L.Experiment.result.Interp.total_refs in
            let miss o i = float_of_int (List.nth o.L.Experiment.result.Interp.misses i) in
            let d_l1_rate = 100.0 *. (miss rf 0 -. miss ro 0) /. refs_o in
            let d_l2_rate = 100.0 *. (miss rf 1 -. miss ro 1) /. refs_o in
            Some (n, [ float_of_int d_l2; float_of_int d_mem; d_l1_rate; d_l2_rate ]))
      (sizes 250)
  in
  L.Report.series
    ~title:
      "Figure 12: change in L2 refs, memory refs (model) and miss rates \
       (simulated) from fusing EXPL nests 76+77"
    ~x_label:"N"
    ~labels:[ "dL2refs"; "dMemRefs"; "dL1miss%"; "dL2miss%" ]
    points;
  print_endline
    "\nExpected shape (paper): memory references drop by a constant as a\n\
     result of fusion while the change in L2 references oscillates >= 0\n\
     depending on problem size; the simulated L1 miss-rate change tracks\n\
     the L2-reference count and the L2 miss-rate change tracks the memory\n\
     reference count (flat, negative)."

(* ----------------------------------------------------------------- *)
(* Figure 13: tiled matrix multiplication                             *)
(* ----------------------------------------------------------------- *)

let tile_variants n =
  let elem = 8 in
  let l1 = 16 * 1024 and l2 = 512 * 1024 in
  let sel ~cache ~cap =
    L.Tile_size.select ~capacity_bytes:cap ~cache_bytes:cache ~elem ~col_elems:n
      ~rows:n ()
  in
  [
    ("L1", sel ~cache:l1 ~cap:l1);
    ("2xL1", sel ~cache:l2 ~cap:(2 * l1));
    ("4xL1", sel ~cache:l2 ~cap:(4 * l1));
    ("L2", sel ~cache:l2 ~cap:l2);
  ]

let figure13 () =
  let step = if !fast then 72 else 18 in
  let rec sizes n = if n > 400 then [] else n :: sizes (n + step) in
  let mflops p =
    let r = Interp.run machine (Layout.initial p) p in
    r.Interp.mflops
  in
  let points =
    List.map
      (fun n ->
        let orig = mflops (L.Tiling.matmul n) in
        let tiled =
          List.map
            (fun (_, t) ->
              mflops
                (L.Tiling.tiled_matmul ~n ~h:t.L.Tile_size.height
                   ~w:t.L.Tile_size.width))
            (tile_variants n)
        in
        (n, orig :: tiled))
      (sizes 100)
  in
  L.Report.series
    ~title:
      "Figure 13: simulated MFLOPS of matrix multiply under tile-size policies"
    ~x_label:"N"
    ~labels:[ "Orig"; "L1"; "2xL1"; "4xL1"; "L2" ]
    points;
  (* also print the chosen tiles for reference *)
  let tiles_at = [ 100; 200; 300; 400 ] in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun (_, t) ->
               Printf.sprintf "%dx%d" t.L.Tile_size.height t.L.Tile_size.width)
             (tile_variants n))
      tiles_at
  in
  L.Report.table ~title:"Figure 13 (tiles chosen by eucPad-style selection)"
    ~columns:[ "N"; "L1"; "2xL1"; "4xL1"; "L2" ]
    rows;
  print_endline
    "\nExpected shape (paper): L1-sized tiles give the best and steadiest\n\
     performance; L2-sized tiles only help once matrices exceed the L2\n\
     cache and never beat L1 tiles; 2xL1/4xL1 fall in between (most L1\n\
     benefit is lost as soon as tiles exceed the L1 cache)."

(* ----------------------------------------------------------------- *)
(* Ablations beyond the paper's figures                               *)
(* ----------------------------------------------------------------- *)

let ablation () =
  (* (a) associativity: run PAD-optimized layouts on k-way machines, and
     compare the direct-mapped assumption against an explicitly
     associativity-aware PAD.  The paper's claim: treating k-way caches
     as direct-mapped loses almost nothing. *)
  let p = K.Livermore.jacobi (if !fast then 128 else 512) in
  let layout_orig = Layout.initial p in
  let layout_pad = L.Pipeline.layout_for machine L.Pipeline.Pad_l1 p in
  let s1 = Cs.Machine.s1 machine in
  let l1_line = Cs.Machine.level_line machine 0 in
  let rows =
    List.map
      (fun k ->
        let m = if k = 1 then machine else Cs.Machine.with_associativity k machine in
        let layout_assoc =
          L.Pad.apply_assoc ~size:s1 ~line:l1_line ~assoc:k p layout_orig
        in
        let r_orig = Interp.run m layout_orig p in
        let r_pad = Interp.run m layout_pad p in
        let r_assoc = Interp.run m layout_assoc p in
        [
          string_of_int k;
          L.Report.pct (100.0 *. List.nth r_orig.Interp.miss_rates 0);
          L.Report.pct (100.0 *. List.nth r_pad.Interp.miss_rates 0);
          L.Report.pct (100.0 *. List.nth r_assoc.Interp.miss_rates 0);
          L.Report.pct
            (Cs.Cost_model.improvement ~orig:r_orig.Interp.cycles
               ~opt:r_pad.Interp.cycles);
          L.Report.pct
            (Cs.Cost_model.improvement ~orig:r_orig.Interp.cycles
               ~opt:r_assoc.Interp.cycles);
        ])
      [ 1; 2; 4 ]
  in
  L.Report.table
    ~title:
      "Ablation: direct-mapped PAD vs associativity-aware PAD on k-way \
       caches (JACOBI)"
    ~columns:
      [ "assoc"; "L1 Orig"; "L1 PAD(dm)"; "L1 PAD(assoc)"; "dT dm"; "dT assoc" ]
    rows;
  (* (b) three-level hierarchy: MULTILVLPAD with (S1, Lmax) on an
     Alpha-21164-style machine. *)
  let alpha = Cs.Machine.alpha21164 in
  let p = K.Livermore.expl (if !fast then 128 else 512) in
  let rows =
    List.map
      (fun (label, strategy) ->
        let o = L.Experiment.run_strategy alpha strategy p in
        label
        :: List.map
             (fun i -> L.Report.pct (L.Experiment.miss_rate_pct o i))
             [ 0; 1; 2 ])
      [
        ("Orig", L.Pipeline.Original);
        ("PAD(L1)", L.Pipeline.Pad_l1);
        ("MULTILVLPAD", L.Pipeline.Pad_multilevel);
      ]
  in
  L.Report.table
    ~title:"Ablation: three-level hierarchy (8K/128K/2M), EXPL"
    ~columns:[ "version"; "L1"; "L2"; "L3" ]
    rows;
  (* (c) the Section 5 exception (Song & Li): tiling across time steps.
     The tile's working set is block+steps columns — too big for L1 at
     any block size — so the tile targets the L2 cache. *)
  let n = if !fast then 256 else 512 in
  let steps = 8 in
  let col_bytes = n * 8 in
  let l2_cols = Cs.Machine.level_size machine 1 / col_bytes in
  let per_ref p =
    let r = Interp.run machine (Layout.initial p) p in
    (r.Interp.cycles /. float_of_int r.Interp.total_refs, r)
  in
  let untiled, _ = per_ref (K.Time_kernels.sweep_2d ~n ~steps) in
  let rows =
    [ [ "untiled sweeps"; "-"; Printf.sprintf "%.3f" untiled ] ]
    @ List.map
        (fun (label, block) ->
          let cols = K.Time_kernels.tile_columns ~steps ~block in
          let cyc, _ = per_ref (K.Time_kernels.time_tiled_2d ~n ~steps ~block) in
          [
            label;
            Printf.sprintf "%d cols = %dK" cols (cols * col_bytes / 1024);
            Printf.sprintf "%.3f" cyc;
          ])
        [
          ("tiny block (L1-ish)", 1);
          ("half-L2 block", max 1 ((l2_cols / 2) - steps));
          ("over-L2 block", 2 * l2_cols);
        ]
  in
  L.Report.table
    ~title:
      (Printf.sprintf
         "Ablation (Song & Li exception): time-step tiling of a %dx%d sweep, \
          %d steps — tile working set vs cycles/ref"
         n n steps)
    ~columns:[ "version"; "tile working set"; "cycles/ref" ]
    rows;
  print_endline
    "\nExpected shape (paper, Section 5): no time-step tile fits the L1\n\
     cache, so the tiling targets L2; blocks sized for the L2 beat both\n\
     the untiled sweeps and over-L2 blocks.";
  (* (d) write policy: the paper's simulator allocates on writes; check
     how much the policy choice moves the reported miss rates. *)
  let p = K.Livermore.jacobi (if !fast then 128 else 512) in
  let layout = L.Pipeline.layout_for machine L.Pipeline.Pad_l1 p in
  let run ~write_allocate =
    let h = Cs.Hierarchy.create ~write_allocate machine.Cs.Machine.geometries in
    ignore (Interp.feed h layout p);
    let rates = Cs.Hierarchy.miss_rates h in
    (rates, Cs.Hierarchy.writebacks h)
  in
  let wa, wb_wa = run ~write_allocate:true in
  let nwa, wb_nwa = run ~write_allocate:false in
  let rows =
    [
      [ "write-allocate (paper)";
        L.Report.pct (100.0 *. List.nth wa 0);
        L.Report.pct (100.0 *. List.nth wa 1);
        string_of_int wb_wa ];
      [ "no-allocate";
        L.Report.pct (100.0 *. List.nth nwa 0);
        L.Report.pct (100.0 *. List.nth nwa 1);
        string_of_int wb_nwa ];
    ]
  in
  L.Report.table
    ~title:"Ablation: write policy on padded JACOBI (miss rates + writebacks)"
    ~columns:[ "policy"; "L1"; "L2"; "writebacks" ]
    rows;
  (* (e) hardware next-line prefetching — the paper's footnote 1: DOT
     improved "due to the differences in the ability of the underlying
     memory system to handle multiple outstanding cache misses, since the
     two input vectors were padded 64 instead of 32 bytes due to the
     longer L2 cache lines".  With a sequential prefetcher the mechanism
     is visible: PAD's one-line (32B) separation puts each vector's
     prefetch stream on top of the other vector's demand stream, while
     MULTILVLPAD's Lmax = 64B separation keeps the streams disjoint. *)
  let run_pf p layout prefetch_levels =
    let h =
      Cs.Hierarchy.create ~prefetch_levels machine.Cs.Machine.geometries
    in
    ignore (Interp.feed h layout p);
    Cs.Hierarchy.miss_rates h
  in
  let p = K.Livermore.dot (if !fast then 65_536 else 262_144) in
  let layouts =
    [
      ("packed", Layout.initial p);
      ("PAD (32B pads)", L.Pipeline.layout_for machine L.Pipeline.Pad_l1 p);
      ("MULTILVLPAD (64B pads)",
       L.Pipeline.layout_for machine L.Pipeline.Pad_multilevel p);
    ]
  in
  let rows =
    List.concat_map
      (fun (label, layout) ->
        List.map
          (fun (pf_label, pf) ->
            let rates = run_pf p layout pf in
            [
              label ^ ", " ^ pf_label;
              L.Report.pct (100.0 *. List.nth rates 0);
              L.Report.pct (100.0 *. List.nth rates 1);
            ])
          [ ("no prefetch", []); ("next-line prefetch", [ 0; 1 ]) ])
      layouts
  in
  L.Report.table
    ~title:
      "Ablation (footnote 1): next-line prefetching on DOT under the three \
       layouts"
    ~columns:[ "configuration"; "L1"; "L2" ]
    rows;
  print_endline
    "\nExpected shape (paper footnote 1): prefetching cannot rescue the\n\
     packed ping-pong; under PAD's minimal 32B pads the two vectors'\n\
     prefetch and demand streams collide and prefetching helps nothing;\n\
     under MULTILVLPAD's 64B (Lmax) pads the streams are disjoint and\n\
     prefetching removes essentially every miss — the mechanism behind\n\
     the paper's DOT256 timing anomaly."

(* ----------------------------------------------------------------- *)
(* Tiling-algorithm comparison (the paper's CC'99 companion study)    *)
(* ----------------------------------------------------------------- *)

let tiles () =
  let step = if !fast then 100 else 25 in
  let rec sizes n = if n > 400 then [] else n :: sizes (n + step) in
  let elem = 8 and l1 = 16 * 1024 in
  let mflops_of (t : L.Tile_size.tile) n =
    let p =
      L.Tiling.tiled_matmul ~n ~h:t.L.Tile_size.height ~w:t.L.Tile_size.width
    in
    (Interp.run machine (Layout.initial p) p).Interp.mflops
  in
  let points =
    List.map
      (fun n ->
        let euc = L.Tile_size.select ~cache_bytes:l1 ~elem ~col_elems:n ~rows:n () in
        let lrw = L.Tile_size.lrw ~cache_bytes:l1 ~elem ~col_elems:n ~rows:n in
        let tss = L.Tile_size.tss ~cache_bytes:l1 ~elem ~col_elems:n ~rows:n in
        (n, [ mflops_of euc n; mflops_of lrw n; mflops_of tss n ]))
      (sizes 100)
  in
  L.Report.series
    ~title:
      "Tile-size selection algorithms on L1-targeted matmul (simulated \
       MFLOPS) — euc (miss-fraction score) vs LRW (largest square) vs TSS \
       (largest area)"
    ~x_label:"N"
    ~labels:[ "euc"; "LRW"; "TSS" ]
    points;
  print_endline
    "\nExpected shape (Rivera & Tseng CC'99): all three stay within a few\n\
     MFLOPS of each other at most sizes — conflict-free tile selection\n\
     matters much more than the exact objective — with the rectangular\n\
     algorithms (euc/TSS) pulling ahead at sizes where non-conflicting\n\
     squares are forced to be tiny."

(* ----------------------------------------------------------------- *)
(* Analytical predictor vs simulator                                  *)
(* ----------------------------------------------------------------- *)

let predict () =
  let size n = if !fast then max 64 (n / 4) else n in
  let programs =
    [
      ("jacobi", K.Livermore.jacobi (size 512));
      ("expl", K.Livermore.expl (size 512));
      ("adi", K.Livermore.adi (size 256));
      ("dot", K.Livermore.dot (size 262_144));
      ("shal", K.Livermore.shal (size 256));
      ("figure2", K.Paper_examples.figure2 (size 512));
    ]
  in
  let rows =
    List.concat_map
      (fun (name, p) ->
        List.map
          (fun (vlabel, strategy) ->
            let layout = L.Pipeline.layout_for machine strategy p in
            let sim = Interp.run machine layout p in
            let predicted = An.Miss_predict.program_misses layout machine p in
            let refs = float_of_int sim.Interp.total_refs in
            [
              name ^ " " ^ vlabel;
              L.Report.pct (100.0 *. List.hd sim.Interp.miss_rates);
              L.Report.pct (100.0 *. List.hd predicted /. refs);
              L.Report.f2
                (List.hd predicted /. float_of_int (max 1 (List.hd sim.Interp.misses)));
            ])
          [ ("packed", L.Pipeline.Original); ("padded", L.Pipeline.Pad_l1) ])
      programs
  in
  L.Report.table
    ~title:
      "Analytical miss prediction vs simulation (L1): the static model the \
       compiler decides with"
    ~columns:[ "program"; "L1 simulated"; "L1 predicted"; "ratio" ]
    rows;
  print_endline
    "\nThe predictor exists to rank choices the way the paper's compiler\n\
     does; ratios within a small factor of 1 and consistent orderings\n\
     (padded < packed on both columns) are the success criterion."

(* ----------------------------------------------------------------- *)
(* Bechamel: real wall-clock timings of the native kernels            *)
(* ----------------------------------------------------------------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  L.Report.section "Bechamel: native-kernel wall-clock timings";
  let run_group name tests =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows =
      Hashtbl.fold
        (fun test_name ols acc ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (x :: _) -> x
            | _ -> nan
          in
          (test_name, ns) :: acc)
        results []
      |> List.sort compare
      |> List.map (fun (test_name, ns) ->
             [ test_name; Printf.sprintf "%.3f ms/run" (ns /. 1e6) ])
    in
    L.Report.table ~title:name ~columns:[ "test"; "time" ] rows
  in
  (* Figure 13 analogue: tiling policies, really executed. *)
  let n = if !fast then 160 else 320 in
  let a = Mlc_native.Nat_matmul.create n and b = Mlc_native.Nat_matmul.create n in
  Mlc_native.Nat_matmul.random_fill ~seed:1 a;
  Mlc_native.Nat_matmul.random_fill ~seed:2 b;
  let c = Mlc_native.Nat_matmul.create n in
  let mat_test label f = Test.make ~name:label (Staged.stage f) in
  let tiles = tile_variants n in
  run_group
    (Printf.sprintf "matmul %dx%d (real time)" n n)
    (mat_test "orig" (fun () -> Mlc_native.Nat_matmul.multiply ~c ~a ~b)
    :: mat_test "orig unrolled+scalar (footnote 2)" (fun () ->
           Mlc_native.Nat_matmul.multiply_unrolled ~c ~a ~b)
    :: List.map
         (fun (label, t) ->
           mat_test
             (Printf.sprintf "%s tile %dx%d" label t.L.Tile_size.height
                t.L.Tile_size.width)
             (fun () ->
               Mlc_native.Nat_matmul.multiply_tiled ~h:t.L.Tile_size.height
                 ~w:t.L.Tile_size.width ~c ~a ~b))
         tiles);
  (* Figure 12 analogue: fused vs separate EXPL updates. *)
  let n2 = if !fast then 256 else 512 in
  let mk seed =
    let g = Mlc_native.Nat_stencil.create n2 in
    Mlc_native.Nat_stencil.random_fill ~seed g;
    g
  in
  let za = mk 1 and zb = mk 2 and zu = mk 3 and zv = mk 4 and zr = mk 5 and zz = mk 6 in
  run_group
    (Printf.sprintf "EXPL updates %dx%d (real time)" n2 n2)
    [
      mat_test "separate nests" (fun () ->
          Mlc_native.Nat_stencil.expl_separate ~za ~zb ~zu ~zv ~zr ~zz);
      mat_test "fused (shifted)" (fun () ->
          Mlc_native.Nat_stencil.expl_fused ~za ~zb ~zu ~zv ~zr ~zz);
    ];
  (* Figure 9 analogue: padded vs unpadded Jacobi columns. *)
  let n3 = if !fast then 256 else 512 in
  let mk_pair ld =
    let a = Mlc_native.Nat_stencil.create ?ld n3 in
    let b = Mlc_native.Nat_stencil.create ?ld n3 in
    Mlc_native.Nat_stencil.random_fill ~seed:3 b;
    (a, b)
  in
  let a0, b0 = mk_pair None in
  let a1, b1 = mk_pair (Some (n3 + 8)) in
  run_group
    (Printf.sprintf "jacobi %dx%d (real time)" n3 n3)
    [
      mat_test "packed columns" (fun () ->
          Mlc_native.Nat_stencil.jacobi ~steps:1 ~a:a0 ~b:b0);
      mat_test "padded columns" (fun () ->
          Mlc_native.Nat_stencil.jacobi ~steps:1 ~a:a1 ~b:b1);
    ]

(* ----------------------------------------------------------------- *)

let sections =
  [
    ("table1", table1);
    ("figure9", figure9);
    ("figure10", figure10);
    ("figure11", figure11);
    ("figure12", figure12);
    ("figure13", figure13);
    ("tiles", tiles);
    ("predict", predict);
    ("ablation", ablation);
    ("bechamel", bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let fast_requested = List.mem "fast" args || Sys.getenv_opt "MLC_FAST" <> None in
  fast := fast_requested;
  let wanted = List.filter (fun a -> a <> "fast") args in
  let to_run =
    if wanted = [] then sections
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> Some (name, f)
          | None ->
              Printf.eprintf "unknown section %s (known: %s)\n" name
                (String.concat ", " (List.map fst sections));
              None)
        wanted
  in
  Printf.printf "mlcache bench harness — %s mode\n"
    (if !fast then "fast" else "full");
  List.iter
    (fun (name, f) ->
      let t0 = Sys.time () in
      f ();
      Printf.printf "\n[%s done in %.1fs cpu]\n" name (Sys.time () -. t0))
    to_run
