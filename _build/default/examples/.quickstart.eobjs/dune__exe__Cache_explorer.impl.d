examples/cache_explorer.ml: Interp Layout List Locality Mlc_cachesim Mlc_ir Mlc_kernels Printf
