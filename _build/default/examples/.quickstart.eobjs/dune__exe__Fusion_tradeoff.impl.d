examples/fusion_tradeoff.ml: Format Interp Layout List Locality Mlc_analysis Mlc_cachesim Mlc_ir Mlc_kernels Nest Printf Program
