examples/fusion_tradeoff.mli:
