examples/matmul_tiling.ml: Interp Layout List Locality Mlc_cachesim Mlc_ir Mlc_native Printf Sys
