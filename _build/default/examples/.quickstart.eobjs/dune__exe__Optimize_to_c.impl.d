examples/optimize_to_c.ml: Filename In_channel Interp Layout List Locality Mlc_cachesim Mlc_codegen Mlc_ir Mlc_kernels Option Printf Program String Sys Unix
