examples/optimize_to_c.mli:
