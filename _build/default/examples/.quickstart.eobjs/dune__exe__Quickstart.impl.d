examples/quickstart.ml: Build Interp Layout List Locality Mlc_analysis Mlc_cachesim Mlc_ir Printf Program Validate
