examples/quickstart.mli:
