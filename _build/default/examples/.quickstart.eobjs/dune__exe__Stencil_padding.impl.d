examples/stencil_padding.ml: Interp Layout List Locality Mlc_analysis Mlc_cachesim Mlc_ir Mlc_kernels Printf Program
