examples/stencil_padding.mli:
