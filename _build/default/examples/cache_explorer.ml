(* How much locality does each kernel offer to each cache level?
   Stack-distance analysis gives the conflict-free miss-rate-vs-capacity
   curve in one pass; comparing it with the direct-mapped simulation
   separates capacity misses from conflict misses — the two quantities
   the paper's padding transformations distinguish.

     dune exec examples/cache_explorer.exe *)

open Mlc_ir
module Cs = Mlc_cachesim
module K = Mlc_kernels
module L = Locality

let machine = Cs.Machine.ultrasparc

let explore name p =
  let layout = Layout.initial p in
  let trace = Interp.trace layout p in
  let sd = Cs.Stack_distance.analyze ~line:32 trace in
  let total = float_of_int (Cs.Stack_distance.total sd) in
  let rate_at kb =
    100.0
    *. float_of_int (Cs.Stack_distance.misses_at sd ~lines:(kb * 1024 / 32))
    /. total
  in
  (* direct-mapped reality, packed and padded *)
  let direct layout =
    let r = Interp.run machine layout p in
    100.0 *. List.hd r.Interp.miss_rates
  in
  let packed = direct layout in
  let padded = direct (L.Pipeline.layout_for machine L.Pipeline.Pad_l1 p) in
  Printf.printf "%-12s ideal@16K %6.2f%%   ideal@512K %6.2f%%   " name
    (rate_at 16) (rate_at 512);
  Printf.printf "direct-mapped 16K: packed %6.2f%%  padded %6.2f%%\n" packed padded

let () =
  Printf.printf
    "Conflict-free (fully associative LRU) miss rates vs the simulated\n\
     direct-mapped L1 — the gap between 'ideal@16K' and 'packed' is\n\
     conflict misses; padding recovers most of it:\n\n";
  List.iter
    (fun (name, p) -> explore name p)
    [
      ("jacobi-200", K.Livermore.jacobi 200);
      ("expl-200", K.Livermore.expl 200);
      ("dot-64k", K.Livermore.dot 65_536);
      ("adi-200", K.Livermore.adi 200);
      ("figure2-256", K.Paper_examples.figure2 256);
    ];
  Printf.printf
    "\nReading the table: 'ideal@16K' is the locality the L1 could\n\
     capture with no conflicts; the paper's point is that padding gets\n\
     the direct-mapped cache close to that bound, at which point the\n\
     extra multi-level machinery has little left to win.\n"
