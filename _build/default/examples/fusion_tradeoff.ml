(* The Section 4 fusion trade-off, worked end to end: fuse the Figure 2
   nests, print the two-level reference accounting, decide profitability
   under the machine's miss costs, and confirm with the simulator.

     dune exec examples/fusion_tradeoff.exe *)

open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality

let machine = Cs.Machine.ultrasparc

let s1 = Cs.Machine.s1 machine

let () =
  let n = 960 in
  let fig2 = K.Paper_examples.figure2 n in
  let fig6 = K.Paper_examples.figure6_fused n in

  (* 1. The transformation itself: our fusion pass turns Figure 2 into
     Figure 6 (no shift needed — the bodies have no cross dependences). *)
  let fused_by_us =
    match fig2.Program.nests with
    | [ n1; n2 ] -> L.Fusion.fuse ~shift:0 n1 n2
    | _ -> assert false
  in
  Printf.printf "fusion produced %d nest(s); body has %d references\n\n"
    (List.length fused_by_us)
    (List.length (Nest.refs (List.hd fused_by_us)));

  (* 2. Static accounting under GROUPPAD (L2MAXPAD assumed on L2). *)
  let lay2 = L.Grouppad.apply ~size:s1 ~line:32 fig2 (Layout.initial fig2) in
  let lay6 = L.Grouppad.apply ~size:s1 ~line:32 fig6 (Layout.initial fig6) in
  let before = An.Fusion_model.count lay2 ~l1_size:s1 fig2.Program.nests in
  let after = An.Fusion_model.count lay6 ~l1_size:s1 fig6.Program.nests in
  Format.printf "original: %a@." An.Fusion_model.pp_counts before;
  Format.printf "fused:    %a@." An.Fusion_model.pp_counts after;
  Printf.printf
    "(the paper derives 5 memory + 2 L2 before, 3 memory + 3 L2 after)\n\n";

  (* 3. Profitability: weigh by the machine's miss costs. *)
  let l2_cost = 6.0 and memory_cost = 50.0 in
  let cost = An.Fusion_model.miss_cost ~l2_cost ~memory_cost in
  Printf.printf
    "weighted miss cost: %.0f before vs %.0f after (L2 hit %.0f cyc, memory %.0f cyc)\n"
    (cost before) (cost after) l2_cost memory_cost;
  Printf.printf "fusion is %s\n\n"
    (if cost after < cost before then "PROFITABLE" else "not profitable");

  (* 4. Simulation agrees on the direction. *)
  let run p lay = Interp.run machine lay p in
  let r2 = run fig2 lay2 and r6 = run fig6 lay6 in
  Printf.printf "simulated memory accesses: %d -> %d\n" r2.Interp.memory_accesses
    r6.Interp.memory_accesses;
  Printf.printf "simulated model cycles:    %.3e -> %.3e (%.2f%% better)\n"
    r2.Interp.cycles r6.Interp.cycles
    (Cs.Cost_model.improvement ~orig:r2.Interp.cycles ~opt:r6.Interp.cycles);

  (* 5. A case where fusion needs an alignment shift: EXPL's nests 76 and
     77 (the Figure 12 experiment). *)
  let expl = K.Livermore.expl 256 in
  let fused_expl = L.Fusion.fuse_program expl 1 in
  Printf.printf
    "\nEXPL: fused nests 76+77 with an alignment shift; program now has %d nests\n"
    (List.length fused_expl.Program.nests);
  let ro = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1_l2 expl in
  let rf = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1_l2 fused_expl in
  Printf.printf "EXPL memory accesses: %d -> %d\n"
    ro.L.Experiment.result.Interp.memory_accesses
    rf.L.Experiment.result.Interp.memory_accesses
