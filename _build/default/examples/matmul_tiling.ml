(* Tiling matrix multiplication for a multi-level cache (Section 5 /
   Figure 13): eucPad-style tile selection, the no-L2-interference
   property, simulated MFLOPS per policy, and a real-hardware timing of
   the same variants.

     dune exec examples/matmul_tiling.exe *)

open Mlc_ir
module Cs = Mlc_cachesim
module L = Locality
module N = Mlc_native

let machine = Cs.Machine.ultrasparc

let () =
  let n = 300 in
  let elem = 8 in
  let l1 = Cs.Machine.s1 machine in
  let l2 = Cs.Machine.level_size machine 1 in

  Printf.printf "matmul %dx%d doubles (%.0fK per matrix; L1 %dK, L2 %dK)\n\n" n n
    (float_of_int (n * n * elem) /. 1024.0)
    (l1 / 1024) (l2 / 1024);

  (* 1. Tile selection per policy. *)
  let policies =
    [
      ("L1", l1, l1); ("2xL1", l2, 2 * l1); ("4xL1", l2, 4 * l1); ("L2", l2, l2);
    ]
  in
  let tiles =
    List.map
      (fun (label, cache, cap) ->
        let t =
          L.Tile_size.select ~capacity_bytes:cap ~cache_bytes:cache ~elem
            ~col_elems:n ~rows:n ()
        in
        Printf.printf "%-5s tile: %3dx%-3d (%5.1fK footprint)%s\n" label
          t.L.Tile_size.height t.L.Tile_size.width
          (float_of_int (L.Tile_size.footprint_bytes ~elem t) /. 1024.0)
          (if
             L.Tile_size.no_l2_interference ~s1_elems:(l1 / elem) ~k:(l2 / l1)
               ~col_elems:n t
           then "  [no L2 self-interference]"
           else "");
        (label, t))
      policies
  in

  (* 2. Simulated MFLOPS (the Figure 13 series at one size). *)
  print_newline ();
  let sim p =
    let r = Interp.run machine (Layout.initial p) p in
    r.Interp.mflops
  in
  Printf.printf "%-5s %8.2f simulated MFLOPS\n" "orig" (sim (L.Tiling.matmul n));
  List.iter
    (fun (label, t) ->
      Printf.printf "%-5s %8.2f simulated MFLOPS\n" label
        (sim
           (L.Tiling.tiled_matmul ~n ~h:t.L.Tile_size.height
              ~w:t.L.Tile_size.width)))
    tiles;

  (* 3. The same variants really executed (wall clock, this machine). *)
  print_newline ();
  let a = N.Nat_matmul.create n and b = N.Nat_matmul.create n in
  N.Nat_matmul.random_fill ~seed:1 a;
  N.Nat_matmul.random_fill ~seed:2 b;
  let time f =
    let c = N.Nat_matmul.create n in
    let reps = 3 in
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f c
    done;
    let dt = (Sys.time () -. t0) /. float_of_int reps in
    N.Nat_matmul.mflop_count n /. dt
  in
  Printf.printf "%-5s %8.0f real MFLOPS (this machine)\n" "orig"
    (time (fun c -> N.Nat_matmul.multiply ~c ~a ~b));
  List.iter
    (fun (label, t) ->
      Printf.printf "%-5s %8.0f real MFLOPS (this machine)\n" label
        (time (fun c ->
             N.Nat_matmul.multiply_tiled ~h:t.L.Tile_size.height
               ~w:t.L.Tile_size.width ~c ~a ~b)))
    tiles
