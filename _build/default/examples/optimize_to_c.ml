(* End-to-end: take a colliding program, run the full optimization
   pipeline (permute, fuse, pad), emit both versions as C, compile them
   with the system compiler and time them on this machine — the closest
   this repository gets to the paper's UltraSparc timing runs.

     dune exec examples/optimize_to_c.exe

   (Skips gracefully when no C compiler is available.) *)

open Mlc_ir
module Cs = Mlc_cachesim
module K = Mlc_kernels
module L = Locality

let machine = Cs.Machine.ultrasparc

let have_cc () = Sys.command "cc --version > /dev/null 2>&1" = 0

let compile_and_time label source =
  let dir = Filename.temp_file "mlc_opt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let c = Filename.concat dir "prog.c" in
  let exe = Filename.concat dir "prog" in
  let oc = open_out c in
  output_string oc source;
  close_out oc;
  if Sys.command (Printf.sprintf "cc -O1 -o %s %s" exe c) <> 0 then
    failwith "compilation failed";
  let out = Filename.concat dir "out.txt" in
  if Sys.command (Printf.sprintf "%s > %s" exe out) <> 0 then
    failwith "run failed";
  let lines = In_channel.with_open_text out In_channel.input_lines in
  let seconds =
    List.find_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "seconds"; s ] -> float_of_string_opt s
        | _ -> None)
      lines
    |> Option.value ~default:nan
  in
  Printf.printf "  %-10s %.4f s (real, this machine)\n" label seconds;
  seconds

let () =
  let p = K.Paper_examples.figure2 512 in
  Printf.printf "program: %s (three 512x512 arrays, bases colliding mod 16K)\n\n"
    p.Program.name;

  (* 1. optimize *)
  let r = L.Compiler.optimize machine p in
  List.iter (fun l -> Printf.printf "  %s\n" l) r.L.Compiler.log;

  (* 2. simulate both versions *)
  let sim label layout prog =
    let res = Interp.run machine layout prog in
    Printf.printf "  %-10s L1 %5.2f%%  L2 %5.2f%%  (simulated)\n" label
      (100.0 *. List.nth res.Interp.miss_rates 0)
      (100.0 *. List.nth res.Interp.miss_rates 1)
  in
  print_newline ();
  sim "original" (Layout.initial p) p;
  sim "optimized" r.L.Compiler.layout r.L.Compiler.program;

  (* 3. emit C for both and time them for real *)
  print_newline ();
  if not (have_cc ()) then
    print_endline "  (no C compiler found; skipping the native timing step)"
  else begin
    let repeat = 50 in
    let t0 =
      compile_and_time "original"
        (Mlc_codegen.Codegen_c.emit ~repeat (Layout.initial p) p)
    in
    let t1 =
      compile_and_time "optimized"
        (Mlc_codegen.Codegen_c.emit ~repeat r.L.Compiler.layout
           r.L.Compiler.program)
    in
    if t0 > 0.0 && t1 > 0.0 then
      Printf.printf "\n  real speedup on this machine: %.2fx\n" (t0 /. t1);
    print_endline
      "\n  (On a modern machine with large associative caches the speedup\n\
      \   is far smaller than the simulated direct-mapped gap — which is\n\
      \   itself a multi-level-caches-era lesson.)"
  end
