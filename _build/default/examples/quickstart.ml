(* Quickstart: build a small program in the IR, simulate it on the
   paper's two-level cache, apply inter-variable padding, and compare.

     dune exec examples/quickstart.exe *)

open Mlc_ir
module Cs = Mlc_cachesim
module L = Locality

let () =
  (* A vector update X(i) = X(i) + Y(i), with both arrays exactly one L1
     cache size long: their bases coincide on the cache and every
     iteration ping-pongs between the two lines. *)
  let n = 16 * 1024 / 8 in
  let open Build in
  let x = arr "X" [ n ] and y = arr "Y" [ n ] in
  let i = v "i" in
  let p =
    program "quickstart" [ x; y ]
      [
        nest
          [ loop "i" 0 (n - 1) ]
          [ asn ~flops:1 (w "X" [ i ]) [ r "X" [ i ]; r "Y" [ i ] ] ];
      ]
  in
  Validate.check_exn p;

  let machine = Cs.Machine.ultrasparc in
  Printf.printf "machine: %s\n\n" machine.Cs.Machine.name;

  (* 1. Packed layout: X and Y collide. *)
  let packed = Layout.initial p in
  let r1 = Interp.run machine packed p in
  Printf.printf "packed layout:  L1 miss rate %5.1f%%  (%d misses / %d refs)\n"
    (100.0 *. List.hd r1.Interp.miss_rates)
    (List.hd r1.Interp.misses) r1.Interp.total_refs;

  (* 2. PAD moves Y's base one cache line away; the ping-pong is gone. *)
  let padded = L.Pad.apply ~size:(Cs.Machine.s1 machine) ~line:32 p packed in
  let r2 = Interp.run machine padded p in
  Printf.printf "after PAD:      L1 miss rate %5.1f%%  (pad before Y = %d bytes)\n"
    (100.0 *. List.hd r2.Interp.miss_rates)
    (Layout.pad_before padded "Y");

  (* 3. The same decision straight from the paper's diagram model. *)
  let nest = List.hd p.Program.nests in
  let conflicts_before =
    Mlc_analysis.Arcs.severe_conflicts packed ~size:(Cs.Machine.s1 machine)
      ~line:32 nest
  in
  let conflicts_after =
    Mlc_analysis.Arcs.severe_conflicts padded ~size:(Cs.Machine.s1 machine)
      ~line:32 nest
  in
  Printf.printf
    "severe conflicts in the layout-diagram model: %d before, %d after\n"
    (List.length conflicts_before)
    (List.length conflicts_after);

  Printf.printf "model time improvement: %.1f%%\n"
    (Cs.Cost_model.improvement ~orig:r1.Interp.cycles ~opt:r2.Interp.cycles)
