(* The paper's Figure 2 program end-to-end: PAD vs GROUPPAD vs
   GROUPPAD+L2MAXPAD, with the arc accounting (Figures 3-5) printed for
   each layout.

     dune exec examples/stencil_padding.exe *)

open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality

let machine = Cs.Machine.ultrasparc

let s1 = Cs.Machine.s1 machine

let l2 = Cs.Machine.level_size machine 1

let describe name p layout =
  let preserved_l1 = L.Grouppad.preserved_references ~size:s1 p layout in
  let preserved_l2 = L.Grouppad.preserved_references ~size:l2 p layout in
  let conflicts = L.Grouppad.conflict_count ~size:s1 ~line:32 p layout in
  let r = Interp.run machine layout p in
  Printf.printf
    "%-22s severe conflicts: %d   group reuse on L1: %d refs, on L2: %d refs\n"
    name conflicts preserved_l1 preserved_l2;
  Printf.printf "%-22s L1 miss %5.2f%%  L2 miss %5.2f%%  model cycles %.3e\n\n" ""
    (100.0 *. List.nth r.Interp.miss_rates 0)
    (100.0 *. List.nth r.Interp.miss_rates 1)
    r.Interp.cycles

let () =
  (* N = 960 recreates the paper's diagram geometry: the L1 cache holds a
     bit more than two columns, and whole arrays are multiples of the
     cache size so the packed layout collides completely. *)
  let n = 960 in
  let p = K.Paper_examples.figure2 n in
  Printf.printf
    "Figure 2 program at N=%d (column %dB, L1 %dB = %.2f columns)\n\n" n (n * 8)
    s1
    (float_of_int s1 /. float_of_int (n * 8));

  describe "packed" p (Layout.initial p);
  describe "PAD" p (L.Pad.apply ~size:s1 ~line:32 p (Layout.initial p));
  let gp = L.Grouppad.apply ~size:s1 ~line:32 p (Layout.initial p) in
  describe "GROUPPAD" p gp;
  let gp_l2 = L.Maxpad.apply_l2 ~s1 ~l2_size:l2 p gp in
  describe "GROUPPAD+L2MAXPAD" p gp_l2;

  (* The L2MAXPAD invariant: base residues mod S1 are untouched. *)
  Printf.printf "L2MAXPAD pads (multiples of S1 preserve the L1 layout):\n";
  List.iter
    (fun v ->
      Printf.printf "  %-2s base %8d -> %8d (mod S1: %d -> %d)\n" v
        (Layout.base gp v) (Layout.base gp_l2 v)
        (Layout.base gp v mod s1)
        (Layout.base gp_l2 v mod s1))
    (Layout.array_names gp);

  (* Reproduce the Section 3 narrative numbers. *)
  let counts layout =
    An.Fusion_model.count layout ~l1_size:s1 p.Program.nests
  in
  let c = counts gp_l2 in
  Printf.printf
    "\nSection 4 accounting under GROUPPAD(+L2MAXPAD assumed):\n\
    \  memory refs = %d, L2 refs = %d, L1 hits = %d (paper: 5, 2, 3)\n"
    c.An.Fusion_model.memory_refs c.An.Fusion_model.l2_refs
    c.An.Fusion_model.l1_hits
