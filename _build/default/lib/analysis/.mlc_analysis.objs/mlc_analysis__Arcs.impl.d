lib/analysis/arcs.ml: Expr Hashtbl Layout List Loop Mlc_ir Nest Ref_ Ref_group
