lib/analysis/arcs.mli: Layout Mlc_ir Nest Ref_
