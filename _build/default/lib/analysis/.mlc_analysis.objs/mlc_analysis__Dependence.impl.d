lib/analysis/dependence.ml: Expr Hashtbl List Loop Mlc_ir Nest Ref_ Subscript
