lib/analysis/dependence.mli: Mlc_ir Nest Ref_
