lib/analysis/diagram.ml: Arcs Buffer Bytes Char Hashtbl List Mlc_ir Option Printf Program Ref_ String
