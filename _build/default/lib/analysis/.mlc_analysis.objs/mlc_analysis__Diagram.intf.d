lib/analysis/diagram.mli: Layout Mlc_ir Nest Program
