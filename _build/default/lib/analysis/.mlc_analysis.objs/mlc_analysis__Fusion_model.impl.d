lib/analysis/fusion_model.ml: Arcs Format List Mlc_ir Nest Ref_
