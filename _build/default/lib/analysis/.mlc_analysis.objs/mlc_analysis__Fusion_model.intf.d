lib/analysis/fusion_model.mli: Format Layout Mlc_ir Nest Ref_
