lib/analysis/miss_model.ml: Dependence Expr Hashtbl List Loop Mlc_ir Nest Ref_group Reuse
