lib/analysis/miss_model.mli: Layout Mlc_ir Nest
