lib/analysis/miss_predict.ml: Arcs Expr Float Hashtbl List Loop Mlc_cachesim Mlc_ir Nest Program Ref_group Reuse
