lib/analysis/miss_predict.mli: Layout Mlc_cachesim Mlc_ir Nest Program
