lib/analysis/ref_group.ml: Expr Format Layout List Mlc_ir Nest Printf Ref_ String
