lib/analysis/ref_group.mli: Format Layout Mlc_ir Nest Ref_
