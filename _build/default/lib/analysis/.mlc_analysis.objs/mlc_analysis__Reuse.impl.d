lib/analysis/reuse.ml: Expr Format Layout List Loop Mlc_ir Nest Printf Ref_ Ref_group
