lib/analysis/reuse.mli: Format Layout Mlc_ir Nest Ref_
