open Mlc_ir

type dot = {
  ref_index : int;
  ref_ : Ref_.t;
  address : int;
  position : int;
}

type arc = {
  array : string;
  trailing : int;
  leading : int;
  span : int;
}

type conflict = {
  a : int;
  b : int;
  distance : int;
}

(* Environment with every loop variable at its lower bound; bounds may
   reference outer variables, so bind outermost first. *)
let first_iteration_env nest =
  let bindings = Hashtbl.create 8 in
  let env v =
    match Hashtbl.find_opt bindings v with
    | Some value -> value
    | None -> invalid_arg ("Arcs: unbound loop variable " ^ v)
  in
  List.iter
    (fun loop -> Hashtbl.replace bindings loop.Loop.var (Expr.eval env loop.Loop.lo))
    nest.Nest.loops;
  env

let dots layout ~size nest =
  let env = first_iteration_env nest in
  Nest.refs nest
  |> List.mapi (fun i r -> (i, r))
  |> List.filter_map (fun (i, r) ->
         if Ref_.is_affine r then
           let address = Layout.address_of_ref layout env r in
           Some { ref_index = i; ref_ = r; address; position = address mod size }
         else None)

let arcs layout ?(min_span = 1) nest =
  let groups = Ref_group.of_nest layout nest in
  List.concat_map
    (fun g ->
      let offsets = Ref_group.distinct_offsets g in
      (* One representative member per distinct offset. *)
      let repr o =
        List.find (fun m -> m.Ref_group.offset_bytes = o) g.Ref_group.members
      in
      let rec pair = function
        | lower :: (upper :: _ as rest) ->
            let span = upper - lower in
            let arc =
              {
                array = g.Ref_group.array;
                trailing = (repr lower).Ref_group.index;
                leading = (repr upper).Ref_group.index;
                span;
              }
            in
            if span >= min_span then arc :: pair rest else pair rest
        | _ -> []
      in
      pair offsets)
    groups

let circular_distance size a b =
  let d = (b - a) mod size in
  let d = if d < 0 then d + size else d in
  min d (size - d)

let severe_conflicts layout ~size ~line ?(include_same_array = false) nest =
  let ds = dots layout ~size nest in
  let conflicts = ref [] in
  let rec pairs = function
    | [] -> ()
    | d :: rest ->
        List.iter
          (fun d' ->
            let different_array = d.ref_.Ref_.array <> d'.ref_.Ref_.array in
            (* Same-array pairs conflict only when the two references are
               far apart in memory yet land close on the cache — nearby
               addresses on one line are group-spatial reuse, not a
               conflict (and no amount of column padding would separate
               them). *)
            let same_array_distinct =
              include_same_array
              && d.ref_.Ref_.array = d'.ref_.Ref_.array
              && abs (d.address - d'.address) >= line
            in
            if different_array || same_array_distinct then begin
              let dist = circular_distance size d.position d'.position in
              if dist < line then
                conflicts := { a = d.ref_index; b = d'.ref_index; distance = dist } :: !conflicts
            end)
          rest;
        pairs rest
  in
  pairs ds;
  List.rev !conflicts

(* A dot at position q lies strictly under the arc anchored at trailing
   position p with the given span iff 0 < (q - p) mod size < span. *)
let arc_preserved ds ~size arc =
  if arc.span >= size then false
  else
    match List.find_opt (fun d -> d.ref_index = arc.trailing) ds with
    | None -> false
    | Some trailing_dot ->
        let p = trailing_dot.position in
        not
          (List.exists
             (fun d ->
               if d.ref_index = arc.trailing || d.ref_index = arc.leading then false
               else
                 let rel = (d.position - p) mod size in
                 let rel = if rel < 0 then rel + size else rel in
                 rel > 0 && rel < arc.span)
             ds)

let preserved_arcs layout ~size nest =
  let ds = dots layout ~size nest in
  arcs layout nest |> List.filter (arc_preserved ds ~size)

let preserved_count layout ~size nest =
  List.length (preserved_arcs layout ~size nest)
