(** The paper's layout-diagram model (Figures 3, 4, 5, 7).

    Every affine reference of a nest becomes a "dot" at its cache position
    (address at the nest's first iteration, mod the cache size).  Because
    the references of a group move in lockstep, relative positions are
    loop-invariant, so one snapshot decides everything:

    - {b severe conflict}: two dots of {e different} arrays within one
      cache line of each other circularly — a ping-pong conflict miss on
      every iteration (what PAD eliminates);
    - {b group-reuse arc}: consecutive distinct offsets of a uniformly
      generated group; the trailing (lower-offset) reference reuses the
      leading one's column one outer iteration later {e iff} the span fits
      in the cache and no other dot lies strictly under the arc. *)

open Mlc_ir

type dot = {
  ref_index : int;  (** body-order index in the nest *)
  ref_ : Ref_.t;
  address : int;    (** absolute byte address at the first iteration *)
  position : int;   (** [address mod cache_size] *)
}

type arc = {
  array : string;
  trailing : int;   (** ref index that can reuse *)
  leading : int;    (** ref index whose data is reused *)
  span : int;       (** bytes between them (usually one column) *)
}

type conflict = {
  a : int;  (** ref index *)
  b : int;
  distance : int;  (** circular distance on the cache, in bytes *)
}

(** Dots of a nest for a cache of [size] bytes.  The first iteration is
    the point where every loop variable sits at its lower bound. *)
val dots : Layout.t -> size:int -> Nest.t -> dot list

(** Arcs are layout-dependent only through intra-variable padding (the
    span is the padded column distance); inter-variable pads do not move
    them. *)
val arcs : Layout.t -> ?min_span:int -> Nest.t -> arc list

(** Severe conflicts between different arrays at line granularity [line].
    [include_same_array] additionally reports same-array conflicts between
    distinct references (the target of {e intra}-variable padding). *)
val severe_conflicts :
  Layout.t -> size:int -> line:int -> ?include_same_array:bool -> Nest.t -> conflict list

(** [arc_preserved dots ~size arc] — the "no dots under the arc" test. *)
val arc_preserved : dot list -> size:int -> arc -> bool

(** Arcs of the nest that survive on a cache of [size] bytes. *)
val preserved_arcs : Layout.t -> size:int -> Nest.t -> arc list

(** Count of references exploiting group reuse on this cache — the value
    GROUPPAD maximizes. *)
val preserved_count : Layout.t -> size:int -> Nest.t -> int
