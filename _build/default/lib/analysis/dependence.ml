open Mlc_ir

type distance =
  | Independent
  | Distance of (string * int) list
  | Unknown

(* Decompose an affine expression as [±v + c] if it has that shape. *)
let single_var e =
  match Expr.vars e with
  | [] -> `Const (Expr.const_part e)
  | [ v ] ->
      let c = Expr.coeff e v in
      if c = 1 || c = -1 then `Var (v, c, Expr.const_part e) else `Other
  | _ -> `Other

let between r1 r2 =
  if r1.Ref_.array <> r2.Ref_.array then Independent
  else if not (Ref_.is_affine r1 && Ref_.is_affine r2) then Unknown
  else if List.length r1.Ref_.subs <> List.length r2.Ref_.subs then Unknown
  else begin
    (* Solve e1(I) = e2(I + d) per dimension, accumulating distances per
       variable; inconsistent constraints mean no constant distance. *)
    let constraints = Hashtbl.create 4 in
    let ok = ref true in
    let independent = ref false in
    List.iter2
      (fun s1 s2 ->
        if !ok then
          match (s1, s2) with
          | Subscript.Affine e1, Subscript.Affine e2 -> (
              match (single_var e1, single_var e2) with
              | `Const c1, `Const c2 -> if c1 <> c2 then independent := true
              | `Var (v1, a1, c1), `Var (v2, a2, c2) when v1 = v2 && a1 = a2 ->
                  (* a*(i) + c1 = a*(i + d) + c2  =>  d = (c1 - c2) / a *)
                  let d = (c1 - c2) * a1 in
                  (match Hashtbl.find_opt constraints v1 with
                  | Some d' when d' <> d -> ok := false
                  | _ -> Hashtbl.replace constraints v1 d)
              | _ -> ok := false)
          | _ -> ok := false)
      r1.Ref_.subs r2.Ref_.subs;
    if !independent then Independent
    else if not !ok then Unknown
    else Distance (Hashtbl.fold (fun v d acc -> (v, d) :: acc) constraints [])
  end

let cross_nest n1 n2 =
  let refs1 = Nest.refs n1 and refs2 = Nest.refs n2 in
  let out = ref [] in
  List.iteri
    (fun i1 r1 ->
      List.iteri
        (fun i2 r2 ->
          if Ref_.is_write r1 || Ref_.is_write r2 then
            match between r1 r2 with
            | Independent -> ()
            | d -> out := (i1, i2, d) :: !out)
        refs2)
    refs1;
  List.rev !out

(* One loop variable's distance inside a dependence.  A loop variable that
   appears in neither reference's subscripts is unconstrained: the same
   element is touched at {e every} value of that variable ('*'). *)
type component = Exact of int | Star

let component d var =
  match d with
  | Independent -> Exact 0
  | Unknown -> Star
  | Distance ds -> ( try Exact (List.assoc var ds) with Not_found -> Star)

let fusion_legal ?(shift = 0) n1 n2 =
  match (n1.Nest.loops, n2.Nest.loops) with
  | l1 :: inner1, _ :: _ ->
      let outer1 = l1.Loop.var in
      let inner_vars = List.map (fun l -> l.Loop.var) inner1 in
      cross_nest n1 n2
      |> List.for_all (fun (_, _, d) ->
             match d with
             | Independent -> true
             | Unknown -> false
             | Distance _ -> (
                 (* The element r1 touches at outer iteration k is touched
                    by r2 at outer iteration k + delta; in the fused loop
                    r2's body runs [shift] iterations late, so the sink
                    executes at fused iteration k + delta + shift.  A '*'
                    outer component means some sink instance precedes the
                    source — never fusible. *)
                 match component d outer1 with
                 | Exact d1 ->
                     let delta = d1 + shift in
                     if delta > 0 then true
                     else if delta < 0 then false
                     else
                       (* Same fused outer iteration: body 1 precedes
                          body 2, so any inner distance ≥ 0 is safe. *)
                       List.for_all
                         (fun v ->
                           match component d v with
                           | Exact dv -> dv >= 0
                           | Star -> false)
                         inner_vars
                 | Star -> false))
  | _ -> false

let min_legal_shift ?(max_shift = 8) n1 n2 =
  let rec go s =
    if s > max_shift then None
    else if fusion_legal ~shift:s n1 n2 then Some s
    else go (s + 1)
  in
  go 0

(* Sign of the leading non-zero component. *)
let lex_sign vec =
  let rec go = function
    | [] -> 0
    | 0 :: rest -> go rest
    | x :: _ -> if x > 0 then 1 else -1
  in
  go vec

let permutation_legal nest order =
  let refs = Nest.refs nest in
  let original_order = Nest.vars nest in
  let deps = ref [] in
  List.iteri
    (fun i1 r1 ->
      List.iteri
        (fun i2 r2 ->
          if i1 < i2 && (Ref_.is_write r1 || Ref_.is_write r2) then
            match between r1 r2 with
            | Independent -> ()
            | d -> deps := d :: !deps)
        refs)
    refs;
  List.for_all
    (fun d ->
      match d with
      | Independent -> true
      | Unknown -> false
      | Distance _ ->
          (* Canonicalize so the constrained part reads earlier→later in
             the original order, then check the new order never lets an
             unconstrained ('*') component lead before a positive one.
             Scanning the new order outermost-in:
             - Exact 0: keep scanning;
             - Exact > 0: the dependence stays forward, legal;
             - Exact < 0: orientation flipped, illegal;
             - Star: legal only if it is the sole '*' and everything
               after it is Exact 0 (the dependence is carried entirely by
               that one loop, whose own order permutation preserves —
               the matmul-reduction case); otherwise conservative no. *)
          let comp v = component d v in
          let exact_vec vars =
            List.map (fun v -> match comp v with Exact x -> x | Star -> 0) vars
          in
          let sign = lex_sign (exact_vec original_order) in
          let flip = if sign < 0 then -1 else 1 in
          let rec scan = function
            | [] -> true
            | v :: rest -> (
                match comp v with
                | Exact 0 -> scan rest
                | Exact x -> flip * x > 0
                | Star ->
                    List.for_all
                      (fun v' ->
                        match comp v' with Exact 0 -> true | Exact _ | Star -> false)
                      rest)
          in
          scan order)
    !deps
