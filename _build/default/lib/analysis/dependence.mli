(** Constant-distance data-dependence testing between affine references,
    used for loop fusion and permutation legality.

    The solver handles the shape every benchmark in the paper exhibits:
    in each dimension the subscript is [±var + const] (or a constant).
    Anything else is answered conservatively with [Unknown]. *)

open Mlc_ir

type distance =
  | Independent              (** provably never the same element *)
  | Distance of (string * int) list
      (** per-variable iteration distance [d]: [r2] at iteration [I + d]
          touches what [r1] touched at [I] *)
  | Unknown                  (** assume dependence, direction unknown *)

(** [between r1 r2] for references to the same array; [Independent] for
    different arrays. *)
val between : Ref_.t -> Ref_.t -> distance

(** Pairs of references that may touch the same location, where at least
    one is a write, between the bodies of two nests (body order indices
    returned as [(i1, i2, distance)]). *)
val cross_nest : Nest.t -> Nest.t -> (int * int * distance) list

(** [fusion_legal ?shift n1 n2] — can the bodies be fused iteration-wise
    with the second body executing [shift] iterations of the outermost
    loop behind the first?  True when every cross-nest dependence keeps
    source before sink in the fused order. *)
val fusion_legal : ?shift:int -> Nest.t -> Nest.t -> bool

(** Smallest non-negative shift (≤ [max_shift]) making fusion legal. *)
val min_legal_shift : ?max_shift:int -> Nest.t -> Nest.t -> int option

(** [permutation_legal nest order] — legality of reordering the nest's
    loops into [order] (a permutation of the loop variables): every
    dependence distance vector must stay lexicographically non-negative. *)
val permutation_legal : Nest.t -> string list -> bool
