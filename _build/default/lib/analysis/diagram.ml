open Mlc_ir

let render ?(width = 72) layout ~size ~line nest =
  let buf = Buffer.create 1024 in
  let dots = Arcs.dots layout ~size nest in
  let arcs = Arcs.arcs layout ~min_span:line nest in
  let scale pos = min (width - 1) (pos * width / size) in
  (* Short labels: a letter per distinct array (A, B, C, ...) plus the
     occurrence index within the nest. *)
  let array_tag =
    let tags = Hashtbl.create 8 in
    let next = ref 0 in
    fun arr ->
      match Hashtbl.find_opt tags arr with
      | Some t -> t
      | None ->
          let t = Char.chr (Char.code 'A' + (!next mod 26)) in
          incr next;
          Hashtbl.replace tags arr t;
          t
  in
  let label_of =
    let seen = Hashtbl.create 8 in
    fun (d : Arcs.dot) ->
      let arr = d.Arcs.ref_.Ref_.array in
      let k = Option.value ~default:0 (Hashtbl.find_opt seen arr) in
      Hashtbl.replace seen arr (k + 1);
      Printf.sprintf "%c%d" (array_tag arr) k
  in
  let labels = List.map (fun d -> (d.Arcs.ref_index, label_of d)) dots in
  (* Arc rows: draw each arc above the box on its own row. *)
  List.iteri
    (fun i arc ->
      let row = Bytes.make width ' ' in
      match List.find_opt (fun d -> d.Arcs.ref_index = arc.Arcs.trailing) dots with
      | None -> ()
      | Some td ->
          let p1 = scale td.Arcs.position in
          let p2_raw = (td.Arcs.position + arc.Arcs.span) mod size in
          let p2 = scale p2_raw in
          let preserved = Arcs.arc_preserved dots ~size arc in
          let ch = if preserved then '=' else '.' in
          let mark lo hi =
            for c = lo to hi do
              if c >= 0 && c < width then Bytes.set row c ch
            done
          in
          if p1 <= p2 then mark p1 p2
          else begin
            (* wrapped arc *)
            mark p1 (width - 1);
            mark 0 p2
          end;
          Bytes.set row (min (width - 1) (max 0 p1)) '\\';
          Bytes.set row (min (width - 1) (max 0 p2)) '/';
          Buffer.add_string buf
            (Printf.sprintf " %2d %s\n" (i + 1) (Bytes.to_string row)))
    arcs;
  (* The box with dots. *)
  let box = Bytes.make width '-' in
  List.iter
    (fun (d : Arcs.dot) -> Bytes.set box (scale d.Arcs.position) '*')
    dots;
  Buffer.add_string buf
    (Printf.sprintf "    |%s|  cache %dB\n" (Bytes.to_string box) size);
  (* Label line: place labels under their dots where space allows. *)
  let label_row = Bytes.make width ' ' in
  List.iter
    (fun (d : Arcs.dot) ->
      match List.assoc_opt d.Arcs.ref_index labels with
      | None -> ()
      | Some l ->
          let p = scale d.Arcs.position in
          String.iteri
            (fun k ch ->
              let c = p + k in
              if c < width && Bytes.get label_row c = ' ' then
                Bytes.set label_row c ch)
            l)
    dots;
  Buffer.add_string buf (Printf.sprintf "     %s\n" (Bytes.to_string label_row));
  (* Legend. *)
  List.iter
    (fun (d : Arcs.dot) ->
      match List.assoc_opt d.Arcs.ref_index labels with
      | None -> ()
      | Some l ->
          Buffer.add_string buf
            (Printf.sprintf "     %-4s %-20s pos %6d\n" l
               (Ref_.to_string d.Arcs.ref_)
               d.Arcs.position))
    dots;
  List.iteri
    (fun i arc ->
      let name idx =
        match List.assoc_opt idx labels with Some l -> l | None -> string_of_int idx
      in
      let preserved = Arcs.arc_preserved dots ~size arc in
      Buffer.add_string buf
        (Printf.sprintf "     arc %d: %s -> %s span %dB %s\n" (i + 1)
           (name arc.Arcs.trailing) (name arc.Arcs.leading) arc.Arcs.span
           (if preserved then "PRESERVED" else "lost")))
    arcs;
  let conflicts = Arcs.severe_conflicts layout ~size ~line nest in
  Buffer.add_string buf
    (Printf.sprintf "     severe conflicts: %d\n" (List.length conflicts));
  Buffer.contents buf

let render_program ?width layout ~size ~line program =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i nest ->
      Buffer.add_string buf (Printf.sprintf "nest %d:\n" i);
      Buffer.add_string buf (render ?width layout ~size ~line nest))
    program.Program.nests;
  Buffer.contents buf
