(** ASCII rendering of the paper's layout diagrams (Figures 3, 4, 5, 7).

    The cache is drawn as a box of fixed character width; each reference
    becomes a dot at its scaled position, labelled below; group-reuse
    arcs are drawn above the box, solid when preserved and dotted when
    lost.  Example output for one nest:

    {v
        .----2222222222----.    ..111111111111..
    |--A0--A1----B0----B1----C0----C1--------------|  cache 16384B
     arcs: 1 A0->A1 7680B PRESERVED
           2 B0->B1 7680B lost (dot under arc: C0)
    v} *)

open Mlc_ir

(** [render layout ~size ~line nest] — a multi-line string; [width]
    controls the box width in characters (default 72). *)
val render : ?width:int -> Layout.t -> size:int -> line:int -> Nest.t -> string

(** Render every nest of a program. *)
val render_program :
  ?width:int -> Layout.t -> size:int -> line:int -> Program.t -> string
