open Mlc_ir

type cls = Register | L1_hit | L2_ref | Memory

type counts = {
  register : int;
  l1_hits : int;
  l2_refs : int;
  memory_refs : int;
}

(* Same array, same subscripts — read/write kind does not matter for the
   "second access is a register or trivial hit" rule. *)
let same_location r r' =
  match Ref_.constant_difference r r' with
  | Some ds -> List.for_all (( = ) 0) ds
  | None -> false

let classify_nest layout ~l1_size ?l2_size nest =
  let refs = Nest.refs nest in
  let arcs = Arcs.arcs layout nest in
  let l1_dots = Arcs.dots layout ~size:l1_size nest in
  let l2_dots =
    match l2_size with Some s -> Arcs.dots layout ~size:s nest | None -> []
  in
  let arc_of_trailing i = List.find_opt (fun a -> a.Arcs.trailing = i) arcs in
  let classified = ref [] in
  List.iteri
    (fun i r ->
      let cls =
        (* Duplicate of an earlier reference in the same body? *)
        let duplicate =
          List.exists
            (fun (j, r', _) -> j < i && same_location r r')
            !classified
        in
        if duplicate then Register
        else
          match arc_of_trailing i with
          | None -> Memory
          | Some arc ->
              if Arcs.arc_preserved l1_dots ~size:l1_size arc then L1_hit
              else begin
                match l2_size with
                | None -> L2_ref (* assume L2MAXPAD preserved it *)
                | Some s ->
                    if Arcs.arc_preserved l2_dots ~size:s arc then L2_ref
                    else Memory
              end
      in
      classified := (i, r, cls) :: !classified)
    refs;
  List.rev !classified

let count layout ~l1_size ?l2_size nests =
  let zero = { register = 0; l1_hits = 0; l2_refs = 0; memory_refs = 0 } in
  List.fold_left
    (fun acc nest ->
      List.fold_left
        (fun acc (_, _, cls) ->
          match cls with
          | Register -> { acc with register = acc.register + 1 }
          | L1_hit -> { acc with l1_hits = acc.l1_hits + 1 }
          | L2_ref -> { acc with l2_refs = acc.l2_refs + 1 }
          | Memory -> { acc with memory_refs = acc.memory_refs + 1 })
        acc
        (classify_nest layout ~l1_size ?l2_size nest))
    zero nests

let miss_cost ~l2_cost ~memory_cost counts =
  (float_of_int counts.l2_refs *. l2_cost)
  +. (float_of_int counts.memory_refs *. memory_cost)

let fusion_profitable layout ~l1_size ?l2_size ~l2_cost ~memory_cost ~original ~fused () =
  let before = count layout ~l1_size ?l2_size original in
  let after = count layout ~l1_size ?l2_size [ fused ] in
  miss_cost ~l2_cost ~memory_cost after < miss_cost ~l2_cost ~memory_cost before

let pp_counts ppf c =
  Format.fprintf ppf "register=%d l1_hits=%d l2_refs=%d memory_refs=%d"
    c.register c.l1_hits c.l2_refs c.memory_refs
