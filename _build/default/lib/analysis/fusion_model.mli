(** The two-level reference accounting of Section 4.

    For each loop nest, every reference in the body is classified by where
    its data comes from, assuming (as the paper does for this model) that
    arrays exceed the L2 capacity, no reuse survives between nests, and
    L2MAXPAD has preserved on the L2 cache all group reuse that the L1
    layout loses:

    - [Register]: a textually identical reference already issued in the
      same body (fusion creates these) — register or trivial L1 hit;
    - [L1_hit]: trailing reference whose group-reuse arc is preserved on
      the L1 cache;
    - [L2_ref]: arc lost on L1 but (by assumption / L2MAXPAD) preserved on
      L2 — paper's "L2 references";
    - [Memory]: leading references and references with no exploitable
      group reuse — paper's "memory references".

    On the Figure 2 example this reproduces the paper's numbers:
    original nests cost 5 memory + 2 L2 references, the fused nest 3 + 3. *)

open Mlc_ir

type cls = Register | L1_hit | L2_ref | Memory

type counts = {
  register : int;
  l1_hits : int;
  l2_refs : int;
  memory_refs : int;
}

(** Classification of each reference (body order) of one nest. *)
val classify_nest :
  Layout.t -> l1_size:int -> ?l2_size:int -> Nest.t -> (int * Ref_.t * cls) list

(** Aggregate over a list of nests (a program version). *)
val count :
  Layout.t -> l1_size:int -> ?l2_size:int -> Nest.t list -> counts

(** [miss_cost model counts] — weigh the counts by per-level miss costs to
    decide fusion profitability (paper: "comparing the sum of reuse at
    each cache level, scaled by the cost of cache misses at that level").
    [l2_cost] is the penalty of an L1 miss that hits L2; [memory_cost] of
    a miss to memory. *)
val miss_cost : l2_cost:float -> memory_cost:float -> counts -> float

(** [fusion_profitable] compares original nests against the fused nest
    under the cost weights. *)
val fusion_profitable :
  Layout.t ->
  l1_size:int ->
  ?l2_size:int ->
  l2_cost:float ->
  memory_cost:float ->
  original:Nest.t list ->
  fused:Nest.t ->
  unit ->
  bool

val pp_counts : Format.formatter -> counts -> unit
