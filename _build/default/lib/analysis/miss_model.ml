open Mlc_ir

(* Maximum trip count of each loop, evaluating bounds at enclosing-loop
   extremes (good enough for cost ranking). *)
let trip_counts nest =
  let bounds = Hashtbl.create 8 in
  List.iter
    (fun loop ->
      let eval_or corner e default =
        try
          Expr.eval
            (fun v ->
              match Hashtbl.find_opt bounds v with
              | Some (lo, hi) -> if corner then hi else lo
              | None -> raise Not_found)
            e
        with Not_found -> default
      in
      let lo = eval_or false loop.Loop.lo 0 in
      let hi = eval_or true loop.Loop.hi lo in
      Hashtbl.replace bounds loop.Loop.var (min lo hi, max lo hi))
    nest.Nest.loops;
  List.map
    (fun loop ->
      let lo, hi = Hashtbl.find bounds loop.Loop.var in
      let trip = ((hi - lo) / abs loop.Loop.step) + 1 in
      (loop.Loop.var, max 1 trip))
    nest.Nest.loops

let nest_cost layout ~line nest ~order =
  let trips = trip_counts nest in
  let trip v = try List.assoc v trips with Not_found -> 1 in
  match List.rev order with
  | [] -> 0.0
  | inner :: outers ->
      let outer_product =
        List.fold_left (fun acc v -> acc *. float_of_int (trip v)) 1.0 outers
      in
      let groups = Ref_group.of_nest layout nest in
      List.fold_left
        (fun acc g ->
          (* Cost one leader per group: group members share lines. *)
          let leader = (List.hd g.Ref_group.members).Ref_group.ref_ in
          let stride = abs (Reuse.stride_bytes layout leader inner) in
          let inner_trip = float_of_int (trip inner) in
          let lines =
            if stride = 0 then 1.0
            else if stride < line then
              inner_trip *. float_of_int stride /. float_of_int line
            else inner_trip
          in
          acc +. (lines *. outer_product))
        0.0 groups

let rank_permutations layout ~line nest =
  let vars = Nest.vars nest in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) xs in
            List.map (fun p -> x :: p) (permutations rest))
          xs
  in
  permutations vars
  |> List.filter (Dependence.permutation_legal nest)
  |> List.map (fun order -> (order, nest_cost layout ~line nest ~order))
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let best_permutation layout ~line nest =
  match rank_permutations layout ~line nest with
  | (order, _) :: _ -> order
  | [] -> Nest.vars nest
