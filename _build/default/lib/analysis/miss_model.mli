(** Static per-nest cache-cost estimation (Carr–McKinley–Tseng style
    "loop cost"), used to rank candidate loop permutations.

    For each uniformly generated group leader, the cost in cache lines of
    executing the whole nest with a given loop innermost is:
    1 line if the reference is invariant with respect to that loop,
    [trip · stride / line] lines if it strides by less than a line,
    [trip] lines otherwise — multiplied by the trips of all other loops.
    Lower is better; this is what makes permutation benefit every cache
    level at once (Section 2's argument). *)

open Mlc_ir

(** Estimated cache lines fetched by the nest if loops are executed in
    [order] (outermost first).  Constant-bound rectangular nests only;
    triangular bounds use their maximum extents. *)
val nest_cost : Layout.t -> line:int -> Nest.t -> order:string list -> float

(** All legal permutations ranked by cost, cheapest first. *)
val rank_permutations : Layout.t -> line:int -> Nest.t -> (string list * float) list

(** The memory-order best legal permutation (cheapest). *)
val best_permutation : Layout.t -> line:int -> Nest.t -> string list
