open Mlc_ir
module Cs = Mlc_cachesim

(* Trip counts at maximal extents, as in Miss_model. *)
let trip_counts nest =
  let bounds = Hashtbl.create 8 in
  List.iter
    (fun loop ->
      let eval_or corner e default =
        try
          Expr.eval
            (fun v ->
              match Hashtbl.find_opt bounds v with
              | Some (lo, hi) -> if corner then hi else lo
              | None -> raise Not_found)
            e
        with Not_found -> default
      in
      let lo = eval_or false loop.Loop.lo 0 in
      let hi = eval_or true loop.Loop.hi lo in
      Hashtbl.replace bounds loop.Loop.var (min lo hi, max lo hi))
    nest.Nest.loops;
  List.map
    (fun loop ->
      let lo, hi = Hashtbl.find bounds loop.Loop.var in
      (loop.Loop.var, max 1 (((hi - lo) / abs loop.Loop.step) + 1)))
    nest.Nest.loops

(* Lines a single reference streams through the whole nest, with spatial
   reuse on the innermost loop.  With [distinct_only], loops the
   reference is invariant to contribute no multiplicity — that turns
   traffic into a footprint (distinct lines) estimate. *)
let ref_line_traffic ?(distinct_only = false) layout ~line nest trips r =
  match List.rev (Nest.vars nest) with
  | [] -> 0.0
  | inner :: outers ->
      let trip v = try List.assoc v trips with Not_found -> 1 in
      let stride_of v = abs (Reuse.stride_bytes layout r v) in
      let stride = stride_of inner in
      let inner_trip = float_of_int (trip inner) in
      let lines =
        if stride = 0 then 1.0
        else if stride < line then inner_trip *. float_of_int stride /. float_of_int line
        else inner_trip
      in
      List.fold_left
        (fun acc v ->
          if distinct_only && stride_of v = 0 then acc
          else acc *. float_of_int (trip v))
        lines outers

(* Footprint in lines: distinct data each group leader spans. *)
let footprint_lines layout ~line nest trips =
  let groups = Ref_group.of_nest layout nest in
  List.fold_left
    (fun acc g ->
      let leader = (List.hd g.Ref_group.members).Ref_group.ref_ in
      acc +. ref_line_traffic ~distinct_only:true layout ~line nest trips leader)
    0.0 groups

let nest_misses layout ~size ~line nest =
  let trips = trip_counts nest in
  let footprint = footprint_lines layout ~line nest trips in
  if footprint *. float_of_int line <= float_of_int size then
    (* everything fits: cold misses only *)
    footprint
  else begin
    (* leaders stream (refetching across invariant outer loops); trailing
       refs whose arcs are lost re-fetch too *)
    let dots = Arcs.dots layout ~size nest in
    let arcs = Arcs.arcs layout nest in
    let lost_trailing_traffic =
      List.fold_left
        (fun acc arc ->
          if Arcs.arc_preserved dots ~size arc then acc
          else
            let trailing_ref =
              List.nth (Nest.refs nest) arc.Arcs.trailing
            in
            acc +. ref_line_traffic layout ~line nest trips trailing_ref)
        0.0 arcs
    in
    let groups = Ref_group.of_nest layout nest in
    let leaders_traffic =
      List.fold_left
        (fun acc g ->
          let leader = (List.hd g.Ref_group.members).Ref_group.ref_ in
          acc +. ref_line_traffic layout ~line nest trips leader)
        0.0 groups
    in
    (* ping-pong conflicts: each severely conflicting pair misses on
       every iteration (two misses per iteration), bounded later *)
    let iterations =
      List.fold_left (fun acc (_, t) -> acc * t) 1 trips |> float_of_int
    in
    let conflicts =
      List.length (Arcs.severe_conflicts layout ~size ~line nest)
    in
    let conflict_misses = 2.0 *. float_of_int conflicts *. iterations in
    let total_refs = float_of_int (Nest.ref_count nest) in
    Float.min total_refs (leaders_traffic +. lost_trailing_traffic +. conflict_misses)
  end

let program_misses layout machine program =
  List.map
    (fun g ->
      let size = g.Cs.Level.size and line = g.Cs.Level.line in
      float_of_int program.Program.time_steps
      *. List.fold_left
           (fun acc nest -> acc +. nest_misses layout ~size ~line nest)
           0.0 program.Program.nests)
    machine.Cs.Machine.geometries

let l1_miss_ratio layout machine program =
  match program_misses layout machine program with
  | l1 :: _ -> l1 /. float_of_int (Program.ref_count program)
  | [] -> 0.0
