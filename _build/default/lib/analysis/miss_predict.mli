(** Analytical cache-miss prediction — the "cache estimation technique"
    family the paper builds on (Ferrante/Sarkar, Gannon/Jalby; refined by
    cache-miss-equation work).  Three regimes per nest and cache level:

    - the nest's footprint fits the cache: only cold misses (footprint
      lines);
    - otherwise, each uniformly generated group fetches its leader's
      line traffic (the Carr–McKinley loop cost), {e plus} the traffic of
      every trailing reference whose group-reuse arc the layout fails to
      preserve at this cache size (the {!Arcs} test);
    - severe conflicts add ping-pong misses: each conflicting pair of
      references misses on every iteration until the pads remove it.

    The estimate is deliberately coarse — it exists to {e rank} layouts
    and transformations the way the paper's compiler does, and is
    validated against the simulator for ordering, not equality. *)

open Mlc_ir

(** Estimated misses of one nest execution on a direct-mapped cache. *)
val nest_misses : Layout.t -> size:int -> line:int -> Nest.t -> float

(** Per-level estimates for a whole program on a machine (levels as in
    the machine's geometry; each level estimated independently). *)
val program_misses :
  Layout.t -> Mlc_cachesim.Machine.t -> Program.t -> float list

(** Convenience: predicted L1 miss ratio (misses / references). *)
val l1_miss_ratio : Layout.t -> Mlc_cachesim.Machine.t -> Program.t -> float
