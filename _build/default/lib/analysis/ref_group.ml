open Mlc_ir

type member = {
  index : int;
  ref_ : Ref_.t;
  offset_bytes : int;
}

type t = {
  array : string;
  members : member list;
}

(* Linearized byte offset of a reference, ignoring the loop-variable part:
   with uniformly generated references the variable parts are identical,
   so constant parts alone give relative positions. *)
let const_offset layout r =
  let addr = Layout.address_expr layout r in
  Expr.const_part addr

let same_group a b =
  match Ref_.constant_difference a b with Some _ -> true | None -> false

let of_refs layout refs =
  let indexed = List.mapi (fun i r -> (i, r)) refs in
  let affine = List.filter (fun (_, r) -> Ref_.is_affine r) indexed in
  let groups = ref [] in
  List.iter
    (fun (i, r) ->
      let rec place = function
        | [] -> groups := !groups @ [ ref [ (i, r) ] ]
        | g :: rest -> (
            match !g with
            | (_, repr) :: _ when same_group repr r -> g := !g @ [ (i, r) ]
            | _ -> place rest)
      in
      place !groups)
    affine;
  List.map
    (fun g ->
      let members = !g in
      let array = (snd (List.hd members)).Ref_.array in
      let offsets = List.map (fun (i, r) -> (i, r, const_offset layout r)) members in
      let base = List.fold_left (fun acc (_, _, o) -> min acc o) max_int offsets in
      let members =
        offsets
        |> List.map (fun (index, ref_, o) -> { index; ref_; offset_bytes = o - base })
        |> List.sort (fun a b ->
               compare (a.offset_bytes, a.index) (b.offset_bytes, b.index))
      in
      { array; members })
    !groups

let of_nest layout nest = of_refs layout (Nest.refs nest)

let distinct_offsets t =
  List.sort_uniq compare (List.map (fun m -> m.offset_bytes) t.members)

let pp ppf t =
  Format.fprintf ppf "group %s: %s" t.array
    (String.concat ", "
       (List.map
          (fun m -> Printf.sprintf "%s@+%d" (Ref_.to_string m.ref_) m.offset_bytes)
          t.members))
