(** Uniformly generated reference groups.

    Two references belong to the same group when they name the same array
    and their subscripts differ only by constants (Gannon/Wolf–Lam's
    "uniformly generated" sets).  Group reuse — the asset GROUPPAD and the
    fusion model trade in — only exists inside such groups. *)

open Mlc_ir

type member = {
  index : int;        (** position of the reference in the nest's body order *)
  ref_ : Ref_.t;
  offset_bytes : int; (** linearized offset relative to the group leader *)
}

type t = {
  array : string;
  members : member list;  (** sorted by [offset_bytes], lowest first *)
}

(** [of_refs layout refs] partitions the affine references (gather refs
    are skipped).  Offsets are linearized with the layout's padded
    dimensions so intra-variable padding is respected; inter-variable
    pads cancel out within a group. *)
val of_refs : Layout.t -> Ref_.t list -> t list

(** Groups over a nest's body order. *)
val of_nest : Layout.t -> Nest.t -> t list

(** Distinct offsets, low to high (duplicates collapsed). *)
val distinct_offsets : t -> int list

val pp : Format.formatter -> t -> unit
