open Mlc_ir

type kind =
  | Self_temporal
  | Self_spatial
  | Group_temporal of { partner : int; iterations_apart : int }

type t = {
  ref_index : int;
  loop_var : string;
  kind : kind;
}

let stride_bytes layout r var = Expr.coeff (Layout.address_expr layout r) var

let of_nest layout ~line nest =
  let refs = Nest.refs nest in
  let groups = Ref_group.of_nest layout nest in
  let out = ref [] in
  List.iter
    (fun loop ->
      let var = loop.Loop.var in
      (* Self reuse. *)
      List.iteri
        (fun i r ->
          if Ref_.is_affine r then begin
            let stride = stride_bytes layout r var in
            if stride = 0 then out := { ref_index = i; loop_var = var; kind = Self_temporal } :: !out
            else if abs stride < line then
              out := { ref_index = i; loop_var = var; kind = Self_spatial } :: !out
          end)
        refs;
      (* Group-temporal reuse: a member reuses the data of the member at
         the next distinct offset when the offset gap is a positive
         multiple of this loop's stride. *)
      List.iter
        (fun g ->
          let members = g.Ref_group.members in
          List.iter
            (fun (m : Ref_group.member) ->
              let stride = stride_bytes layout m.Ref_group.ref_ var in
              if stride <> 0 then
                List.iter
                  (fun (m' : Ref_group.member) ->
                    let gap = m'.Ref_group.offset_bytes - m.Ref_group.offset_bytes in
                    if gap > 0 && gap mod stride = 0 && gap / stride > 0 then
                      out :=
                        {
                          ref_index = m.Ref_group.index;
                          loop_var = var;
                          kind =
                            Group_temporal
                              {
                                partner = m'.Ref_group.index;
                                iterations_apart = gap / stride;
                              };
                        }
                        :: !out)
                  members)
            members)
        groups)
    nest.Nest.loops;
  List.rev !out

let innermost_reuse layout ~line nest ref_index =
  let var = (Nest.innermost nest).Loop.var in
  of_nest layout ~line nest
  |> List.exists (fun r -> r.ref_index = ref_index && r.loop_var = var)

let pp ppf t =
  let kind_str =
    match t.kind with
    | Self_temporal -> "self-temporal"
    | Self_spatial -> "self-spatial"
    | Group_temporal { partner; iterations_apart } ->
        Printf.sprintf "group-temporal(partner=%d, +%d iters)" partner iterations_apart
  in
  Format.fprintf ppf "ref %d on %s: %s" t.ref_index t.loop_var kind_str
