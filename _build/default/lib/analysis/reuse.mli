(** Wolf–Lam style reuse classification for affine references.

    For each reference and each loop of a nest we report whether
    consecutive iterations of that loop revisit the same location
    (self-temporal), the same cache line (self-spatial), or data touched
    earlier by another reference of the same uniformly generated group
    (group-temporal).  These drive loop-permutation choice and the
    narrative the paper builds in Section 2. *)

open Mlc_ir

type kind =
  | Self_temporal
  | Self_spatial
  | Group_temporal of { partner : int; iterations_apart : int }
      (** reuses data of body reference [partner], that many iterations
          of the loop later *)

type t = {
  ref_index : int;
  loop_var : string;
  kind : kind;
}

(** Byte stride of a reference along one loop variable. *)
val stride_bytes : Layout.t -> Ref_.t -> string -> int

(** All reuse relations in a nest, given the cache line size used for the
    spatial threshold. *)
val of_nest : Layout.t -> line:int -> Nest.t -> t list

(** Does the nest, in its current order, carry any reuse on the innermost
    loop for this reference index? *)
val innermost_reuse : Layout.t -> line:int -> Nest.t -> int -> bool

val pp : Format.formatter -> t -> unit
