lib/cachesim/cost_model.ml: Array Hierarchy Level Stats
