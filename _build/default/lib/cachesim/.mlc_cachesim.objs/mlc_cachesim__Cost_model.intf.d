lib/cachesim/cost_model.mli: Hierarchy
