lib/cachesim/hierarchy.ml: Array Format Level List Stats
