lib/cachesim/hierarchy.mli: Format Level
