lib/cachesim/level.ml: Array List Stats
