lib/cachesim/level.mli: Stats
