lib/cachesim/machine.ml: Cost_model Hierarchy Level List Printf
