lib/cachesim/machine.mli: Cost_model Hierarchy Level
