lib/cachesim/stack_distance.ml: Array Hashtbl List Option
