lib/cachesim/stack_distance.mli:
