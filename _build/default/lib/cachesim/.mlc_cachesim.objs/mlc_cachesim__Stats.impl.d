lib/cachesim/stats.ml: Format
