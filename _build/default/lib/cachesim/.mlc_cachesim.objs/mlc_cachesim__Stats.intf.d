lib/cachesim/stats.mli: Format
