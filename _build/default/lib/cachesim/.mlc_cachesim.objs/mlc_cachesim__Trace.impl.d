lib/cachesim/trace.ml: Array Hashtbl Hierarchy List
