lib/cachesim/trace.mli: Hierarchy
