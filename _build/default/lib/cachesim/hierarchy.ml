type t = { levels : Level.t array }

let create ?write_allocate ?(prefetch_levels = []) geoms =
  if geoms = [] then invalid_arg "Hierarchy.create: no levels";
  {
    levels =
      Array.of_list
        (List.mapi
           (fun i g ->
             Level.create ?write_allocate
               ~prefetch_next_line:(List.mem i prefetch_levels)
               g)
           geoms);
  }

let ultrasparc () =
  create
    [
      { Level.size = 16 * 1024; line = 32; assoc = 1 };
      { Level.size = 512 * 1024; line = 64; assoc = 1 };
    ]

let alpha21164 () =
  create
    [
      { Level.size = 8 * 1024; line = 32; assoc = 1 };
      { Level.size = 96 * 1024; line = 64; assoc = 1 };
      { Level.size = 2 * 1024 * 1024; line = 64; assoc = 1 };
    ]

let levels t = Array.to_list t.levels

let n_levels t = Array.length t.levels

let access t ?(write = false) addr =
  let n = Array.length t.levels in
  let rec go i =
    if i = n then n
    else if Level.access t.levels.(i) ~write addr then i
    else go (i + 1)
  in
  go 0

let writebacks t =
  Array.fold_left (fun acc level -> acc + Level.writebacks level) 0 t.levels

let total_refs t = (Level.stats t.levels.(0)).Stats.accesses

let memory_accesses t =
  (Level.stats t.levels.(Array.length t.levels - 1)).Stats.misses

let miss_rates t =
  let total = total_refs t in
  Array.to_list t.levels
  |> List.map (fun level -> Stats.miss_rate_vs ~total_refs:total (Level.stats level))

let clear t = Array.iter Level.clear t.levels

let pp ppf t =
  Array.iteri
    (fun i level ->
      Format.fprintf ppf "L%d: %a@." (i + 1) Stats.pp (Level.stats level))
    t.levels
