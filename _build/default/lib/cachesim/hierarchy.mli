(** A multi-level cache hierarchy.

    An access is presented to the first (smallest, L1) level; on a miss it
    propagates to the next level, and so on.  A miss at the last level is a
    main-memory access.  Per-level statistics follow the paper's
    convention: each level's miss rate is reported against the {e total}
    number of references issued (see {!Stats.miss_rate_vs}). *)

type t

(** [create ?write_allocate ?prefetch_levels geoms] builds a hierarchy
    from the L1 geometry outward ([write_allocate] as in
    {!Level.create}; [prefetch_levels] lists 0-based level indices that
    get a next-line prefetcher).
    @raise Invalid_argument if [geoms] is empty. *)
val create :
  ?write_allocate:bool -> ?prefetch_levels:int list -> Level.geometry list -> t

(** One hierarchy per the paper's simulation setup: 16K direct-mapped L1
    with 32-byte lines and 512K direct-mapped L2 with 64-byte lines (also
    the Sun UltraSparc I configuration the paper times on). *)
val ultrasparc : unit -> t

(** A three-level configuration in the style of the DEC Alpha 21164
    (8K L1 / 96K L2 / 2M L3), used by the extension benches. *)
val alpha21164 : unit -> t

val levels : t -> Level.t list

val n_levels : t -> int

(** [access t ?write addr] sends one reference down the hierarchy.
    Returns the index of the level that hit (0 = L1), or [n_levels t]
    when the access went to main memory. *)
val access : t -> ?write:bool -> int -> int

(** Total write-backs across all levels (dirty evictions). *)
val writebacks : t -> int

(** Total references issued so far (i.e. L1 accesses). *)
val total_refs : t -> int

(** Main-memory accesses (misses at the last level). *)
val memory_accesses : t -> int

(** [miss_rates t] gives each level's misses / total refs, L1 first. *)
val miss_rates : t -> float list

val clear : t -> unit

val pp : Format.formatter -> t -> unit
