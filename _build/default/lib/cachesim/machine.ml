type t = {
  name : string;
  geometries : Level.geometry list;
  cost : Cost_model.t;
}

let ultrasparc =
  {
    name = "UltraSparc I (16K/32B L1, 512K/64B L2, direct-mapped)";
    geometries =
      [
        { Level.size = 16 * 1024; line = 32; assoc = 1 };
        { Level.size = 512 * 1024; line = 64; assoc = 1 };
      ];
    cost = Cost_model.ultrasparc;
  }

let alpha21164 =
  {
    name = "Alpha 21164 style (8K L1, 96K L2, 2M L3, direct-mapped)";
    geometries =
      [
        { Level.size = 8 * 1024; line = 32; assoc = 1 };
        { Level.size = 96 * 1024; line = 64; assoc = 3 };
        { Level.size = 2 * 1024 * 1024; line = 64; assoc = 1 };
      ];
    cost = Cost_model.alpha21164;
  }

(* The 21164's 96K L2 is 3-way; its set count is already a power of two.
   For the direct-mapped variant used by most benches we round the L2 to
   128K so every level stays a power of two. *)
let alpha21164_direct =
  {
    alpha21164 with
    name = "Alpha 21164 style, direct-mapped (8K/128K/2M)";
    geometries =
      [
        { Level.size = 8 * 1024; line = 32; assoc = 1 };
        { Level.size = 128 * 1024; line = 64; assoc = 1 };
        { Level.size = 2 * 1024 * 1024; line = 64; assoc = 1 };
      ];
  }

let alpha21164 = alpha21164_direct

let with_associativity k t =
  {
    t with
    name = Printf.sprintf "%s, %d-way" t.name k;
    geometries = List.map (fun g -> { g with Level.assoc = k }) t.geometries;
  }

let hierarchy t = Hierarchy.create t.geometries

let s1 t =
  match t.geometries with
  | g :: _ -> g.Level.size
  | [] -> invalid_arg "Machine.s1: no levels"

let level_size t i = (List.nth t.geometries i).Level.size

let lmax t =
  List.fold_left (fun acc g -> max acc g.Level.line) 0 t.geometries

let level_line t i = (List.nth t.geometries i).Level.line

let n_levels t = List.length t.geometries
