(** A machine bundles the cache geometry the optimizer sees with the cost
    model used to price simulated runs.  The optimization algorithms in
    [Locality] consult only the geometries (treating every level as
    direct-mapped, as the paper prescribes even for associative caches). *)

type t = {
  name : string;
  geometries : Level.geometry list;  (** L1 first *)
  cost : Cost_model.t;
}

(** The paper's evaluation machine: Sun UltraSparc I. *)
val ultrasparc : t

(** Three-level extension machine (DEC Alpha 21164 style). *)
val alpha21164 : t

(** [with_associativity k t] turns every level into a [k]-way LRU cache of
    the same capacity, for the paper's claim that treating k-way caches as
    direct-mapped captures nearly all the benefit. *)
val with_associativity : int -> t -> t

(** Fresh hierarchy for simulation. *)
val hierarchy : t -> Hierarchy.t

(** L1 capacity in bytes ([S1] in the paper). *)
val s1 : t -> int

(** Capacity of level [i] (0-based). *)
val level_size : t -> int -> int

(** Largest line size at any level ([Lmax] in the paper). *)
val lmax : t -> int

(** Line size of level [i] (0-based). *)
val level_line : t -> int -> int

val n_levels : t -> int
