(* Classic Fenwick-tree formulation: position t of the tree holds 1 when
   the line accessed at time t has not been touched again since.  The
   stack distance of an access to a line last touched at time t0 is the
   number of set positions in (t0, now). *)

type t = {
  total : int;
  cold : int;
  (* finite-distance histogram *)
  hist : (int, int) Hashtbl.t;
}

module Fenwick = struct
  type t = { tree : int array }

  let create n = { tree = Array.make (n + 1) 0 }

  let add t i delta =
    let i = ref (i + 1) in
    while !i < Array.length t.tree do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* sum of positions [0, i] *)
  let prefix t i =
    let acc = ref 0 in
    let i = ref (i + 1) in
    while !i > 0 do
      acc := !acc + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !acc

  let range t lo hi = if hi < lo then 0 else prefix t hi - if lo = 0 then 0 else prefix t (lo - 1)
end

let analyze ?(line = 32) trace =
  let n = Array.length trace in
  let fen = Fenwick.create n in
  let last_access = Hashtbl.create 1024 in
  let hist = Hashtbl.create 64 in
  let cold = ref 0 in
  Array.iteri
    (fun now addr ->
      let l = addr / line in
      (match Hashtbl.find_opt last_access l with
      | None -> incr cold
      | Some t0 ->
          let d = Fenwick.range fen (t0 + 1) (now - 1) in
          Hashtbl.replace hist d (1 + Option.value ~default:0 (Hashtbl.find_opt hist d));
          Fenwick.add fen t0 (-1));
      Fenwick.add fen now 1;
      Hashtbl.replace last_access l now)
    trace;
  { total = n; cold = !cold; hist }

let total t = t.total

let cold t = t.cold

let histogram t =
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) t.hist [] |> List.sort compare

let misses_at t ~lines =
  (* distance counts the lines touched strictly between the two accesses;
     the line itself plus [d] distinct others need [d + 1] slots, so an
     access hits iff d + 1 <= lines. *)
  t.cold
  + Hashtbl.fold (fun d c acc -> if d + 1 > lines then acc + c else acc) t.hist 0

let miss_curve t ~capacities =
  List.map (fun lines -> (lines, misses_at t ~lines)) capacities
