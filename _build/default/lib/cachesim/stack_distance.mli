(** LRU stack-distance analysis (Mattson et al.).

    For each access, the stack distance is the number of {e distinct}
    cache lines touched since the previous access to the same line
    (infinite for first touches).  A fully associative LRU cache of
    capacity [c] lines misses exactly on the accesses whose distance is
    [>= c] — so one pass over the trace yields the miss count for
    {e every} capacity at once.  This quantifies how much locality is
    available to each level of a hierarchy independent of conflicts,
    which is the backdrop to the paper's question of which level to
    optimize for. *)

type t

(** [analyze ~line trace] — trace of byte addresses, analyzed at
    line granularity (default 32). *)
val analyze : ?line:int -> int array -> t

(** Accesses analyzed. *)
val total : t -> int

(** First-touch (cold) accesses. *)
val cold : t -> int

(** Histogram: (distance, count) for finite distances, sorted. *)
val histogram : t -> (int * int) list

(** Misses of a fully associative LRU cache with [lines] lines
    (= cold + accesses with distance >= lines). *)
val misses_at : t -> lines:int -> int

(** Miss counts at the given capacities (in lines), as
    [(lines, misses)]. *)
val miss_curve : t -> capacities:int list -> (int * int) list
