type t = int array

let replay hierarchy trace =
  Array.iter (fun addr -> ignore (Hierarchy.access hierarchy addr)) trace

let strided ~base ~stride ~count =
  Array.init count (fun i -> base + (i * stride))

let interleave traces =
  let traces = Array.of_list traces in
  let lengths = Array.map Array.length traces in
  let longest = Array.fold_left max 0 lengths in
  let out = ref [] in
  for step = 0 to longest - 1 do
    Array.iteri
      (fun i trace -> if step < lengths.(i) then out := trace.(step) :: !out)
      traces
  done;
  Array.of_list (List.rev !out)

let concat traces = Array.concat traces

let repeat n trace = Array.concat (List.init n (fun _ -> trace))

let lines_touched ~line trace =
  let seen = Hashtbl.create 64 in
  Array.iter (fun addr -> Hashtbl.replace seen (addr / line) ()) trace;
  Hashtbl.length seen
