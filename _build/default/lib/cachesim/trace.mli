(** Address-trace utilities.

    A trace is a sequence of byte addresses.  The interpreter feeds the
    hierarchy directly for speed, but traces are convenient in tests and
    for replaying canned access patterns (e.g. tile footprints when
    checking self-interference). *)

type t = int array

(** [replay hierarchy trace] pushes every address through the hierarchy. *)
val replay : Hierarchy.t -> t -> unit

(** [strided ~base ~stride ~count] is [base, base+stride, ...]. *)
val strided : base:int -> stride:int -> count:int -> t

(** [interleave traces] round-robins the given traces: one element of
    each per step, skipping exhausted traces, preserving order — the
    access pattern of references progressing together in a loop body. *)
val interleave : t list -> t

(** [concat] glues traces back to back (loop nests in sequence). *)
val concat : t list -> t

(** [repeat n trace] repeats a trace [n] times (an outer loop). *)
val repeat : int -> t -> t

(** Distinct cache lines touched by the trace for a given line size. *)
val lines_touched : line:int -> t -> int
