lib/codegen/codegen_c.ml: Array Array_decl Buffer Expr Layout List Loop Mlc_ir Nest Printf Program Ref_ Stmt String Subscript
