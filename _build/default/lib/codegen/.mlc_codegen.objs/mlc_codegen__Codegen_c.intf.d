lib/codegen/codegen_c.mli: Layout Mlc_ir Program
