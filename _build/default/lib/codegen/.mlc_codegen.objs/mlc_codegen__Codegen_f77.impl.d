lib/codegen/codegen_f77.ml: Array Array_decl Buffer Expr Layout List Loop Mlc_ir Nest Printf Program Ref_ Stmt String Subscript
