lib/codegen/codegen_f77.mli: Layout Mlc_ir Program
