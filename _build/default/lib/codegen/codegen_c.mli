(** C code generation: emit a standalone C program that performs the
    {e same memory-reference stream} as the IR program under a given
    layout — the artifact a user compiles on a real machine to observe
    the paper's effects outside the simulator.

    The whole data area is one flat allocation sized by the layout's
    [total_bytes], so every pad (inter- and intra-variable) the padding
    algorithms inserted is realized physically, exactly as the SUIF
    passes realized them inside one global structure.  References become
    reads summed into a running checksum and writes of that checksum, so
    no access can be dead-code-eliminated; the emitted [main] runs the
    program [repeat] times around a timer and prints the checksum and
    elapsed seconds.

    The IR keeps references rather than arithmetic, so the generated
    code reproduces the access pattern, not the original numerics (see
    Pretty's note); gather references are emitted with their tables as
    static const arrays. *)

open Mlc_ir

(** [emit ?repeat layout program] — the complete C translation unit. *)
val emit : ?repeat:int -> Layout.t -> Program.t -> string

(** [write_file ?repeat layout program path]. *)
val write_file : ?repeat:int -> Layout.t -> Program.t -> string -> unit
