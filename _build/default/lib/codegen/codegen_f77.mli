(** Fortran 77 code generation — the paper's source language.

    The layout is realized the way the SUIF passes realized it: all
    variables live in one COMMON block, with PAD arrays inserted between
    them for the inter-variable pads and padded leading dimensions for
    the intra-variable (column) pads, so a Fortran compiler reproduces
    the optimized addresses exactly.  As with {!Codegen_c}, statement
    bodies reproduce the reference stream (reads summed into an
    accumulator, writes storing it); 1-based Fortran subscripts are
    emitted by shifting the IR's 0-based affine expressions.

    Gather subscripts are emitted with their index tables in DATA
    statements when small; tables above [max_table] entries raise
    (F77 DATA statements do not scale to megabyte tables). *)

open Mlc_ir

exception Unsupported of string

(** [emit ?max_table layout program] — a complete F77 translation unit.
    @raise Unsupported on gather tables above [max_table] (default
    4096). *)
val emit : ?max_table:int -> Layout.t -> Program.t -> string

val write_file : ?max_table:int -> Layout.t -> Program.t -> string -> unit
