lib/core/compiler.ml: Buffer Fusion Interp Layout List Mlc_cachesim Mlc_ir Nest Permute Pipeline Printf Program Scalar_replace String
