lib/core/compiler.mli: Layout Mlc_cachesim Mlc_ir Pipeline Program
