lib/core/distribution.ml: Array List Mlc_analysis Mlc_ir Nest Ref_ Stmt
