lib/core/distribution.mli: Mlc_ir Nest
