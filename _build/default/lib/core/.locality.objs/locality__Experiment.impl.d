lib/core/experiment.ml: Format Interp List Mlc_cachesim Mlc_ir Pipeline
