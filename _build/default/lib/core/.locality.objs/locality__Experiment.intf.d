lib/core/experiment.mli: Format Interp Layout Mlc_cachesim Mlc_ir Pipeline Program
