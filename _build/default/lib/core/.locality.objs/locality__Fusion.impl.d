lib/core/fusion.ml: Expr Grouppad Layout List Loop Mlc_analysis Mlc_cachesim Mlc_ir Nest Option Printf Program Ref_ Stmt
