lib/core/fusion.mli: Layout Mlc_analysis Mlc_cachesim Mlc_ir Nest Program
