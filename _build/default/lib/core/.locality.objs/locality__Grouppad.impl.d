lib/core/grouppad.ml: Layout List Mlc_analysis Mlc_ir Program
