lib/core/grouppad.mli: Layout Mlc_ir Program
