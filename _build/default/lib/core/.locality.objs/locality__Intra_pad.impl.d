lib/core/intra_pad.ml: Array Layout List Mlc_analysis Mlc_ir Nest Program Ref_
