lib/core/intra_pad.mli: Layout Mlc_analysis Mlc_ir Program
