lib/core/maxpad.ml: Layout List Mlc_ir
