lib/core/maxpad.mli: Layout Mlc_ir Program
