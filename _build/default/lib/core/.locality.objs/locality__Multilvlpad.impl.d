lib/core/multilvlpad.ml: Mlc_cachesim Pad
