lib/core/multilvlpad.mli: Layout Mlc_cachesim Mlc_ir Program
