lib/core/pad.ml: Layout List Mlc_analysis Mlc_ir Program Ref_
