lib/core/pad.mli: Layout Mlc_analysis Mlc_ir Program
