lib/core/permute.ml: Expr List Loop Mlc_analysis Mlc_ir Nest Printf
