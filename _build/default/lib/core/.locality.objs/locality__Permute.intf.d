lib/core/permute.mli: Layout Mlc_ir Nest
