lib/core/pipeline.ml: Grouppad Intra_pad Layout Maxpad Mlc_cachesim Mlc_ir Multilvlpad Pad
