lib/core/pipeline.mli: Layout Mlc_cachesim Mlc_ir Program
