lib/core/report.ml: List Printf String
