lib/core/report.mli:
