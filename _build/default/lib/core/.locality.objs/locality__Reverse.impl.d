lib/core/reverse.ml: List Loop Mlc_analysis Mlc_ir Nest Ref_
