lib/core/reverse.mli: Mlc_ir Nest
