lib/core/scalar_replace.ml: Expr List Loop Mlc_ir Nest Program Ref_ Stmt
