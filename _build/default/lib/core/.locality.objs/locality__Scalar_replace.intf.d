lib/core/scalar_replace.mli: Mlc_ir Nest Program
