lib/core/strip_mine.ml: Expr List Loop Mlc_ir Nest
