lib/core/strip_mine.mli: Mlc_ir Nest
