lib/core/tile_size.ml: Array Format List
