lib/core/tile_size.mli: Format
