lib/core/tiling.ml: Build List Mlc_analysis Mlc_ir Nest Permute Printf Program Strip_mine
