lib/core/tiling.mli: Mlc_ir Nest Program
