lib/core/transpose.ml: Array Array_decl Layout List Loop Mlc_analysis Mlc_ir Nest Program Ref_
