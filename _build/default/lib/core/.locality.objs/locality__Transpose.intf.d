lib/core/transpose.mli: Layout Mlc_ir Program
