lib/core/unimodular.ml: Array Expr Format List Loop Mlc_analysis Mlc_ir Nest Printf Ref_ Stmt String
