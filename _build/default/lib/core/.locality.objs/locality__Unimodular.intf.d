lib/core/unimodular.mli: Format Mlc_ir Nest
