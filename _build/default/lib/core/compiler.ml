open Mlc_ir
module Cs = Mlc_cachesim

type result = {
  program : Program.t;
  layout : Layout.t;
  log : string list;
}

type options = {
  permute : bool;
  fuse : bool;
  pad_strategy : Pipeline.strategy;
  scalar_replace : bool;
}

let default_options =
  {
    permute = true;
    fuse = true;
    pad_strategy = Pipeline.Grouppad_l1_l2;
    scalar_replace = false;
  }

let optimize ?(options = default_options) machine program =
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  let line = Cs.Machine.level_line machine 0 in
  (* 1. permutation toward memory order *)
  let program =
    if not options.permute then program
    else begin
      let layout = Layout.initial program in
      Program.map_nests
        (fun nest ->
          let best = Permute.optimize layout ~line nest in
          if Nest.vars best <> Nest.vars nest then
            say "permuted (%s) -> (%s)"
              (String.concat "," (Nest.vars nest))
              (String.concat "," (Nest.vars best));
          best)
        program
    end
  in
  (* 2. profitable fusion *)
  let program =
    if not options.fuse then program
    else begin
      let fused, fusion_log = Fusion.optimize_program machine program in
      List.iter (fun l -> say "fusion: %s" l) fusion_log;
      fused
    end
  in
  (* 3. scalar replacement (optional; changes the reference stream) *)
  let program =
    if not options.scalar_replace then program
    else begin
      let before = Program.ref_count program in
      let replaced = Scalar_replace.apply_program program in
      say "scalar replacement removed %d references per run"
        (before - Program.ref_count replaced);
      replaced
    end
  in
  (* 4. data layout *)
  let layout = Pipeline.layout_for machine options.pad_strategy program in
  say "layout: %s" (Pipeline.strategy_name options.pad_strategy);
  List.iter
    (fun v ->
      let pad = Layout.pad_before layout v in
      let intra = Layout.intra_pad layout v in
      if pad > 0 || intra > 0 then
        say "  %s: pad_before %dB%s" v pad
          (if intra > 0 then Printf.sprintf ", column +%d elems" intra else ""))
    (Layout.array_names layout);
  { program; layout; log = List.rev !log }

let report ?options machine program =
  let optimized = optimize ?options machine program in
  let orig_layout = Layout.initial program in
  let r0 = Interp.run machine orig_layout program in
  let r1 = Interp.run machine optimized.layout optimized.program in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program %s on %s\n" program.Program.name
                           machine.Cs.Machine.name);
  List.iter (fun l -> Buffer.add_string buf ("  " ^ l ^ "\n")) optimized.log;
  let rates label r =
    Buffer.add_string buf (Printf.sprintf "  %-10s" label);
    List.iteri
      (fun i rate ->
        Buffer.add_string buf (Printf.sprintf " L%d %5.2f%%" (i + 1) (100.0 *. rate)))
      r.Interp.miss_rates;
    Buffer.add_string buf (Printf.sprintf "  cycles %.3e\n" r.Interp.cycles)
  in
  rates "original" r0;
  rates "optimized" r1;
  Buffer.add_string buf
    (Printf.sprintf "  model-time improvement: %.2f%%\n"
       (Cs.Cost_model.improvement ~orig:r0.Interp.cycles ~opt:r1.Interp.cycles));
  Buffer.contents buf
