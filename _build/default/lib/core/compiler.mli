(** The full optimization pipeline, combining every pass in the order the
    paper's infrastructure applies them:

    + loop permutation per nest toward memory order (miss-model ranked,
      dependence-checked);
    + profitable loop fusion of adjacent nests (two-level model);
    + intra-variable padding where a variable conflicts with itself;
    + inter-variable padding / group-reuse padding for the L1 cache,
      then L2MAXPAD when a second level exists;
    + optionally scalar replacement of register-carried loads.

    Tiling is not applied blindly — it is profitable for reduction-style
    nests like matrix multiplication, not for the stencils that dominate
    the suite — so it stays an explicit tool ({!Tiling}).

    Every decision is logged; [optimize] never changes what the program
    computes (each pass is legality-checked). *)

open Mlc_ir

type result = {
  program : Program.t;
  layout : Layout.t;
  log : string list;
}

type options = {
  permute : bool;
  fuse : bool;
  pad_strategy : Pipeline.strategy;
  scalar_replace : bool;
}

val default_options : options

(** [optimize ?options machine program]. *)
val optimize :
  ?options:options -> Mlc_cachesim.Machine.t -> Program.t -> result

(** Convenience: simulate original vs optimized and report the paper's
    metrics (per-level miss rates and model-time improvement). *)
val report :
  ?options:options -> Mlc_cachesim.Machine.t -> Program.t -> string
