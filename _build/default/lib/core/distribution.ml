open Mlc_ir
module An = Mlc_analysis

exception Illegal of string

let apply nest groups =
  let stmts = Array.of_list nest.Nest.body in
  let n_stmts = Array.length stmts in
  let covered = List.sort compare (List.concat groups) in
  if covered <> List.init n_stmts (fun i -> i) then
    raise (Illegal "Distribution.apply: groups must partition the body");
  let group_of = Array.make n_stmts 0 in
  List.iteri (fun g members -> List.iter (fun s -> group_of.(s) <- g) members) groups;
  let vars = Nest.vars nest in
  (* Dependences between statements in different groups: the source's
     group must come first, and the distance must not be carried
     backward (the sink must not need a value from a {e later} outer
     iteration of an earlier group: distribution runs the whole first
     nest before the second, which is safe exactly when the dependence
     never flows from the later group back to the earlier one). *)
  Array.iteri
    (fun s1 stmt1 ->
      Array.iteri
        (fun s2 stmt2 ->
          if group_of.(s1) <> group_of.(s2) then
            List.iter
              (fun r1 ->
                List.iter
                  (fun r2 ->
                    if Ref_.is_write r1 || Ref_.is_write r2 then
                      match An.Dependence.between r1 r2 with
                      | An.Dependence.Independent -> ()
                      | An.Dependence.Unknown ->
                          raise (Illegal "Distribution.apply: unanalyzable dependence")
                      | An.Dependence.Distance ds ->
                          (* dependence between (s1 at I) and (s2 at I+d);
                             the textual/source order decides direction:
                             if d = 0 everywhere, statement order within
                             the body decides, and splitting preserves
                             group order, so only group order matters. *)
                          let vec =
                            List.map
                              (fun v -> try List.assoc v ds with Not_found -> 0)
                              vars
                          in
                          let sign =
                            let rec go = function
                              | [] -> 0
                              | 0 :: rest -> go rest
                              | x :: _ -> if x > 0 then 1 else -1
                            in
                            go vec
                          in
                          (* sign > 0: s2's access at later iterations —
                             source is s1.  The sink group must not come
                             before the source group. *)
                          let src_group, dst_group =
                            if sign > 0 then (group_of.(s1), group_of.(s2))
                            else if sign < 0 then (group_of.(s2), group_of.(s1))
                            else if s1 < s2 then (group_of.(s1), group_of.(s2))
                            else (group_of.(s2), group_of.(s1))
                          in
                          if dst_group < src_group then
                            raise
                              (Illegal
                                 "Distribution.apply: dependence flows backward \
                                  across groups"))
                  stmt2.Stmt.refs)
              stmt1.Stmt.refs)
        stmts)
    stmts;
  List.map
    (fun members ->
      { nest with Nest.body = List.map (fun s -> stmts.(s)) members })
    groups

let maximal nest =
  apply nest (List.init (List.length nest.Nest.body) (fun i -> [ i ]))
