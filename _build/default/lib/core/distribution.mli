(** Loop distribution (fission) — the inverse of fusion, cited by the
    paper among the helpful reordering transformations [18].  A nest with
    several statements is split into one nest per statement group, when
    no dependence is carried backward between the groups. *)

open Mlc_ir

exception Illegal of string

(** [apply nest groups] splits the body statements (by index) into the
    given groups, in order.  Legal when every dependence between
    statements of different groups flows from an earlier group to a
    later one with non-negative distance on every loop.
    @raise Illegal otherwise. *)
val apply : Nest.t -> int list list -> Nest.t list

(** Distribute into one nest per statement (maximal distribution), or
    raise. *)
val maximal : Nest.t -> Nest.t list
