open Mlc_ir
module An = Mlc_analysis

exception Illegal of string

(* Rename the second nest's loop variables positionally to the first's,
   in both subscripts and bounds. *)
let align_names n1 n2 =
  let vars1 = Nest.vars n1 and vars2 = Nest.vars n2 in
  if List.length vars1 <> List.length vars2 then
    raise (Illegal "Fusion: depth mismatch");
  let table = List.combine vars2 vars1 in
  let rename v = try List.assoc v table with Not_found -> v in
  let rename_expr = Expr.rename rename in
  let loops =
    List.map
      (fun l ->
        {
          l with
          Loop.var = rename l.Loop.var;
          lo = rename_expr l.Loop.lo;
          hi = rename_expr l.Loop.hi;
          hi_min = Option.map rename_expr l.Loop.hi_min;
        })
      n2.Nest.loops
  in
  let body =
    List.map (Stmt.map_refs (Ref_.map_exprs rename_expr)) n2.Nest.body
  in
  { Nest.loops; body }

let outer_const_bounds nest =
  match nest.Nest.loops with
  | l :: _ ->
      if Expr.is_const l.Loop.lo && Expr.is_const l.Loop.hi && l.Loop.hi_min = None
         && l.Loop.lo_max = None && l.Loop.step = 1
      then (Expr.const_part l.Loop.lo, Expr.const_part l.Loop.hi)
      else raise (Illegal "Fusion: outer loop must have constant unit-step bounds")
  | [] -> raise (Illegal "Fusion: empty nest")

let fuse ?(shift = 0) n1 n2 =
  if shift < 0 then raise (Illegal "Fusion: negative shift");
  let n2 = align_names n1 n2 in
  if not (An.Dependence.fusion_legal ~shift n1 n2) then
    raise (Illegal "Fusion: dependences forbid fusion at this shift");
  let lo1, hi1 = outer_const_bounds n1 in
  let lo2, hi2 = outer_const_bounds n2 in
  if lo1 <> lo2 || hi1 <> hi2 then
    raise (Illegal "Fusion: outer bounds differ");
  let outer_var = (List.hd n1.Nest.loops).Loop.var in
  (* Body 2, as seen from the fused loop: original iteration k - shift. *)
  let shifted_body2 =
    List.map
      (Stmt.map_refs (Ref_.map_exprs (Expr.shift outer_var (-shift))))
      n2.Nest.body
  in
  let with_outer nest lo hi =
    match nest.Nest.loops with
    | l :: rest ->
        {
          nest with
          Nest.loops =
            { l with Loop.lo = Expr.const lo; hi = Expr.const hi } :: rest;
        }
    | [] -> assert false
  in
  let core_lo = lo1 + shift and core_hi = hi1 in
  if core_lo > core_hi then raise (Illegal "Fusion: shift exceeds loop extent");
  let core =
    with_outer { n1 with Nest.body = n1.Nest.body @ shifted_body2 } core_lo core_hi
  in
  let prologue =
    if shift = 0 then [] else [ with_outer n1 lo1 (lo1 + shift - 1) ]
  in
  let epilogue =
    if shift = 0 then [] else [ with_outer n2 (hi2 - shift + 1) hi2 ]
  in
  prologue @ [ core ] @ epilogue

let fuse_program ?(max_shift = 4) program i =
  let nests = program.Program.nests in
  if i < 0 || i + 1 >= List.length nests then
    raise (Illegal "Fusion.fuse_program: nest index out of range");
  let n1 = List.nth nests i and n2 = List.nth nests (i + 1) in
  let n2' = align_names n1 n2 in
  match An.Dependence.min_legal_shift ~max_shift n1 n2' with
  | None -> raise (Illegal "Fusion.fuse_program: no legal shift found")
  | Some shift ->
      let fused = fuse ~shift n1 n2 in
      let before = List.filteri (fun j _ -> j < i) nests in
      let after = List.filteri (fun j _ -> j > i + 1) nests in
      { program with Program.nests = before @ fused @ after }

let evaluate layout ~l1_size ?l2_size ~original ~fused () =
  ( An.Fusion_model.count layout ~l1_size ?l2_size original,
    An.Fusion_model.count layout ~l1_size ?l2_size fused )

(* The fused "core" among the nests fuse produced: the one with the
   biggest body (peels restrict the same bodies to few iterations). *)
let core_of nests =
  List.fold_left
    (fun best nest ->
      if List.length (Nest.refs nest) > List.length (Nest.refs best) then nest
      else best)
    (List.hd nests) nests

let optimize_program ?(max_shift = 4) machine program =
  let module Cs = Mlc_cachesim in
  let l1_size = Cs.Machine.s1 machine in
  let l1_line = Cs.Machine.level_line machine 0 in
  let l2_cost = 6.0 and memory_cost = 50.0 in
  let grouppad p = Grouppad.apply ~size:l1_size ~line:l1_line p (Layout.initial p) in
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  (* One pass left to right; stay on the same index after a successful
     fusion so chains fuse greedily. *)
  let rec pass program i =
    let nests = program.Program.nests in
    if i + 1 >= List.length nests then program
    else begin
      let n1 = List.nth nests i and n2 = List.nth nests (i + 1) in
      match align_names n1 n2 with
      | exception Illegal _ ->
          say "nests %d,%d: shape mismatch, skipped" i (i + 1);
          pass program (i + 1)
      | n2' -> (
          match An.Dependence.min_legal_shift ~max_shift n1 n2' with
          | None ->
              say "nests %d,%d: no legal shift, skipped" i (i + 1);
              pass program (i + 1)
          | Some shift -> (
              match fuse ~shift n1 n2 with
              | exception Illegal m ->
                  say "nests %d,%d: %s" i (i + 1) m;
                  pass program (i + 1)
              | fused_nests ->
                  let core = core_of fused_nests in
                  let before = List.filteri (fun j _ -> j < i) nests in
                  let after = List.filteri (fun j _ -> j > i + 1) nests in
                  let candidate =
                    { program with Program.nests = before @ fused_nests @ after }
                  in
                  let co =
                    An.Fusion_model.count (grouppad program) ~l1_size [ n1; n2 ]
                  in
                  let cf =
                    An.Fusion_model.count (grouppad candidate) ~l1_size [ core ]
                  in
                  let cost = An.Fusion_model.miss_cost ~l2_cost ~memory_cost in
                  if cost cf < cost co then begin
                    say "nests %d,%d: fused (shift %d), model cost %.0f -> %.0f"
                      i (i + 1) shift (cost co) (cost cf);
                    pass candidate i
                  end
                  else begin
                    say "nests %d,%d: legal but unprofitable (%.0f -> %.0f)" i
                      (i + 1) (cost co) (cost cf);
                    pass program (i + 1)
                  end))
    end
  in
  let result = pass program 0 in
  (result, List.rev !log)
