(** Loop fusion (Section 4), with alignment shifts.

    Two adjacent nests of the same depth are fused iteration-wise.  When a
    dependence forbids direct fusion, the second body can be shifted: at
    fused outer iteration [k] it executes its original iteration [k −
    shift] (the shift-and-peel idea of Manjikian & Abdelrahman, which the
    paper cites).  Peeled prologue/epilogue nests cover the boundary
    iterations so the fused program performs exactly the original
    iterations. *)

open Mlc_ir

exception Illegal of string

(** [fuse ?shift n1 n2] — nests of equal depth whose loops correspond
    positionally (second nest's variables are renamed to the first's).
    Returns the peel-prologue (original first body on leading
    iterations), the fused core, and the peel-epilogue (second body on
    trailing iterations); empty peels are omitted.
    @raise Illegal on depth mismatch, non-constant outer bounds, or an
    illegal shift. *)
val fuse : ?shift:int -> Nest.t -> Nest.t -> Nest.t list

(** Fuse nests [i] and [i+1] of a program, picking the smallest legal
    shift automatically (up to [max_shift], default 4).
    @raise Illegal when no legal shift exists. *)
val fuse_program : ?max_shift:int -> Program.t -> int -> Program.t

(** Automatic fusion: repeatedly fuse adjacent nest pairs that are legal
    (smallest shift wins) and profitable under the Section 4 two-level
    model — the paper's "comparing the sum of reuse at each cache level,
    scaled by the cost of cache misses at that level".  GROUPPAD is
    applied to candidate layouts for the accounting; peeled iterations
    are excluded from the static counts like the paper's per-body model.
    Returns the program and a log line per decision. *)
val optimize_program :
  ?max_shift:int -> Mlc_cachesim.Machine.t -> Mlc_ir.Program.t ->
  Mlc_ir.Program.t * string list

(** Profitability per the paper: compare the two-level reference counts
    (Section 4 model) of original vs fused, weighted by miss costs.  The
    returned counts let callers print the accounting. *)
val evaluate :
  Layout.t ->
  l1_size:int ->
  ?l2_size:int ->
  original:Nest.t list ->
  fused:Nest.t list ->
  unit ->
  Mlc_analysis.Fusion_model.counts * Mlc_analysis.Fusion_model.counts
