open Mlc_ir
module An = Mlc_analysis

let preserved_references ~size program layout =
  List.fold_left
    (fun acc nest -> acc + An.Arcs.preserved_count layout ~size nest)
    0 program.Program.nests

let conflict_count ~size ~line program layout =
  List.fold_left
    (fun acc nest ->
      acc + List.length (An.Arcs.severe_conflicts layout ~size ~line nest))
    0 program.Program.nests

let apply ?candidate_step ~size ~line program layout =
  (* Default: ~128 candidate positions per variable, line-aligned — the
     "limited number of positions" of the original algorithm. *)
  let step =
    match candidate_step with
    | Some s -> max line s
    | None -> max line (size / 128 / line * line)
  in
  let candidates =
    let rec go p acc = if p >= size then List.rev acc else go (p + step) (p :: acc) in
    go 0 []
  in
  List.fold_left
    (fun layout v ->
      (* Score = (no new severe conflicts, preserved references); the pad
         is chosen per-variable greedily, like the original algorithm. *)
      let best = ref None in
      List.iter
        (fun pad ->
          let candidate = Layout.set_pad_before layout v pad in
          let conflicts = conflict_count ~size ~line program candidate in
          let preserved = preserved_references ~size program candidate in
          let key = (conflicts, -preserved, pad) in
          match !best with
          | Some (best_key, _) when compare key best_key >= 0 -> ()
          | _ -> best := Some (key, candidate))
        candidates;
      match !best with Some (_, l) -> l | None -> layout)
    layout (Layout.array_names layout)
