(** GROUPPAD — padding to preserve group-temporal reuse on the L1 cache
    (Rivera & Tseng ICS '98; Section 3.2.1).

    Variables are visited in declaration order.  For each one, a limited
    set of candidate positions (multiples of the cache line across the
    cache) is tried, and the position maximizing the number of references
    that successfully exploit group reuse (preserved arcs) across all
    nests is kept, preferring positions that introduce no severe
    conflicts and, among ties, the smallest pad. *)

open Mlc_ir

(** [apply ~size ~line program layout] — [size]/[line] of the cache being
    targeted (L1 for the classic pass). [candidate_step] defaults to one
    line; larger steps explore fewer positions. *)
val apply :
  ?candidate_step:int -> size:int -> line:int -> Program.t -> Layout.t -> Layout.t

(** Number of references exploiting group reuse over all nests on a cache
    of [size] bytes — the objective GROUPPAD maximizes. *)
val preserved_references : size:int -> Program.t -> Layout.t -> int

(** Severe-conflict count over all nests at (size, line). *)
val conflict_count : size:int -> line:int -> Program.t -> Layout.t -> int
