open Mlc_ir
module An = Mlc_analysis

let self_conflicts_of ~size ~line layout nest v =
  An.Arcs.severe_conflicts layout ~size ~line ~include_same_array:true nest
  |> List.filter (fun c ->
         let refs = Array.of_list (Nest.refs nest) in
         let arr i = refs.(i).Ref_.array in
         arr c.An.Arcs.a = v && arr c.An.Arcs.b = v)

let has_self_conflict ~size ~line program layout v =
  List.exists
    (fun nest -> self_conflicts_of ~size ~line layout nest v <> [])
    program.Program.nests

let apply ?max_elems ~size ~line program layout =
  let max_elems =
    match max_elems with
    | Some m -> m
    | None -> (line / 4) + 1 (* a few elements; enough to slide a line *)
  in
  List.fold_left
    (fun layout v ->
      let rec go layout n =
        if n >= max_elems || not (has_self_conflict ~size ~line program layout v)
        then layout
        else go (Layout.set_intra_pad layout v (Layout.intra_pad layout v + 1)) (n + 1)
      in
      go layout 0)
    layout (Layout.array_names layout)

let remaining_self_conflicts ~size ~line program layout =
  List.concat
    (List.mapi
       (fun i nest ->
         let refs = Array.of_list (Nest.refs nest) in
         An.Arcs.severe_conflicts layout ~size ~line ~include_same_array:true nest
         |> List.filter (fun c ->
                refs.(c.An.Arcs.a).Ref_.array = refs.(c.An.Arcs.b).Ref_.array)
         |> List.map (fun c -> (i, c)))
       program.Program.nests)
