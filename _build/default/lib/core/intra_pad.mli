(** Intra-variable (column) padding: lengthen each column of an array so
    that references to {e the same} variable stop colliding on the cache
    (Rivera & Tseng PLDI '98).  The paper applies this to ADI32 and
    ERLE64 before the inter-variable passes. *)

open Mlc_ir

(** [apply ~size ~line program layout] pads columns of arrays whose own
    references conflict, one element at a time, up to [max_elems]
    (default: one cache line's worth). *)
val apply :
  ?max_elems:int -> size:int -> line:int -> Program.t -> Layout.t -> Layout.t

(** Same-array severe conflicts remaining, per nest index. *)
val remaining_self_conflicts :
  size:int -> line:int -> Program.t -> Layout.t -> (int * Mlc_analysis.Arcs.conflict) list
