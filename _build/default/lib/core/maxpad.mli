(** MAXPAD and L2MAXPAD — maximal variable separation (Section 3.2.2).

    MAXPAD spreads the variables evenly across one cache so that columns
    of different variables cannot overlap (when column sizes are a small
    fraction of the cache, this preserves {e all} group reuse at that
    level).

    L2MAXPAD is the multi-level refinement: applied after GROUPPAD, it
    spreads variables across the L2 cache using pads that are multiples
    of the L1 cache size [S1].  A pad ≡ 0 (mod S1) leaves every address's
    residue mod S1 — and hence the whole GROUPPAD L1 layout — untouched,
    while repositioning variables on the L2 cache. *)

open Mlc_ir

(** [apply ~size program layout] — single-level MAXPAD on a cache of
    [size] bytes, with pad granularity [grain] (default: one element of
    padding precision, 8 bytes). *)
val apply : ?grain:int -> size:int -> Program.t -> Layout.t -> Layout.t

(** [apply_l2 ~s1 ~l2_size program layout] — L2MAXPAD: spread on the L2
    cache with pads that are multiples of [s1]. *)
val apply_l2 : s1:int -> l2_size:int -> Program.t -> Layout.t -> Layout.t

(** Positions of each array's base on a cache of [size] bytes. *)
val positions : size:int -> Layout.t -> (string * int) list
