module Cs = Mlc_cachesim

let config machine = (Cs.Machine.s1 machine, Cs.Machine.lmax machine)

let apply machine program layout =
  let size, line = config machine in
  Pad.apply ~size ~line program layout
