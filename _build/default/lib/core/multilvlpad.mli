(** MULTILVLPAD — PAD generalized to every cache level at once
    (Section 3.1.2).

    Because each level's capacity evenly divides the next's, padding
    against a single synthetic configuration — the L1 size [S1] with the
    largest line size [Lmax] found at any level — eliminates severe
    conflicts everywhere: if two references stay at least [Lmax] apart on
    a cache of size [S1], modular arithmetic keeps them at least as far
    apart on any cache of size [k·S1]. *)

open Mlc_ir

val apply : Mlc_cachesim.Machine.t -> Program.t -> Layout.t -> Layout.t

(** The synthetic configuration used: (S1, Lmax). *)
val config : Mlc_cachesim.Machine.t -> int * int
