open Mlc_ir
module An = Mlc_analysis

(* Does variable [v] conflict with any variable from [placed] in any nest?
   A conflict is two dots within one line, circularly, on a cache of
   [size] bytes. *)
let conflicts_with ~size ~line program layout v placed =
  List.exists
    (fun nest ->
      let dots = An.Arcs.dots layout ~size nest in
      let dv = List.filter (fun d -> d.An.Arcs.ref_.Ref_.array = v) dots in
      let du =
        List.filter
          (fun d -> List.mem d.An.Arcs.ref_.Ref_.array placed)
          dots
      in
      List.exists
        (fun a ->
          List.exists
            (fun b ->
              let s = (b.An.Arcs.position - a.An.Arcs.position) mod size in
              let s = if s < 0 then s + size else s in
              min s (size - s) < line)
            du)
        dv)
    program.Program.nests

let apply ~size ~line program layout =
  let max_bumps = size / line in
  let layout = ref layout in
  let placed = ref [] in
  List.iter
    (fun v ->
      let bumps = ref 0 in
      while
        !bumps < max_bumps
        && conflicts_with ~size ~line program !layout v !placed
      do
        layout := Layout.add_pad_before !layout v line;
        incr bumps
      done;
      placed := v :: !placed)
    (Layout.array_names !layout);
  !layout

(* Does placing [v] overload any cache set beyond [assoc] ways?  A "set"
   here is the line-granule position; references within one line of each
   other circularly compete for the same ways. *)
let overloads_set ~size ~line ~assoc program layout v placed =
  List.exists
    (fun nest ->
      let dots = An.Arcs.dots layout ~size nest in
      let relevant =
        List.filter
          (fun d ->
            let a = d.An.Arcs.ref_.Ref_.array in
            a = v || List.mem a placed)
          dots
      in
      (* for each dot of v, count distinct-array dots within one line *)
      List.exists
        (fun d ->
          d.An.Arcs.ref_.Ref_.array = v
          &&
          let colliding =
            List.filter
              (fun d' ->
                d'.An.Arcs.ref_.Ref_.array <> v
                &&
                let s = (d'.An.Arcs.position - d.An.Arcs.position) mod size in
                let s = if s < 0 then s + size else s in
                min s (size - s) < line)
              relevant
          in
          List.length colliding >= assoc)
        relevant)
    program.Program.nests

let apply_assoc ~size ~line ~assoc program layout =
  let max_bumps = size / line in
  let layout = ref layout in
  let placed = ref [] in
  List.iter
    (fun v ->
      let bumps = ref 0 in
      while
        !bumps < max_bumps
        && overloads_set ~size ~line ~assoc program !layout v !placed
      do
        layout := Layout.add_pad_before !layout v line;
        incr bumps
      done;
      placed := v :: !placed)
    (Layout.array_names !layout);
  !layout

let remaining_conflicts ~size ~line program layout =
  List.concat
    (List.mapi
       (fun i nest ->
         An.Arcs.severe_conflicts layout ~size ~line nest
         |> List.map (fun c -> (i, c)))
       program.Program.nests)
