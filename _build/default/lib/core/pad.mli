(** PAD — inter-variable padding to eliminate severe conflict misses on a
    single cache configuration (Rivera & Tseng, PLDI '98; Section 3.1.1).

    Variables are visited in declaration order.  For each one, while any
    of its references maps within one cache line (circularly) of a
    reference to a {e different, already-placed} variable in some nest,
    its base address is bumped by one cache line.  In practice only a few
    lines of padding per variable are needed. *)

open Mlc_ir

(** [apply ~size ~line program layout] returns the padded layout.
    [size] and [line] describe the (direct-mapped) cache targeted. *)
val apply : size:int -> line:int -> Program.t -> Layout.t -> Layout.t

(** Severe conflicts remaining across all nests (should be empty after
    [apply] unless the working set is inherently too dense). *)
val remaining_conflicts :
  size:int -> line:int -> Program.t -> Layout.t -> (int * Mlc_analysis.Arcs.conflict) list

(** The associativity-aware variant the paper argues is unnecessary: on a
    k-way cache a set only thrashes once {e more than k} references pile
    onto it, so padding is applied only when a cache set (at line
    granularity, circularly within one line) is hit by more than [assoc]
    references of a nest.  The ablation benches compare it against
    treating the cache as direct-mapped. *)
val apply_assoc :
  size:int -> line:int -> assoc:int -> Program.t -> Layout.t -> Layout.t
