open Mlc_ir
module An = Mlc_analysis

exception Illegal of string

let apply_unchecked nest order =
  let vars = Nest.vars nest in
  if List.sort compare order <> List.sort compare vars then
    raise (Illegal "Permute.apply: order is not a permutation of the nest's loops");
  let loop_of v = List.find (fun l -> l.Loop.var = v) nest.Nest.loops in
  let loops = List.map loop_of order in
  (* A loop bound may only mention variables of loops that remain outside
     it in the new order. *)
  List.iteri
    (fun i loop ->
      let outer = List.filteri (fun j _ -> j < i) order in
      let check e =
        List.iter
          (fun v ->
            if not (List.mem v outer) then
              raise
                (Illegal
                   (Printf.sprintf
                      "Permute.apply: bound of %s references %s which is not outside it"
                      loop.Loop.var v)))
          (Expr.vars e)
      in
      check loop.Loop.lo;
      check loop.Loop.hi;
      (match loop.Loop.lo_max with Some e -> check e | None -> ());
      match loop.Loop.hi_min with Some e -> check e | None -> ())
    loops;
  { nest with Nest.loops }

let apply nest order =
  if not (An.Dependence.permutation_legal nest order) then
    raise (Illegal "Permute.apply: dependences forbid this permutation");
  apply_unchecked nest order

let innermost nest var =
  let others = List.filter (fun v -> v <> var) (Nest.vars nest) in
  apply nest (others @ [ var ])

let optimize layout ~line nest =
  match An.Miss_model.rank_permutations layout ~line nest with
  | (order, _) :: _ when order <> Nest.vars nest -> (
      try apply nest order with Illegal _ -> nest)
  | _ -> nest
