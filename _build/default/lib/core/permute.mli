(** Loop permutation (Section 2.1).  Reorders a nest's loops; legality is
    checked against the dependence analysis, and bounds that reference a
    variable which would move inside them are rejected (no bound
    normalization is attempted — tiled nests keep their strip loops
    outside their element loops). *)

open Mlc_ir

exception Illegal of string

(** [apply nest order] with [order] the loop variables outermost-first.
    @raise Illegal when not a permutation, when dependences forbid it, or
    when a loop bound would refer to an inner variable. *)
val apply : Nest.t -> string list -> Nest.t

(** Like {!apply} but skips the dependence test; the caller must have
    established legality by other means.  {!Tiling.tile} uses this after
    checking full permutability of the {e original} band — once loops are
    strip-mined, the strip variables no longer appear in subscripts and
    the naive dependence model can no longer see that the traversal stays
    forward.  Bounds scoping is still enforced. *)
val apply_unchecked : Nest.t -> string list -> Nest.t

(** Permute so the given variable becomes innermost (common case of
    improving spatial locality). *)
val innermost : Nest.t -> string -> Nest.t

(** Memory-order driven permutation: pick the legal order the miss model
    ranks cheapest. *)
val optimize : Layout.t -> line:int -> Nest.t -> Nest.t
