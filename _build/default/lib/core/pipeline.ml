open Mlc_ir
module Cs = Mlc_cachesim

type strategy =
  | Original
  | Pad_l1
  | Pad_multilevel
  | Grouppad_l1
  | Grouppad_l1_l2

let strategy_name = function
  | Original -> "Orig"
  | Pad_l1 -> "L1 Opt (PAD)"
  | Pad_multilevel -> "L1&L2 Opt (MULTILVLPAD)"
  | Grouppad_l1 -> "L1 Opt (GROUPPAD)"
  | Grouppad_l1_l2 -> "L1&L2 Opt (GROUPPAD+L2MAXPAD)"

let all = [ Original; Pad_l1; Pad_multilevel; Grouppad_l1; Grouppad_l1_l2 ]

let l1_geometry machine =
  match machine.Cs.Machine.geometries with
  | g :: _ -> g
  | [] -> invalid_arg "Pipeline: machine without cache levels"

let with_intra machine program layout =
  let g = l1_geometry machine in
  Intra_pad.apply ~size:g.Cs.Level.size ~line:g.Cs.Level.line program layout

let layout_for machine strategy program =
  let layout = Layout.initial program in
  let g = l1_geometry machine in
  let s1 = g.Cs.Level.size and l1_line = g.Cs.Level.line in
  match strategy with
  | Original -> layout
  | Pad_l1 ->
      let layout = with_intra machine program layout in
      Pad.apply ~size:s1 ~line:l1_line program layout
  | Pad_multilevel ->
      let layout = with_intra machine program layout in
      Multilvlpad.apply machine program layout
  | Grouppad_l1 ->
      let layout = with_intra machine program layout in
      Grouppad.apply ~size:s1 ~line:l1_line program layout
  | Grouppad_l1_l2 ->
      let layout = with_intra machine program layout in
      let layout = Grouppad.apply ~size:s1 ~line:l1_line program layout in
      let l2_size =
        match machine.Cs.Machine.geometries with
        | _ :: g2 :: _ -> g2.Cs.Level.size
        | _ -> s1
      in
      Maxpad.apply_l2 ~s1 ~l2_size program layout
