let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar

let pct v = Printf.sprintf "%.2f%%" v

let f2 v = Printf.sprintf "%.2f" v

let table ~title ~columns rows =
  section title;
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length col) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Printf.printf "%-*s  " w cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let series ~title ~x_label ~labels points =
  let columns = x_label :: labels in
  let rows =
    List.map
      (fun (x, ys) -> string_of_int x :: List.map f2 ys)
      points
  in
  table ~title ~columns rows
