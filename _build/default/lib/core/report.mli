(** Plain-text table and series printing for the benches: every figure of
    the paper is regenerated as rows/series on stdout. *)

(** [table ~title ~columns rows] — columns are headers; each row is a
    list of cells. *)
val table : title:string -> columns:string list -> string list list -> unit

(** [series ~title ~x_label ~labels points] — one row per x value:
    [x, y1, y2, ...], printed as an aligned table (the figure's series). *)
val series :
  title:string -> x_label:string -> labels:string list -> (int * float list) list -> unit

val pct : float -> string

val f2 : float -> string

val section : string -> unit
