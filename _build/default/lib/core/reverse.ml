open Mlc_ir
module An = Mlc_analysis

exception Illegal of string

let apply nest var =
  if not (List.exists (fun l -> l.Loop.var = var) nest.Nest.loops) then
    raise (Illegal ("Reverse.apply: no loop " ^ var));
  (* Legal iff no dependence is carried on [var]: check all body pairs. *)
  let refs = Nest.refs nest in
  List.iteri
    (fun i1 r1 ->
      List.iteri
        (fun i2 r2 ->
          if i1 < i2 && (Ref_.is_write r1 || Ref_.is_write r2) then
            match An.Dependence.between r1 r2 with
            | An.Dependence.Independent -> ()
            | An.Dependence.Unknown ->
                raise (Illegal "Reverse.apply: unanalyzable dependence")
            | An.Dependence.Distance ds ->
                let d = try List.assoc var ds with Not_found -> 0 in
                if d <> 0 then
                  raise (Illegal ("Reverse.apply: dependence carried by " ^ var)))
        refs)
    refs;
  let loops =
    List.map
      (fun l ->
        if l.Loop.var = var && (l.Loop.hi_min <> None || l.Loop.lo_max <> None) then
          raise (Illegal "Reverse.apply: cannot reverse a clamped (tiled) loop")
        else if l.Loop.var = var then
          { l with Loop.lo = l.Loop.hi; hi = l.Loop.lo; step = -l.Loop.step }
        else l)
      nest.Nest.loops
  in
  { nest with Nest.loops }
