(** Loop reversal (a unimodular transformation; Section 2.1 argues it
    never needs multi-level awareness).  Reversing [for i = lo to hi]
    yields [for i = lo' = hi downto lo], implemented by negating the step
    and swapping the bound expressions. *)

open Mlc_ir

exception Illegal of string

(** [apply nest var] reverses the named loop.
    @raise Illegal when a dependence is carried by that loop (distance
    would flip sign), or the loop is unknown. *)
val apply : Nest.t -> string -> Nest.t
