open Mlc_ir

let same_location r r' =
  match Ref_.constant_difference r r' with
  | Some ds -> List.for_all (( = ) 0) ds
  | None -> false

let apply ?(max_distance = 2) nest =
  let inner_loop = Nest.innermost nest in
  let inner = inner_loop.Loop.var in
  (* on a downward loop, "k iterations earlier" means a larger value *)
  let dir = if inner_loop.Loop.step > 0 then 1 else -1 in
  let all_refs = Nest.refs nest in
  let replaced_by_rotation r =
    (* r's location was touched k in [1, max_distance] innermost
       iterations earlier by some reference r' iff shifting r by +k in
       the innermost variable makes it equal to r'. *)
    List.exists
      (fun r' ->
        (not (same_location r r'))
        &&
        let rec try_k k =
          if k > max_distance then false
          else
            let shifted = Ref_.map_exprs (Expr.shift inner (k * dir)) r in
            same_location shifted r' || try_k (k + 1)
        in
        try_k 1)
      all_refs
  in
  let body =
    List.fold_left
      (fun (seen, acc) stmt ->
        let refs, seen =
          List.fold_left
            (fun (refs, seen) r ->
              let is_read = not (Ref_.is_write r) in
              let dup = List.exists (same_location r) seen in
              let rotated = is_read && Ref_.is_affine r && replaced_by_rotation r in
              if is_read && Ref_.is_affine r && (dup || rotated) then (refs, seen)
              else (r :: refs, r :: seen))
            ([], seen) stmt.Stmt.refs
        in
        (seen, { stmt with Stmt.refs = List.rev refs } :: acc))
      ([], []) nest.Nest.body
    |> snd |> List.rev
  in
  { nest with Nest.body }

let apply_program ?max_distance program =
  Program.map_nests (apply ?max_distance) program

let removed ~before ~after =
  List.length (Nest.refs before) - List.length (Nest.refs after)
