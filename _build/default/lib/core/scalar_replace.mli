(** Scalar replacement (Carr & Kennedy): loads that a compiler would keep
    in registers are removed from the reference stream.

    Two register sources, both visible in the paper:
    - a read from a location already referenced earlier in the same
      iteration (the fusion model's [Register] class — "wherever there
      are two identical references, only the first may cause a cache
      fault");
    - a read whose group partner touched the same location at most
      [max_distance] iterations of the {e innermost} loop earlier
      (register rotation across stencil points, footnote 2's source of
      the 38→60 MFLOPS jump together with unrolling).

    Writes are never removed.  Boundary iterations (where the rotating
    registers are not yet warm) are ignored — the stream is an
    approximation from the steady state, like the paper's models. *)

open Mlc_ir

(** [apply ?max_distance nest] (default distance 2). *)
val apply : ?max_distance:int -> Nest.t -> Nest.t

(** Apply to every nest of a program. *)
val apply_program : ?max_distance:int -> Program.t -> Program.t

(** Reads removed, per nest, for reporting. *)
val removed : before:Nest.t -> after:Nest.t -> int
