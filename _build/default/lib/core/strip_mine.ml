open Mlc_ir

exception Illegal of string

let apply nest ~var ~width ~strip_var =
  if width <= 0 then raise (Illegal "Strip_mine.apply: width <= 0");
  if List.mem strip_var (Nest.vars nest) then
    raise (Illegal ("Strip_mine.apply: name collision on " ^ strip_var));
  let found = ref false in
  let loops =
    List.concat_map
      (fun l ->
        if l.Loop.var <> var then [ l ]
        else begin
          if l.Loop.step <> 1 then
            raise (Illegal "Strip_mine.apply: only unit-step loops");
          if l.Loop.hi_min <> None || l.Loop.lo_max <> None then
            raise (Illegal "Strip_mine.apply: loop already clamped");
          found := true;
          let strip =
            Loop.make ~step:width strip_var ~lo:l.Loop.lo ~hi:l.Loop.hi
          in
          let element =
            Loop.make var
              ~lo:(Expr.var strip_var)
              ~hi:(Expr.add (Expr.var strip_var) (Expr.const (width - 1)))
              ~hi_min:l.Loop.hi
          in
          [ strip; element ]
        end)
      nest.Nest.loops
  in
  if not !found then raise (Illegal ("Strip_mine.apply: no loop " ^ var));
  { nest with Nest.loops }
