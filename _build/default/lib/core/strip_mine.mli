(** Strip-mining: split [for i = lo to hi] into
    [for ii = lo to hi step w] / [for i = ii to min(ii + w − 1, hi)].
    Always legal; combined with {!Permute} it yields tiling (Section 5). *)

open Mlc_ir

exception Illegal of string

(** [apply nest ~var ~width ~strip_var] — the strip loop [strip_var] is
    inserted immediately outside [var]'s loop.
    @raise Illegal on unknown loop, non-positive width, non-unit step,
    clamped loops, or a name collision with [strip_var]. *)
val apply : Nest.t -> var:string -> width:int -> strip_var:string -> Nest.t
