type tile = { height : int; width : int }

let euclid_chain ~cache_elems ~col_elems =
  let rec go a b acc =
    if b = 0 then List.rev acc else go b (a mod b) (b :: acc)
  in
  let start = col_elems mod cache_elems in
  if start = 0 then [ cache_elems ]
  else go cache_elems start [ cache_elems ]

(* Circular gap check: columns k = 0..w-1 sit at positions
   (k * col) mod cache; a tile of height h is conflict-free iff every
   pair of positions keeps a circular distance >= h (or exactly 0 is
   impossible for distinct k unless col*k wraps onto itself, which is a
   conflict whenever h > 0). *)
let conflict_free ~cache_elems ~col_elems ~height w =
  if height > cache_elems then false
  else begin
    let positions = Array.init w (fun k -> k * col_elems mod cache_elems) in
    Array.sort compare positions;
    let ok = ref true in
    for i = 0 to w - 2 do
      if positions.(i + 1) - positions.(i) < height then ok := false
    done;
    (* wrap-around gap *)
    if w >= 2 && cache_elems - positions.(w - 1) + positions.(0) < height then
      ok := false;
    (* duplicated positions always conflict *)
    for i = 0 to w - 2 do
      if positions.(i + 1) = positions.(i) then ok := false
    done;
    !ok
  end

(* Adding a column can only shrink the minimum circular gap, so
   [conflict_free] is monotone (true up to some width, false beyond):
   binary search applies. *)
let max_conflict_free_width ~cache_elems ~col_elems ~height ~max_width =
  if not (conflict_free ~cache_elems ~col_elems ~height 1) then 0
  else begin
    let ok w = conflict_free ~cache_elems ~col_elems ~height w in
    let lo = ref 1 and hi = ref max_width in
    if ok max_width then max_width
    else begin
      (* invariant: ok lo, not (ok hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if ok mid then lo := mid else hi := mid
      done;
      !lo
    end
  end

let footprint_bytes ~elem t = t.height * t.width * elem

let select ?capacity_bytes ~cache_bytes ~elem ~col_elems ~rows () =
  let capacity = match capacity_bytes with Some c -> c | None -> cache_bytes in
  let cache_elems = cache_bytes / elem in
  let capacity_elems = capacity / elem in
  let candidates =
    euclid_chain ~cache_elems ~col_elems
    |> List.map (fun h -> min h rows)
    |> List.filter (fun h -> h > 0)
    |> List.sort_uniq compare
  in
  (* Score candidates by tiled-matmul misses ~ 1/(2H) + 1/(2W); lower is
     better.  Halve heights as extra candidates — the chain's raw values
     can be too tall to admit any width. *)
  let candidates =
    List.sort_uniq compare
      (candidates @ List.map (fun h -> max 1 (h / 2)) candidates)
  in
  let best = ref { height = 1; width = 1 } in
  let best_score = ref infinity in
  List.iter
    (fun h ->
      let max_w = max 1 (capacity_elems / h) in
      let w =
        max_conflict_free_width ~cache_elems ~col_elems ~height:h
          ~max_width:max_w
      in
      if w >= 1 then begin
        let score = (1.0 /. (2.0 *. float_of_int h)) +. (1.0 /. (2.0 *. float_of_int w)) in
        if score < !best_score then begin
          best_score := score;
          best := { height = h; width = w }
        end
      end)
    candidates;
  !best

let candidates_for ~cache_elems ~col_elems ~rows =
  euclid_chain ~cache_elems ~col_elems
  |> List.concat_map (fun h -> [ h; max 1 (h / 2) ])
  |> List.map (fun h -> min h rows)
  |> List.filter (fun h -> h > 0)
  |> List.sort_uniq compare

let lrw ~cache_bytes ~elem ~col_elems ~rows =
  let cache_elems = cache_bytes / elem in
  let best = ref { height = 1; width = 1 } in
  List.iter
    (fun h ->
      (* square tile: width = height, conflict-checked *)
      let w =
        min h (max_conflict_free_width ~cache_elems ~col_elems ~height:h ~max_width:h)
      in
      let side = min h w in
      if side >= 1 && conflict_free ~cache_elems ~col_elems ~height:side side
         && side * side > !best.height * !best.width
      then best := { height = side; width = side })
    (candidates_for ~cache_elems ~col_elems ~rows);
  !best

let tss ~cache_bytes ~elem ~col_elems ~rows =
  let cache_elems = cache_bytes / elem in
  let best = ref { height = 1; width = 1 } in
  List.iter
    (fun h ->
      let max_w = max 1 (cache_elems / h) in
      let w =
        max_conflict_free_width ~cache_elems ~col_elems ~height:h ~max_width:max_w
      in
      if w >= 1 && h * w > !best.height * !best.width then
        best := { height = h; width = w })
    (candidates_for ~cache_elems ~col_elems ~rows);
  !best

let no_l2_interference ~s1_elems ~k ~col_elems tile =
  conflict_free ~cache_elems:(k * s1_elems) ~col_elems ~height:tile.height
    tile.width

let pp ppf t = Format.fprintf ppf "%dx%d (HxW)" t.height t.width
