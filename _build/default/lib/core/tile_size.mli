(** Tile-size selection (Section 5).

    A tile of array columns is self-interference-free on a direct-mapped
    cache when the cache positions of its columns (spaced by the column
    size mod the cache size) keep a circular gap of at least the tile
    height.  The Euclidean recurrence on (cache size, column size) yields
    the natural candidate heights (Coleman–McKinley / Rivera–Tseng
    "euc/eucPad"); we score candidates by the miss fraction
    [1/(2H) + 1/(2W)] of tiled matrix multiplication.

    The paper's multi-level observation, which {!no_l2_interference}
    checks, is that a tile with no L1 self-interference has none on any
    larger level either (modular arithmetic: positions mod [k·S1] differ
    at least as much as positions mod [S1]). *)

type tile = { height : int; width : int }

(** Remainder chain of the Euclidean algorithm on
    ([cache_elems], [col_elems mod cache_elems]); these are the candidate
    non-conflicting tile heights. *)
val euclid_chain : cache_elems:int -> col_elems:int -> int list

(** Largest width such that [w] columns of height [h] (spacing
    [col_elems]) have no self-interference on the cache, capped at
    [max_width]. *)
val max_conflict_free_width :
  cache_elems:int -> col_elems:int -> height:int -> max_width:int -> int

(** [select ~cache_bytes ~elem ~col_elems ~rows] — choose a
    self-interference-free tile for an array with [rows] usable rows,
    maximizing tiled-matmul reuse.  [capacity_bytes] (default
    [cache_bytes]) caps the tile footprint: pass [2 * l1] for the paper's
    "2xL1" policy while still checking conflicts against [cache_bytes]. *)
val select :
  ?capacity_bytes:int ->
  cache_bytes:int ->
  elem:int ->
  col_elems:int ->
  rows:int ->
  unit ->
  tile

(** True when tile positions conflict-free mod [s1] are also
    conflict-free mod [k * s1] — exercised by tests as the paper's
    modular-arithmetic claim. *)
val no_l2_interference :
  s1_elems:int -> k:int -> col_elems:int -> tile -> bool

(** Lam–Rothberg–Wolf: the largest non-conflicting {e square} tile, found
    by walking the Euclidean chain until a remainder fits as both height
    and width (their √(cache)-style rule, conflict-checked). *)
val lrw : cache_bytes:int -> elem:int -> col_elems:int -> rows:int -> tile

(** Coleman–McKinley TSS: maximize tile {e area} (working set) over the
    Euclidean-chain heights subject to no self-interference, instead of
    the miss-fraction score {!select} uses. *)
val tss : cache_bytes:int -> elem:int -> col_elems:int -> rows:int -> tile

(** Footprint in bytes of the tile of one array. *)
val footprint_bytes : elem:int -> tile -> int

val pp : Format.formatter -> tile -> unit
