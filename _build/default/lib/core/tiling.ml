open Mlc_ir
module An = Mlc_analysis

exception Illegal of string

(* Tiling legality: strip-mining is always legal, and hoisting the strip
   loops outermost is legal when the band of loops from the outermost
   tiled loop inward is fully permutable (Irigoin & Triolet; Wolf & Lam).
   We check full permutability on the ORIGINAL nest — after strip-mining,
   strip variables vanish from subscripts and the dependence model can no
   longer see that the blocked traversal stays forward. *)
let check_fully_permutable nest tiled_vars =
  let vars = Nest.vars nest in
  List.iter
    (fun v ->
      if not (List.mem v vars) then raise (Illegal ("Tiling.tile: no loop " ^ v)))
    tiled_vars;
  (* The strip loops are hoisted to the very front, crossing every outer
     loop, so we require the whole nest to be fully permutable. *)
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) xs in
            List.map (fun p -> x :: p) (permutations rest))
          xs
  in
  let all_legal =
    List.for_all
      (fun perm -> An.Dependence.permutation_legal nest perm)
      (permutations vars)
  in
  if not all_legal then
    raise (Illegal "Tiling.tile: loop nest is not fully permutable")

let tile nest spec =
  check_fully_permutable nest (List.map (fun (v, _, _) -> v) spec);
  (* Strip-mine each requested loop, then hoist strip loops to the front
     in spec order. *)
  let nest =
    List.fold_left
      (fun nest (var, width, strip_var) ->
        try Strip_mine.apply nest ~var ~width ~strip_var
        with Strip_mine.Illegal m -> raise (Illegal m))
      nest spec
  in
  let strip_vars = List.map (fun (_, _, s) -> s) spec in
  let element_vars =
    List.filter (fun v -> not (List.mem v strip_vars)) (Nest.vars nest)
  in
  try Permute.apply_unchecked nest (strip_vars @ element_vars)
  with Permute.Illegal m -> raise (Illegal m)

let matmul n =
  let open Build in
  let a = arr "A" [ n; n ] and b = arr "B" [ n; n ] and cm = arr "C" [ n; n ] in
  let i = v "I" and j = v "J" and k = v "K" in
  program
    (Printf.sprintf "matmul-%d" n)
    [ a; b; cm ]
    [
      nest
        [ loop "J" 0 (n - 1); loop "K" 0 (n - 1); loop "I" 0 (n - 1) ]
        [ asn ~flops:2 (w "C" [ i; j ]) [ r "C" [ i; j ]; r "A" [ i; k ]; r "B" [ k; j ] ] ];
    ]

let tiled_matmul ~n ~h ~w =
  let p = matmul n in
  match p.Program.nests with
  | [ nest ] ->
      let tiled = tile nest [ ("K", w, "KK"); ("I", h, "II") ] in
      (* Figure 8 order: KK, II, J, K, I. *)
      (* tile already verified full permutability of the original nest *)
      let tiled =
        try Permute.apply_unchecked tiled [ "KK"; "II"; "J"; "K"; "I" ]
        with Permute.Illegal m -> raise (Illegal m)
      in
      {
        p with
        Program.name = Printf.sprintf "matmul-%d-tiled-%dx%d" n h w;
        nests = [ tiled ];
      }
  | _ -> assert false
