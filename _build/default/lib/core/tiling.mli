(** Tiling (Section 5, Figure 8).

    [tile] is the generic transformation: strip-mine the chosen loops and
    move the strip loops outermost (preserving their relative order).
    [matmul] and [tiled_matmul] build the paper's evaluation kernel:

    {v
    do KK = 1,N,W
     do II = 1,N,H
      do J = 1,N
       do K = KK, min(KK+W-1,N)
        do I = II, min(II+H-1,N)
         C(I,J) = C(I,J) + A(I,K)*B(K,J)
    v} *)

open Mlc_ir

exception Illegal of string

(** [tile nest spec] with [spec] = [(var, width, strip_name); ...]
    applied outside-in; all strip loops end up outermost, in the order
    given. *)
val tile : Nest.t -> (string * int * string) list -> Nest.t

(** Untiled IJK matrix multiplication C = A·B on NxN doubles, J outermost
    (column-major-friendly: I innermost). *)
val matmul : int -> Program.t

(** The Figure 8 nest, built with {!tile} from {!matmul}. *)
val tiled_matmul : n:int -> h:int -> w:int -> Program.t
