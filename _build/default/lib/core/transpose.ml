open Mlc_ir
module An = Mlc_analysis

exception Illegal of string

let permute_list perm xs =
  let a = Array.of_list xs in
  if Array.length perm <> Array.length a then
    raise (Illegal "Transpose.apply: arity mismatch");
  Array.to_list (Array.map (fun old_dim -> a.(old_dim)) perm)

let apply program name perm =
  let decl = Program.find_array program name in
  let is_perm =
    List.sort compare (Array.to_list perm)
    = List.init (Array.length perm) (fun i -> i)
  in
  if not is_perm then raise (Illegal "Transpose.apply: not a permutation");
  let decl' = { decl with Array_decl.dims = permute_list perm decl.Array_decl.dims } in
  let arrays =
    List.map
      (fun a -> if a.Array_decl.name = name then decl' else a)
      program.Program.arrays
  in
  let rewrite r =
    if r.Ref_.array <> name then r
    else { r with Ref_.subs = permute_list perm r.Ref_.subs }
  in
  let program = { program with Program.arrays } in
  Program.map_nests (Nest.map_refs rewrite) program

let transpose_2d program name = apply program name [| 1; 0 |]

(* Count references to [name] that stride by less than a line in their
   nest's innermost loop. *)
let unit_stride_refs program layout ~line name =
  List.fold_left
    (fun acc nest ->
      let inner = (Nest.innermost nest).Loop.var in
      List.fold_left
        (fun acc r ->
          if r.Ref_.array = name && Ref_.is_affine r then
            let stride = abs (An.Reuse.stride_bytes layout r inner) in
            if stride > 0 && stride < line then acc + 1 else acc
          else acc)
        acc (Nest.refs nest))
    0 program.Program.nests

let optimize program layout ~line =
  List.fold_left
    (fun (program, transposed) decl ->
      let name = decl.Array_decl.name in
      if List.length decl.Array_decl.dims <> 2 then (program, transposed)
      else begin
        let before = unit_stride_refs program layout ~line name in
        let candidate = transpose_2d program name in
        let layout' = Layout.initial candidate in
        let after = unit_stride_refs candidate layout' ~line name in
        if after > before then (candidate, name :: transposed)
        else (program, transposed)
      end)
    (program, []) program.Program.arrays
