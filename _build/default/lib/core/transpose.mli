(** Array transpose — the data-layout transformation of Figure 1
    (Section 2.2).  The array's dimensions are permuted and every
    reference's subscripts are permuted to match, so the program computes
    the same thing with a different memory layout.  Like loop
    permutation, this improves spatial locality at {e every} cache level
    at once. *)

open Mlc_ir

exception Illegal of string

(** [apply program name perm] permutes array [name]'s dimensions by
    [perm] ([perm.(new_dim) = old_dim]) and rewrites every reference.
    @raise Illegal on arity mismatch or gather subscripts in a permuted
    dimension. *)
val apply : Program.t -> string -> int array -> Program.t

(** [transpose_2d program name] — the common case. *)
val transpose_2d : Program.t -> string -> Program.t

(** Choose arrays whose transposition makes more references unit-stride
    in their nest's innermost loop; returns the transformed program and
    the arrays transposed.  A simple, greedy version of [13]'s
    algorithm. *)
val optimize : Program.t -> Layout.t -> line:int -> Program.t * string list
