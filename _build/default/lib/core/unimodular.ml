open Mlc_ir
module An = Mlc_analysis

exception Illegal of string

type t = int array array

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

let permutation n order =
  if Array.length order <> n then raise (Illegal "Unimodular.permutation: bad order");
  Array.init n (fun row ->
      Array.init n (fun col -> if order.(row) = col then 1 else 0))

let reversal n i =
  let m = identity n in
  m.(i).(i) <- -1;
  m

let skew n ~target ~source ~factor =
  if source >= target then
    raise (Illegal "Unimodular.skew: source loop must be outside target");
  let m = identity n in
  m.(target).(source) <- factor;
  m

let multiply a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0 in
          for k = 0 to n - 1 do
            acc := !acc + (a.(i).(k) * b.(k).(j))
          done;
          !acc))

(* Laplace expansion — matrices here are tiny (loop depth <= 5). *)
let rec determinant m =
  let n = Array.length m in
  if n = 0 then 1
  else if n = 1 then m.(0).(0)
  else begin
    let acc = ref 0 in
    for j = 0 to n - 1 do
      let minor =
        Array.init (n - 1) (fun r ->
            Array.init (n - 1) (fun c -> m.(r + 1).(if c < j then c else c + 1)))
      in
      let sign = if j mod 2 = 0 then 1 else -1 in
      acc := !acc + (sign * m.(0).(j) * determinant minor)
    done;
    !acc
  end

(* Inverse via the adjugate: for |det| = 1 the inverse is integral. *)
let inverse m =
  let n = Array.length m in
  let det = determinant m in
  if det <> 1 && det <> -1 then
    raise (Illegal "Unimodular.inverse: matrix is not unimodular");
  let cofactor i j =
    let minor =
      Array.init (n - 1) (fun r ->
          Array.init (n - 1) (fun c ->
              m.(if r < i then r else r + 1).(if c < j then c else c + 1)))
    in
    let sign = if (i + j) mod 2 = 0 then 1 else -1 in
    sign * determinant minor
  in
  Array.init n (fun i -> Array.init n (fun j -> det * cofactor j i))

let is_permutation_matrix m =
  Array.for_all
    (fun row ->
      Array.for_all (fun x -> x = 0 || x = 1) row
      && Array.fold_left ( + ) 0 row = 1)
    m

let lex_sign vec =
  let rec go i =
    if i = Array.length vec then 0
    else if vec.(i) > 0 then 1
    else if vec.(i) < 0 then -1
    else go (i + 1)
  in
  go 0

let is_legal nest t =
  let vars = Array.of_list (Nest.vars nest) in
  let refs = Array.of_list (Nest.refs nest) in
  let deps = ref [] in
  Array.iteri
    (fun i1 r1 ->
      Array.iteri
        (fun i2 r2 ->
          if i1 < i2 && (Ref_.is_write r1 || Ref_.is_write r2) then
            match An.Dependence.between r1 r2 with
            | An.Dependence.Independent -> ()
            | d -> deps := d :: !deps)
        refs)
    refs;
  List.for_all
    (fun d ->
      match d with
      | An.Dependence.Independent -> true
      | An.Dependence.Unknown -> false
      | An.Dependence.Distance ds ->
          let star =
            Array.exists (fun v -> not (List.mem_assoc v ds)) vars
            && List.length ds < Array.length vars
          in
          if star then
            (* Fall back to the permutation test when t is a permutation;
               otherwise be conservative. *)
            is_permutation_matrix t
            && An.Dependence.permutation_legal nest
                 (Array.to_list
                    (Array.map (fun row ->
                         let j = ref 0 in
                         Array.iteri (fun c x -> if x = 1 then j := c) row;
                         vars.(!j))
                       t))
          else begin
            let vec =
              Array.map (fun v -> try List.assoc v ds with Not_found -> 0) vars
            in
            (* canonicalize: the dependence flows forward in the original
               order *)
            let vec = if lex_sign vec < 0 then Array.map (fun x -> -x) vec else vec in
            let n = Array.length vars in
            let out = Array.make n 0 in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                out.(i) <- out.(i) + (t.(i).(j) * vec.(j))
              done
            done;
            lex_sign out >= 0
          end)
    !deps

(* --- bound generation by Fourier-Motzkin elimination -------------------- *)

(* A constraint is sum(coeffs . y) + const >= 0 over the new iteration
   variables. *)
type constr = { coeffs : int array; const : int }

let eliminate k constraints =
  (* Remove variable k, combining lower/upper pairs. *)
  let zero, nonzero =
    List.partition (fun c -> c.coeffs.(k) = 0) constraints
  in
  let lowers = List.filter (fun c -> c.coeffs.(k) > 0) nonzero in
  let uppers = List.filter (fun c -> c.coeffs.(k) < 0) nonzero in
  let combos =
    List.concat_map
      (fun lo ->
        List.map
          (fun up ->
            let a = lo.coeffs.(k) and b = -up.coeffs.(k) in
            (* b*lo + a*up eliminates y_k *)
            {
              coeffs =
                Array.init (Array.length lo.coeffs) (fun j ->
                    (b * lo.coeffs.(j)) + (a * up.coeffs.(j)));
              const = (b * lo.const) + (a * up.const);
            })
          uppers)
      lowers
  in
  zero @ combos

let apply nest t =
  let n = Nest.depth nest in
  if Array.length t <> n then raise (Illegal "Unimodular.apply: size mismatch");
  let det = determinant t in
  if det <> 1 && det <> -1 then
    raise (Illegal "Unimodular.apply: matrix is not unimodular");
  if not (is_legal nest t) then
    raise (Illegal "Unimodular.apply: dependences forbid this transformation");
  let loops = Array.of_list nest.Nest.loops in
  Array.iter
    (fun l ->
      if
        (not (Expr.is_const l.Loop.lo))
        || (not (Expr.is_const l.Loop.hi))
        || l.Loop.hi_min <> None || l.Loop.step <> 1
      then
        raise
          (Illegal "Unimodular.apply: only constant rectangular unit-step nests"))
    loops;
  let tinv = inverse t in
  let old_names = Array.map (fun l -> l.Loop.var) loops in
  (* Name the new axes: when row k of T is a unit vector e_c, the new
     loop IS the old loop c (y_k = x_c) and keeps its name; other rows
     are genuinely new axes and get fresh names. *)
  let new_names =
    let unit_col row =
      let nonzero = ref [] in
      Array.iteri (fun j c -> if c <> 0 then nonzero := (j, c) :: !nonzero) row;
      match !nonzero with [ (j, 1) ] -> Some j | _ -> None
    in
    Array.init n (fun k ->
        match unit_col t.(k) with
        | Some c -> old_names.(c)
        | None -> Printf.sprintf "%s'" old_names.(k))
  in
  (* Substitute old variables by rows of T^-1 over the new variables.
     Two phases via fresh names to make the substitution simultaneous. *)
  let tmp i = Printf.sprintf "__u%d" i in
  let subst_ref r =
    let r =
      Ref_.map_exprs
        (Expr.rename (fun v ->
             match Array.to_list old_names |> List.mapi (fun i x -> (x, i))
                   |> List.assoc_opt v
             with
             | Some i -> tmp i
             | None -> v))
        r
    in
    let r =
      Array.to_list tinv
      |> List.mapi (fun i row ->
             let replacement =
               Array.to_list row
               |> List.mapi (fun j c -> Expr.term c new_names.(j))
               |> List.fold_left Expr.add (Expr.const 0)
             in
             (tmp i, replacement))
      |> List.fold_left
           (fun r (from, into) ->
             Ref_.map_exprs (fun e -> Expr.subst from into e) r)
           r
    in
    r
  in
  let body = List.map (Stmt.map_refs subst_ref) nest.Nest.body in
  (* Constraints: lo_i <= (T^-1 y)_i <= hi_i. *)
  let constraints =
    List.concat
      (List.init n (fun i ->
           let lo = Expr.const_part loops.(i).Loop.lo in
           let hi = Expr.const_part loops.(i).Loop.hi in
           [
             { coeffs = Array.copy tinv.(i); const = -lo };
             { coeffs = Array.map (fun c -> -c) tinv.(i); const = hi };
           ]))
  in
  (* Peel bounds for each new loop from innermost out.  Up to two lower
     bounds (the second becomes the lo_max clamp) and two upper bounds
     (hi_min) are representable in the IR — enough for skewed
     rectangles and wavefronts. *)
  let bounds =
    Array.make n (Expr.const 0, (None : Expr.t option), Expr.const 0, (None : Expr.t option))
  in
  let rec peel k constraints =
    if k < 0 then ()
    else begin
      let expr_of coeffs const exclude =
        (* expression over new variables 0..exclude-1 *)
        let e = ref (Expr.const const) in
        for j = 0 to exclude - 1 do
          e := Expr.add !e (Expr.term coeffs.(j) new_names.(j))
        done;
        for j = exclude + 1 to n - 1 do
          if coeffs.(j) <> 0 then
            raise (Illegal "Unimodular.apply: bound depends on an inner variable")
        done;
        !e
      in
      let lowers =
        List.filter_map
          (fun c ->
            if c.coeffs.(k) > 0 then begin
              if c.coeffs.(k) <> 1 then
                raise (Illegal "Unimodular.apply: non-unit bound coefficient");
              (* y_k >= -(rest) *)
              Some (Expr.scale (-1) (expr_of c.coeffs c.const k))
            end
            else None)
          constraints
        |> List.sort_uniq Expr.compare
      in
      let uppers =
        List.filter_map
          (fun c ->
            if c.coeffs.(k) < 0 then begin
              if c.coeffs.(k) <> -1 then
                raise (Illegal "Unimodular.apply: non-unit bound coefficient");
              (* y_k <= rest *)
              Some (expr_of c.coeffs c.const k)
            end
            else None)
          constraints
        |> List.sort_uniq Expr.compare
      in
      let lo, lo_max =
        match lowers with
        | [ lo ] -> (lo, None)
        | [ lo1; lo2 ] -> (lo1, Some lo2)
        | _ ->
            raise
              (Illegal
                 (Printf.sprintf
                    "Unimodular.apply: %d lower bounds for loop %d"
                    (List.length lowers) k))
      in
      let hi, hi_min =
        match uppers with
        | [ hi ] -> (hi, None)
        | [ hi1; hi2 ] -> (hi1, Some hi2)
        | _ ->
            raise
              (Illegal
                 (Printf.sprintf
                    "Unimodular.apply: %d upper bounds for loop %d"
                    (List.length uppers) k))
      in
      bounds.(k) <- (lo, lo_max, hi, hi_min);
      peel (k - 1) (eliminate k constraints)
    end
  in
  peel (n - 1) constraints;
  let new_loops =
    List.init n (fun k ->
        let lo, lo_max, hi, hi_min = bounds.(k) in
        Loop.make ?lo_max ?hi_min new_names.(k) ~lo ~hi)
  in
  { Nest.loops = new_loops; body }

let pp ppf m =
  Array.iter
    (fun row ->
      Format.fprintf ppf "[%s]@."
        (String.concat " " (Array.to_list (Array.map string_of_int row))))
    m
