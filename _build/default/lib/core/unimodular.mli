(** Unimodular loop transformations (Wolf & Lam), which Section 2.1 argues
    never need multi-level awareness: permutation, reversal and skewing as
    integer matrices with |det| = 1 acting on the iteration space.

    A transformation [T] maps iteration vector [I] to [I' = T·I].  The
    transformed nest runs over [I'] and the body sees [I = T⁻¹·I'].
    Bounds are handled for the rectangular and skewed-rectangular cases
    the paper's kernels need: permutation and reversal keep rectangular
    bounds; skewing an inner loop by outer loops produces shifted bounds
    [lo + k·outer, hi + k·outer]. *)

open Mlc_ir

exception Illegal of string

type t = int array array  (** row-major square matrix *)

val identity : int -> t

(** [permutation n order] — [order.(new_row) = old_index]. *)
val permutation : int -> int array -> t

(** [reversal n i] negates loop [i]. *)
val reversal : int -> int -> t

(** [skew n ~target ~source ~factor] adds [factor · source] to [target]
    (source must be outer, i.e. [source < target]). *)
val skew : int -> target:int -> source:int -> factor:int -> t

val multiply : t -> t -> t

val determinant : t -> int

(** Inverse of a unimodular matrix (integer entries).
    @raise Illegal when |det| ≠ 1. *)
val inverse : t -> t

(** [is_legal nest t] — every dependence distance vector [d] of the nest
    must satisfy [T·d] lexicographically positive (or zero).  Vectors
    with unconstrained components are accepted only if untouched by [t]
    beyond their own row, conservatively. *)
val is_legal : Nest.t -> t -> bool

(** [apply nest t] — transform a nest with constant rectangular bounds.
    Skewed rows produce bounds shifted by the outer variables.
    @raise Illegal on non-unimodular matrices, illegal dependences, or
    unsupported bound shapes. *)
val apply : Nest.t -> t -> Nest.t

val pp : Format.formatter -> t -> unit
