lib/frontend/lexer.mli:
