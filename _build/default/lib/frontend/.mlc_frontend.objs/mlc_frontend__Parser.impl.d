lib/frontend/parser.ml: Array_decl Expr Format Lexer List Loop Mlc_ir Nest Printf Program Ref_ Stmt String Validate
