lib/frontend/parser.mli: Mlc_ir
