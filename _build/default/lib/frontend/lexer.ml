type token =
  | IDENT of string
  | INT of int
  | KW_PROGRAM
  | KW_ARRAY
  | KW_INT
  | KW_REAL
  | KW_STEPS
  | KW_FOR
  | KW_TO
  | KW_DOWNTO
  | KW_STEP
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type located = {
  token : token;
  line : int;
  col : int;
}

exception Error of string * int * int

let keyword_of = function
  | "program" -> Some KW_PROGRAM
  | "array" -> Some KW_ARRAY
  | "int" -> Some KW_INT
  | "real" -> Some KW_REAL
  | "steps" -> Some KW_STEPS
  | "for" -> Some KW_FOR
  | "to" -> Some KW_TO
  | "downto" -> Some KW_DOWNTO
  | "step" -> Some KW_STEP
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let emit token start_col = tokens := { token; line = !line; col = start_col } :: !tokens in
  let advance () =
    if !pos < n && src.[!pos] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr pos
  in
  let skip_line () =
    while !pos < n && src.[!pos] <> '\n' do
      advance ()
    done
  in
  while !pos < n do
    let c = src.[!pos] in
    let start_col = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then skip_line ()
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then skip_line ()
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      emit (INT (int_of_string (String.sub src start (!pos - start)))) start_col
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      emit
        (match keyword_of (String.lowercase_ascii word) with
        | Some kw -> kw
        | None -> IDENT word)
        start_col
    end
    else begin
      let token =
        match c with
        | '(' -> LPAREN
        | ')' -> RPAREN
        | '{' -> LBRACE
        | '}' -> RBRACE
        | ',' -> COMMA
        | '=' -> ASSIGN
        | '+' -> PLUS
        | '-' -> MINUS
        | '*' -> STAR
        | '/' -> SLASH
        | other ->
            raise (Error (Printf.sprintf "unexpected character '%c'" other, !line, !col))
      in
      advance ();
      emit token start_col
    end
  done;
  List.rev ({ token = EOF; line = !line; col = !col } :: !tokens)

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | INT i -> Printf.sprintf "integer %d" i
  | KW_PROGRAM -> "'program'"
  | KW_ARRAY -> "'array'"
  | KW_INT -> "'int'"
  | KW_REAL -> "'real'"
  | KW_STEPS -> "'steps'"
  | KW_FOR -> "'for'"
  | KW_TO -> "'to'"
  | KW_DOWNTO -> "'downto'"
  | KW_STEP -> "'step'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"
