(** Tokenizer for the kernel language (see {!Parser} for the grammar). *)

type token =
  | IDENT of string
  | INT of int
  | KW_PROGRAM
  | KW_ARRAY
  | KW_INT
  | KW_REAL
  | KW_STEPS
  | KW_FOR
  | KW_TO
  | KW_DOWNTO
  | KW_STEP
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | ASSIGN  (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type located = {
  token : token;
  line : int;
  col : int;
}

exception Error of string * int * int  (** message, line, col *)

(** Tokenize a whole source string.  Comments run from [#] or [//] to end
    of line.
    @raise Error on an unexpected character. *)
val tokenize : string -> located list

val token_to_string : token -> string
