open Mlc_ir

exception Error of string * int * int

type state = {
  mutable tokens : Lexer.located list;
}

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> assert false (* EOF is always last *)

let advance st =
  match st.tokens with
  | _ :: rest when rest <> [] -> st.tokens <- rest
  | _ -> ()

let fail_at (t : Lexer.located) msg = raise (Error (msg, t.Lexer.line, t.Lexer.col))

let expect st token =
  let t = peek st in
  if t.Lexer.token = token then advance st
  else
    fail_at t
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string token)
         (Lexer.token_to_string t.Lexer.token))

let expect_ident st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.IDENT s ->
      advance st;
      s
  | other -> fail_at t ("expected an identifier but found " ^ Lexer.token_to_string other)

let expect_int st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.INT i ->
      advance st;
      i
  | other -> fail_at t ("expected an integer but found " ^ Lexer.token_to_string other)

(* --- affine expressions -------------------------------------------------- *)

(* aexpr := ['-'] aterm (('+'|'-') aterm)*
   aterm := INT ['*' IDENT] | IDENT ['*' INT] *)
let parse_aterm st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.INT c -> (
      advance st;
      match (peek st).Lexer.token with
      | Lexer.STAR ->
          advance st;
          let v = expect_ident st in
          Expr.term c v
      | _ -> Expr.const c)
  | Lexer.IDENT v -> (
      advance st;
      match (peek st).Lexer.token with
      | Lexer.STAR -> (
          advance st;
          let t2 = peek st in
          match t2.Lexer.token with
          | Lexer.INT c ->
              advance st;
              Expr.term c v
          | other ->
              fail_at t2
                ("expected an integer coefficient but found "
                ^ Lexer.token_to_string other))
      | _ -> Expr.var v)
  | other ->
      fail_at t ("expected an affine term but found " ^ Lexer.token_to_string other)

let parse_aexpr st =
  let first =
    match (peek st).Lexer.token with
    | Lexer.MINUS ->
        advance st;
        Expr.scale (-1) (parse_aterm st)
    | _ -> parse_aterm st
  in
  let rec go acc =
    match (peek st).Lexer.token with
    | Lexer.PLUS ->
        advance st;
        go (Expr.add acc (parse_aterm st))
    | Lexer.MINUS ->
        advance st;
        go (Expr.sub acc (parse_aterm st))
    | _ -> acc
  in
  go first

let parse_subscripts st =
  expect st Lexer.LPAREN;
  let rec go acc =
    let e = parse_aexpr st in
    match (peek st).Lexer.token with
    | Lexer.COMMA ->
        advance st;
        go (e :: acc)
    | _ ->
        expect st Lexer.RPAREN;
        List.rev (e :: acc)
  in
  go []

(* --- full expressions (RHS) ---------------------------------------------- *)

(* Walks the expression, collecting array reads and counting operators as
   flops.  Bare identifiers are loop variables or register scalars: no
   memory reference either way. *)
let rec parse_factor st ~arrays reads flops =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.INT _ ->
      advance st
  | Lexer.MINUS ->
      advance st;
      incr flops;
      parse_factor st ~arrays reads flops
  | Lexer.LPAREN ->
      advance st;
      parse_expr st ~arrays reads flops;
      expect st Lexer.RPAREN
  | Lexer.IDENT name -> (
      advance st;
      match (peek st).Lexer.token with
      | Lexer.LPAREN ->
          if not (List.mem name arrays) then
            fail_at t (Printf.sprintf "array %s is not declared" name);
          let subs = parse_subscripts st in
          reads := Ref_.read_a name subs :: !reads
      | _ -> (* scalar or loop variable: register *) ())
  | other ->
      fail_at t ("expected an expression but found " ^ Lexer.token_to_string other)

and parse_term st ~arrays reads flops =
  parse_factor st ~arrays reads flops;
  let rec go () =
    match (peek st).Lexer.token with
    | Lexer.STAR | Lexer.SLASH ->
        advance st;
        incr flops;
        parse_factor st ~arrays reads flops;
        go ()
    | _ -> ()
  in
  go ()

and parse_expr st ~arrays reads flops =
  parse_term st ~arrays reads flops;
  let rec go () =
    match (peek st).Lexer.token with
    | Lexer.PLUS | Lexer.MINUS ->
        advance st;
        incr flops;
        parse_term st ~arrays reads flops;
        go ()
    | _ -> ()
  in
  go ()

let parse_stmt st ~arrays =
  let t = peek st in
  let name = expect_ident st in
  if not (List.mem name arrays) then
    fail_at t (Printf.sprintf "array %s is not declared" name);
  let subs = parse_subscripts st in
  expect st Lexer.ASSIGN;
  let reads = ref [] in
  let flops = ref 0 in
  parse_expr st ~arrays reads flops;
  Stmt.make ~flops:!flops (List.rev !reads @ [ Ref_.write_a name subs ])

(* --- loops ----------------------------------------------------------------- *)

let rec parse_for st ~arrays =
  expect st Lexer.KW_FOR;
  let var = expect_ident st in
  expect st Lexer.ASSIGN;
  let start = parse_aexpr st in
  let direction =
    let t = peek st in
    match t.Lexer.token with
    | Lexer.KW_TO ->
        advance st;
        `Up
    | Lexer.KW_DOWNTO ->
        advance st;
        `Down
    | other -> fail_at t ("expected 'to' or 'downto' but found " ^ Lexer.token_to_string other)
  in
  let stop = parse_aexpr st in
  let step =
    match (peek st).Lexer.token with
    | Lexer.KW_STEP ->
        advance st;
        expect_int st
    | _ -> 1
  in
  if step <= 0 then fail_at (peek st) "step must be positive (use downto)";
  let step = match direction with `Up -> step | `Down -> -step in
  expect st Lexer.LBRACE;
  let loop = Loop.make ~step var ~lo:start ~hi:stop in
  let result =
    match (peek st).Lexer.token with
    | Lexer.KW_FOR ->
        (* perfect nesting: exactly one inner loop *)
        let inner = parse_for st ~arrays in
        { inner with Nest.loops = loop :: inner.Nest.loops }
    | _ ->
        let rec stmts acc =
          match (peek st).Lexer.token with
          | Lexer.RBRACE -> List.rev acc
          | _ -> stmts (parse_stmt st ~arrays :: acc)
        in
        let body = stmts [] in
        if body = [] then fail_at (peek st) "empty loop body";
        Nest.make [ loop ] body
  in
  expect st Lexer.RBRACE;
  result

(* --- program ------------------------------------------------------------- *)

let parse_program st =
  expect st Lexer.KW_PROGRAM;
  let name = expect_ident st in
  let time_steps =
    match (peek st).Lexer.token with
    | Lexer.KW_STEPS ->
        advance st;
        expect_int st
    | _ -> 1
  in
  let rec decls acc =
    match (peek st).Lexer.token with
    | Lexer.KW_ARRAY ->
        advance st;
        let arr_name = expect_ident st in
        expect st Lexer.LPAREN;
        let rec dims acc =
          let d = expect_int st in
          match (peek st).Lexer.token with
          | Lexer.COMMA ->
              advance st;
              dims (d :: acc)
          | _ ->
              expect st Lexer.RPAREN;
              List.rev (d :: acc)
        in
        let dims = dims [] in
        let elem_size =
          match (peek st).Lexer.token with
          | Lexer.KW_INT ->
              advance st;
              4
          | Lexer.KW_REAL ->
              advance st;
              8
          | _ -> 8
        in
        decls (Array_decl.make ~elem_size arr_name dims :: acc)
    | _ -> List.rev acc
  in
  let arrays = decls [] in
  let array_names = List.map (fun a -> a.Array_decl.name) arrays in
  let rec nests acc =
    match (peek st).Lexer.token with
    | Lexer.KW_FOR -> nests (parse_for st ~arrays:array_names :: acc)
    | Lexer.EOF -> List.rev acc
    | other ->
        fail_at (peek st)
          ("expected 'for' or end of input but found " ^ Lexer.token_to_string other)
  in
  let nests = nests [] in
  if nests = [] then fail_at (peek st) "program has no loop nests";
  Program.make ~time_steps name arrays nests

let parse src =
  let tokens = try Lexer.tokenize src with Lexer.Error (m, l, c) -> raise (Error (m, l, c)) in
  let st = { tokens } in
  let program = parse_program st in
  (match Validate.check program with
  | [] -> ()
  | issues ->
      raise
        (Error
           ( "invalid program: "
             ^ String.concat "; "
                 (List.map (Format.asprintf "%a" Validate.pp_issue) issues),
             0,
             0 )));
  program

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src
