(** Parser for the kernel language — a small Fortran-flavoured notation
    for the programs the paper studies.  Example:

    {v
    program jacobi steps 10
    array A(512,512)
    array B(512,512)

    # five-point stencil
    for j = 1 to 510 {
      for i = 1 to 510 {
        A(i,j) = 0 - B(i-1,j) + B(i+1,j) + B(i,j-1) + B(i,j+1)
      }
    }
    for j = 1 to 510 {
      for i = 1 to 510 {
        B(i,j) = A(i,j)
      }
    }
    v}

    Grammar (informally):
    - [program NAME [steps N]] then array declarations then loop nests;
    - [array NAME(d1,...,dk) [int|real]] — column-major, [real] (8 bytes)
      by default;
    - [for v = lo to hi [step k] { ... }] with affine bounds; [downto]
      iterates downward; nests must be perfect (either one inner loop or
      a sequence of assignment statements);
    - statements are [NAME(subs) = expr]; every array reference on the
      right is a read, the left-hand side a write; arithmetic operators
      are counted as flops; bare identifiers that are not loop variables
      are scalars held in registers (no memory reference);
    - subscripts must be affine in the loop variables;
    - [#] and [//] start comments.

    Loop variables may shadow nothing; all referenced arrays must be
    declared.  The result is checked with {!Mlc_ir.Validate}. *)

exception Error of string * int * int  (** message, line, col *)

(** Parse a full program from source text.
    @raise Error with position information. *)
val parse : string -> Mlc_ir.Program.t

(** Parse a file. *)
val parse_file : string -> Mlc_ir.Program.t
