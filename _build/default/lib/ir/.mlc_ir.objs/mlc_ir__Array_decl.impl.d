lib/ir/array_decl.ml: Format List String
