lib/ir/build.ml: Array_decl Expr List Loop Nest Program Ref_ Stmt Subscript
