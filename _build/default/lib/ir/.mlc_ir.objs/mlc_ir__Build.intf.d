lib/ir/build.mli: Array_decl Expr Loop Nest Program Ref_ Stmt
