lib/ir/expr.ml: Format List Stdlib String
