lib/ir/interp.ml: Array Expr Hashtbl Layout List Loop Mlc_cachesim Nest Program Ref_ Stmt
