lib/ir/interp.mli: Layout Mlc_cachesim Program
