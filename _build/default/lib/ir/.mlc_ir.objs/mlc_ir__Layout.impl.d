lib/ir/layout.ml: Array_decl Expr Format List Program Ref_ Subscript
