lib/ir/layout.mli: Array_decl Expr Format Program Ref_
