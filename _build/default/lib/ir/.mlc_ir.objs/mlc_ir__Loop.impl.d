lib/ir/loop.ml: Expr Format Printf
