lib/ir/nest.ml: Format List Loop Stmt
