lib/ir/nest.mli: Format Loop Ref_ Stmt
