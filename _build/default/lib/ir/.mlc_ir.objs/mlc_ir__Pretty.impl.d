lib/ir/pretty.ml: Array_decl Buffer Expr List Loop Nest Printf Program Ref_ Stmt String Subscript
