lib/ir/pretty.mli: Nest Program
