lib/ir/program.ml: Array_decl Format Hashtbl List Nest Printf Stmt
