lib/ir/program.mli: Array_decl Format Nest
