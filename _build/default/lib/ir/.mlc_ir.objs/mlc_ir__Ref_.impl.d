lib/ir/ref_.ml: Expr Format List String Subscript
