lib/ir/ref_.mli: Expr Format Subscript
