lib/ir/stmt.ml: Format List Ref_ String
