lib/ir/stmt.mli: Format Ref_
