lib/ir/subscript.ml: Array Expr Format Printf
