lib/ir/subscript.mli: Expr Format
