lib/ir/validate.ml: Array Array_decl Expr Format Hashtbl List Loop Nest Option Printf Program Ref_ String Subscript
