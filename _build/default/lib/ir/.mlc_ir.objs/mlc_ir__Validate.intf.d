lib/ir/validate.mli: Format Program
