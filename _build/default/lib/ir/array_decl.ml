type t = {
  name : string;
  dims : int list;
  elem_size : int;
}

let make ?(elem_size = 8) name dims =
  if dims = [] then invalid_arg "Array_decl.make: no dimensions";
  List.iter (fun d -> if d <= 0 then invalid_arg "Array_decl.make: dim <= 0") dims;
  if elem_size <= 0 then invalid_arg "Array_decl.make: elem_size <= 0";
  { name; dims; elem_size }

let elements t = List.fold_left ( * ) 1 t.dims

let size_bytes t = elements t * t.elem_size

let column_bytes t =
  match t.dims with
  | d :: _ -> d * t.elem_size
  | [] -> assert false

let dim_strides t =
  let rec go stride = function
    | [] -> []
    | d :: rest -> stride :: go (stride * d) rest
  in
  go 1 t.dims

let pp ppf t =
  Format.fprintf ppf "%s(%s)[%dB]" t.name
    (String.concat "," (List.map string_of_int t.dims))
    t.elem_size
