(** A Fortran-style array variable: named, column-major, with dimensions
    in elements.  The first dimension varies fastest in memory. *)

type t = {
  name : string;
  dims : int list;      (** extents in elements, first = fastest *)
  elem_size : int;      (** bytes per element (8 = double, 4 = int) *)
}

val make : ?elem_size:int -> string -> int list -> t

(** Total elements. *)
val elements : t -> int

(** Total size in bytes. *)
val size_bytes : t -> int

(** Column size (extent of the first dimension) in bytes: the span of one
    group-reuse "arc" in the paper's layout diagrams. *)
val column_bytes : t -> int

(** [dim_strides t] gives, per dimension, the distance in {e elements}
    between consecutive indices of that dimension (column-major):
    [1; d1; d1*d2; ...]. *)
val dim_strides : t -> int list

val pp : Format.formatter -> t -> unit
