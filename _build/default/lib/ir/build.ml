let arr ?elem_size name dims = Array_decl.make ?elem_size name dims

let v = Expr.var

let c = Expr.const

let ( +! ) e k = Expr.add e (Expr.const k)

let ( -! ) e k = Expr.sub e (Expr.const k)

let ( ++ ) = Expr.add

let ( ** ) e k = Expr.scale k e

let r name exprs = Ref_.read_a name exprs

let w name exprs = Ref_.write_a name exprs

let rg name table index = Ref_.read name [ Subscript.gather ~table ~index ]

let wg name table index = Ref_.write name [ Subscript.gather ~table ~index ]

let asn ?flops lhs rhs =
  let flops = match flops with Some f -> f | None -> max 0 (List.length rhs - 1) in
  Stmt.assign ~flops lhs rhs

let loop var lo hi = Loop.range var lo hi

let loop_e var lo hi = Loop.make var ~lo ~hi

let nest loops body = Nest.make loops body

let program ?time_steps name arrays nests = Program.make ?time_steps name arrays nests
