(** Small DSL for writing kernel programs compactly.  Open locally:

    {[
      let open Mlc_ir.Build in
      let a = arr "A" [ n; n ] and b = arr "B" [ n; n ] in
      let i = v "i" and j = v "j" in
      program "example" [ a; b ]
        [
          nest [ loop "j" 1 (n - 2); loop "i" 0 (n - 1) ]
            [ asn (w "A" [ i; j ]) [ r "B" [ i; j ] ; r "B" [ i; j +! 1 ] ] ];
        ]
    ]} *)

val arr : ?elem_size:int -> string -> int list -> Array_decl.t

(** Loop variable as an index expression. *)
val v : string -> Expr.t

(** Integer literal index. *)
val c : int -> Expr.t

(** [e +! k], [e -! k]: shift an index by a constant. *)
val ( +! ) : Expr.t -> int -> Expr.t

val ( -! ) : Expr.t -> int -> Expr.t

(** [e ++ e'] adds two index expressions, [e ** k] scales. *)
val ( ++ ) : Expr.t -> Expr.t -> Expr.t

val ( ** ) : Expr.t -> int -> Expr.t

val r : string -> Expr.t list -> Ref_.t

val w : string -> Expr.t list -> Ref_.t

(** Gather-subscripted read/write in one dimension:
    [rg name table idx] reads [name(table(idx))]. *)
val rg : string -> int array -> Expr.t -> Ref_.t

val wg : string -> int array -> Expr.t -> Ref_.t

(** [asn lhs rhs ~flops] — reads then write. Default flop count is
    [max 0 (length rhs - 1)] (one op per additional operand). *)
val asn : ?flops:int -> Ref_.t -> Ref_.t list -> Stmt.t

val loop : string -> int -> int -> Loop.t

val loop_e : string -> Expr.t -> Expr.t -> Loop.t

val nest : Loop.t list -> Stmt.t list -> Nest.t

val program : ?time_steps:int -> string -> Array_decl.t list -> Nest.t list -> Program.t
