(* Normal form: coefficient list sorted by variable name, no zero
   coefficients.  This makes [equal] and [compare] structural. *)
type t = { coeffs : (string * int) list; const : int }

let normalize coeffs =
  coeffs
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let const n = { coeffs = []; const = n }

let term c v = { coeffs = normalize [ (v, c) ]; const = 0 }

let var v = term 1 v

let merge f a b =
  (* Merge two sorted coefficient lists, combining with [f]. *)
  let rec go a b =
    match (a, b) with
    | [], rest -> List.map (fun (v, c) -> (v, f 0 c)) rest
    | rest, [] -> List.map (fun (v, c) -> (v, f c 0)) rest
    | (va, ca) :: ta, (vb, cb) :: tb ->
        let cmp = String.compare va vb in
        if cmp = 0 then (va, f ca cb) :: go ta tb
        else if cmp < 0 then (va, f ca 0) :: go ta b
        else (vb, f 0 cb) :: go a tb
  in
  normalize (go a b)

let add a b = { coeffs = merge ( + ) a.coeffs b.coeffs; const = a.const + b.const }

let sub a b = { coeffs = merge ( - ) a.coeffs b.coeffs; const = a.const - b.const }

let scale k e =
  { coeffs = normalize (List.map (fun (v, c) -> (v, k * c)) e.coeffs); const = k * e.const }

let const_part e = e.const

let coeff e v = try List.assoc v e.coeffs with Not_found -> 0

let vars e = List.map fst e.coeffs

let is_const e = e.coeffs = []

let rename f e =
  { e with coeffs = normalize (List.map (fun (v, c) -> (f v, c)) e.coeffs) }

let subst v e' e =
  let c = coeff e v in
  if c = 0 then e
  else
    let without = { e with coeffs = List.remove_assoc v e.coeffs } in
    add without (scale c e')

let shift v d e = subst v (add (var v) (const d)) e

let eval env e =
  List.fold_left (fun acc (v, c) -> acc + (c * env v)) e.const e.coeffs

let equal a b = a.coeffs = b.coeffs && a.const = b.const

let compare a b = Stdlib.compare (a.coeffs, a.const) (b.coeffs, b.const)

let pp ppf e =
  let pp_term first ppf (v, c) =
    if c = 1 then Format.fprintf ppf "%s%s" (if first then "" else "+") v
    else if c = -1 then Format.fprintf ppf "-%s" v
    else if c >= 0 then Format.fprintf ppf "%s%d%s" (if first then "" else "+") c v
    else Format.fprintf ppf "%d%s" c v
  in
  match e.coeffs with
  | [] -> Format.fprintf ppf "%d" e.const
  | first :: rest ->
      pp_term true ppf first;
      List.iter (pp_term false ppf) rest;
      if e.const > 0 then Format.fprintf ppf "+%d" e.const
      else if e.const < 0 then Format.fprintf ppf "%d" e.const

let to_string e = Format.asprintf "%a" pp e
