(** Affine expressions over named loop variables:
    [c0 + c1*i + c2*j + ...].  These are the only index expressions the
    paper's analyses need (array subscripts in the benchmark programs are
    affine; irregular programs use {!Subscript.Gather}). *)

type t

val const : int -> t

val var : string -> t

(** [term c v] is [c * v]. *)
val term : int -> string -> t

val add : t -> t -> t

val sub : t -> t -> t

(** [scale k e] multiplies every coefficient and the constant by [k]. *)
val scale : int -> t -> t

(** Constant part. *)
val const_part : t -> int

(** Coefficient of a variable (0 when absent). *)
val coeff : t -> string -> int

(** Variables with non-zero coefficients, sorted. *)
val vars : t -> string list

(** [is_const e] holds when no variable appears. *)
val is_const : t -> bool

(** [rename f e] substitutes variable names. *)
val rename : (string -> string) -> t -> t

(** [subst v e' e] replaces variable [v] by expression [e'] in [e]. *)
val subst : string -> t -> t -> t

(** [shift v d e] replaces [v] by [v + d]; used by fusion alignment and
    loop normalization. *)
val shift : string -> int -> t -> t

(** [eval env e] with [env] giving each variable's value.
    @raise Not_found if a variable is unbound. *)
val eval : (string -> int) -> t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
