type entry = {
  decl : Array_decl.t;
  pad_before : int;  (* bytes *)
  intra_pad : int;   (* extra elements per column *)
}

type t = { entries : entry list }

let of_arrays arrays =
  { entries = List.map (fun decl -> { decl; pad_before = 0; intra_pad = 0 }) arrays }

let initial program = of_arrays program.Program.arrays

let update t name f =
  let found = ref false in
  let entries =
    List.map
      (fun e ->
        if e.decl.Array_decl.name = name then begin
          found := true;
          f e
        end
        else e)
      t.entries
  in
  if not !found then invalid_arg ("Layout: unknown array " ^ name);
  { entries }

let find t name =
  try List.find (fun e -> e.decl.Array_decl.name = name) t.entries
  with Not_found -> invalid_arg ("Layout: unknown array " ^ name)

let set_pad_before t name bytes =
  if bytes < 0 then invalid_arg "Layout.set_pad_before: negative pad";
  update t name (fun e -> { e with pad_before = bytes })

let add_pad_before t name bytes =
  update t name (fun e -> { e with pad_before = e.pad_before + bytes })

let pad_before t name = (find t name).pad_before

let set_intra_pad t name elems =
  if elems < 0 then invalid_arg "Layout.set_intra_pad: negative pad";
  update t name (fun e -> { e with intra_pad = elems })

let intra_pad t name = (find t name).intra_pad

let padded_decl_of_entry e =
  match e.decl.Array_decl.dims with
  | d :: rest -> { e.decl with Array_decl.dims = (d + e.intra_pad) :: rest }
  | [] -> assert false

let align_up addr alignment = (addr + alignment - 1) / alignment * alignment

(* Bases accumulate: each array starts after the previous one plus its
   pad, rounded up to its element size so accesses stay aligned. *)
let bases t =
  let _, acc =
    List.fold_left
      (fun (cursor, acc) e ->
        let padded = padded_decl_of_entry e in
        let base = align_up (cursor + e.pad_before) e.decl.Array_decl.elem_size in
        (base + Array_decl.size_bytes padded, (e.decl.Array_decl.name, base) :: acc))
      (0, []) t.entries
  in
  List.rev acc

let base t name =
  try List.assoc name (bases t)
  with Not_found -> invalid_arg ("Layout.base: unknown array " ^ name)

let padded_decl t name = padded_decl_of_entry (find t name)

let array_names t = List.map (fun e -> e.decl.Array_decl.name) t.entries

let total_bytes t =
  List.fold_left
    (fun cursor e ->
      let padded = padded_decl_of_entry e in
      let b = align_up (cursor + e.pad_before) e.decl.Array_decl.elem_size in
      b + Array_decl.size_bytes padded)
    0 t.entries

let address t name indices =
  let e = find t name in
  let padded = padded_decl_of_entry e in
  let strides = Array_decl.dim_strides padded in
  if List.length indices <> List.length strides then
    invalid_arg ("Layout.address: wrong arity for " ^ name);
  let offset = List.fold_left2 (fun acc i s -> acc + (i * s)) 0 indices strides in
  base t name + (offset * e.decl.Array_decl.elem_size)

let address_expr t r =
  let e = find t r.Ref_.array in
  let padded = padded_decl_of_entry e in
  let strides = Array_decl.dim_strides padded in
  let elem = e.decl.Array_decl.elem_size in
  if List.length r.Ref_.subs <> List.length strides then
    invalid_arg ("Layout.address_expr: wrong arity for " ^ r.Ref_.array);
  List.fold_left2
    (fun acc sub stride ->
      Expr.add acc (Expr.scale (stride * elem) (Subscript.expr sub)))
    (Expr.const (base t r.Ref_.array))
    r.Ref_.subs strides

let address_of_ref t env r =
  let e = find t r.Ref_.array in
  let padded = padded_decl_of_entry e in
  let strides = Array_decl.dim_strides padded in
  let offset =
    List.fold_left2
      (fun acc sub stride -> acc + (Subscript.eval env sub * stride))
      0 r.Ref_.subs strides
  in
  base t r.Ref_.array + (offset * e.decl.Array_decl.elem_size)

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%-10s base=%-8d pad_before=%-6d intra_pad=%d@."
        e.decl.Array_decl.name
        (base t e.decl.Array_decl.name)
        e.pad_before e.intra_pad)
    t.entries
