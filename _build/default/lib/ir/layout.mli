(** Memory layout: assigns every array a base address.

    Mirrors the paper's SUIF setup, where all optimizable variables become
    fields of one big global structure so that compiler passes control
    base addresses by reordering fields and inserting pad variables.
    Here a layout is the declaration-ordered list of arrays, each with an
    inter-variable pad placed before it ([pad_before], the knob PAD /
    GROUPPAD / L2MAXPAD turn) and an intra-variable pad that lengthens
    each column ([intra_pad], used to break self-conflicts in ADI32 and
    ERLE64). *)

type t

(** Packed layout: arrays in declaration order, no pads. *)
val initial : Program.t -> t

val of_arrays : Array_decl.t list -> t

(** [set_pad_before t name bytes] replaces the pad in front of [name]
    (shifting it and every later array). *)
val set_pad_before : t -> string -> int -> t

(** [add_pad_before t name bytes] increments the pad. *)
val add_pad_before : t -> string -> int -> t

val pad_before : t -> string -> int

(** [set_intra_pad t name elems] pads each column of [name] by [elems]
    extra elements (changes addressing of higher dimensions). *)
val set_intra_pad : t -> string -> int -> t

val intra_pad : t -> string -> int

(** Base address in bytes (aligned to the element size). *)
val base : t -> string -> int

(** Declaration with the intra-pad folded into the first dimension — what
    addressing actually uses. *)
val padded_decl : t -> string -> Array_decl.t

val array_names : t -> string list

(** End of the last array (bytes). *)
val total_bytes : t -> int

(** Byte address of an element given 0-based indices. *)
val address : t -> string -> int list -> int

(** Byte address of an affine reference, as an affine expression of the
    loop variables: [base + elem_size * Σ subᵢ·strideᵢ].
    @raise Invalid_argument on gather subscripts. *)
val address_expr : t -> Ref_.t -> Expr.t

(** For a reference with gather subscripts: byte address under [env]. *)
val address_of_ref : t -> (string -> int) -> Ref_.t -> int

val pp : Format.formatter -> t -> unit
