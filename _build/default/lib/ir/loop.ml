type t = {
  var : string;
  lo : Expr.t;
  lo_max : Expr.t option;
  hi : Expr.t;
  hi_min : Expr.t option;
  step : int;
}

let make ?lo_max ?hi_min ?(step = 1) var ~lo ~hi =
  if step = 0 then invalid_arg "Loop.make: zero step";
  if step < 0 && (lo_max <> None || hi_min <> None) then
    invalid_arg "Loop.make: clamps are not supported on downward loops";
  { var; lo; lo_max; hi; hi_min; step }

let range var lo hi = make var ~lo:(Expr.const lo) ~hi:(Expr.const hi)

let effective_lo env t =
  let lo = Expr.eval env t.lo in
  match t.lo_max with
  | None -> lo
  | Some clamp -> max lo (Expr.eval env clamp)

let effective_hi env t =
  let hi = Expr.eval env t.hi in
  match t.hi_min with
  | None -> hi
  | Some clamp -> min hi (Expr.eval env clamp)

let trip_count env t =
  let lo = effective_lo env t in
  let hi = effective_hi env t in
  if t.step > 0 then
    if hi < lo then 0 else ((hi - lo) / t.step) + 1
  else if lo < hi then 0
  else ((lo - hi) / -t.step) + 1

let iter env t f =
  let lo = effective_lo env t in
  let hi = effective_hi env t in
  if t.step > 0 then begin
    let iv = ref lo in
    while !iv <= hi do
      f !iv;
      iv := !iv + t.step
    done
  end
  else begin
    let iv = ref lo in
    while !iv >= hi do
      f !iv;
      iv := !iv + t.step
    done
  end

let pp ppf t =
  Format.fprintf ppf "for %s = %a%s to %a%s%s" t.var Expr.pp t.lo
    (match t.lo_max with
    | None -> ""
    | Some e -> Format.asprintf " max %a" Expr.pp e)
    Expr.pp t.hi
    (match t.hi_min with
    | None -> ""
    | Some e -> Format.asprintf " min %a" Expr.pp e)
    (if t.step = 1 then "" else Printf.sprintf " step %d" t.step)
