(** One loop of a nest:
    [for var = max(lo, lo_max) to min(hi, hi_min) step step].

    Bounds are affine in the variables of enclosing loops (triangular
    loops in LINPACKD, tile loops after strip-mining).  [hi_min] gives the
    [min(KK+W-1, N)] clamp tiling introduces; [lo_max] the [max(1, c-i)]
    clamp wavefront (skewed) loops need.  A negative [step] iterates
    downward from [lo] to [hi] (loop reversal; clamps are not supported
    on downward loops). *)

type t = {
  var : string;
  lo : Expr.t;
  lo_max : Expr.t option;
  hi : Expr.t;
  hi_min : Expr.t option;
  step : int;
}

(** @raise Invalid_argument when [step = 0], or when a clamp is combined
    with a negative step. *)
val make :
  ?lo_max:Expr.t -> ?hi_min:Expr.t -> ?step:int -> string -> lo:Expr.t -> hi:Expr.t -> t

(** Simple [for var = lo to hi] with constant bounds. *)
val range : string -> int -> int -> t

(** Effective lower bound under [env] (applies the [lo_max] clamp). *)
val effective_lo : (string -> int) -> t -> int

(** Effective upper bound under [env] (applies the [hi_min] clamp). *)
val effective_hi : (string -> int) -> t -> int

(** Number of iterations executed under [env] (0 when empty). *)
val trip_count : (string -> int) -> t -> int

(** Iterate: [iter env t f] calls [f iv] for each iteration value. *)
val iter : (string -> int) -> t -> (int -> unit) -> unit

val pp : Format.formatter -> t -> unit
