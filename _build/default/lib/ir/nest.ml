type t = {
  loops : Loop.t list;
  body : Stmt.t list;
}

let make loops body =
  if loops = [] then invalid_arg "Nest.make: no loops";
  { loops; body }

let depth t = List.length t.loops

let innermost t =
  match List.rev t.loops with
  | l :: _ -> l
  | [] -> invalid_arg "Nest.innermost: empty nest"

let refs t = List.concat_map (fun s -> s.Stmt.refs) t.body

let vars t = List.map (fun l -> l.Loop.var) t.loops

let map_refs f t = { t with body = List.map (Stmt.map_refs f) t.body }

let iterations t =
  (* Walk the loop structure, counting trips; bounds may reference outer
     loop variables, so we carry an environment. *)
  let count = ref 0 in
  let rec go env = function
    | [] -> incr count
    | loop :: rest ->
        Loop.iter env loop (fun iv ->
            let env' v = if v = loop.Loop.var then iv else env v in
            go env' rest)
  in
  go (fun v -> raise (Invalid_argument ("Nest.iterations: unbound " ^ v))) t.loops;
  !count

let ref_count t =
  iterations t * List.fold_left (fun acc s -> acc + List.length s.Stmt.refs) 0 t.body

let pp ppf t =
  List.iter (fun l -> Format.fprintf ppf "%a@ " Loop.pp l) t.loops;
  List.iter (fun s -> Format.fprintf ppf "  %a@ " Stmt.pp s) t.body
