(** A perfect loop nest: loops listed outermost first around a body of
    statements.  All the paper's benchmark nests are perfect (or are
    modelled as a sequence of perfect nests). *)

type t = {
  loops : Loop.t list;  (** outermost first *)
  body : Stmt.t list;
}

val make : Loop.t list -> Stmt.t list -> t

val depth : t -> int

(** Innermost loop. @raise Invalid_argument on an empty nest. *)
val innermost : t -> Loop.t

(** All references in body order. *)
val refs : t -> Ref_.t list

(** Loop variables, outermost first. *)
val vars : t -> string list

(** [map_refs f t] rewrites every reference. *)
val map_refs : (Ref_.t -> Ref_.t) -> t -> t

(** Total iterations of the whole nest for constant bounds; triangular
    nests are counted by walking the iteration space. *)
val iterations : t -> int

(** References issued per full execution. *)
val ref_count : t -> int

val pp : Format.formatter -> t -> unit
