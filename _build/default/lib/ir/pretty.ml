let expr_to_string e =
  (* the parser's affine syntax: c*v terms joined with +/-, constant last *)
  let terms =
    List.map
      (fun v ->
        let c = Expr.coeff e v in
        if c = 1 then (false, v)
        else if c = -1 then (true, v)
        else if c >= 0 then (false, Printf.sprintf "%d*%s" c v)
        else (true, Printf.sprintf "%d*%s" (-c) v))
      (Expr.vars e)
  in
  let const = Expr.const_part e in
  let parts =
    terms
    @ (if const > 0 then [ (false, string_of_int const) ]
       else if const < 0 then [ (true, string_of_int (-const)) ]
       else [])
  in
  match parts with
  | [] -> "0"
  | (neg, first) :: rest ->
      let buf = Buffer.create 32 in
      if neg then Buffer.add_string buf "0-";
      Buffer.add_string buf first;
      List.iter
        (fun (neg, s) ->
          Buffer.add_string buf (if neg then "-" else "+");
          Buffer.add_string buf s)
        rest;
      Buffer.contents buf

let ref_to_string r =
  Printf.sprintf "%s(%s)" r.Ref_.array
    (String.concat ","
       (List.map
          (fun s ->
            match s with
            | Subscript.Affine e -> expr_to_string e
            | Subscript.Gather _ ->
                invalid_arg "Pretty: gather subscripts have no source syntax")
          r.Ref_.subs))

let stmt_to_string s =
  let reads = Stmt.reads s in
  let writes = Stmt.writes s in
  (* The parser emits reads (in RHS order) then the write, so to keep the
     address stream identical the LHS must be the statement's final
     reference: the write (asn-built statements), or — for the paper's
     elided-LHS statements — the last read, which then reappears as a
     write at the same address. *)
  let lhs, rhs_refs =
    match (writes, reads) with
    | [ w ], _ -> (w, reads)
    | [], [ only ] -> (only, [])
    | [], _ :: _ ->
        let rev = List.rev reads in
        (List.hd rev, List.rev (List.tl rev))
    | _ -> invalid_arg "Pretty: statements must have at most one write"
  in
  let rhs =
    match rhs_refs with
    | [] -> "0"
    | rs -> String.concat " + " (List.map ref_to_string rs)
  in
  Printf.sprintf "%s = %s" (ref_to_string lhs) rhs

let nest (n : Nest.t) =
  let buf = Buffer.create 256 in
  let depth = List.length n.Nest.loops in
  List.iteri
    (fun i (l : Loop.t) ->
      let pad = String.make (i * 2) ' ' in
      if l.Loop.lo_max <> None || l.Loop.hi_min <> None then
        invalid_arg "Pretty: clamped loops have no source syntax";
      let header =
        if l.Loop.step = 1 then
          Printf.sprintf "for %s = %s to %s {" l.Loop.var
            (expr_to_string l.Loop.lo) (expr_to_string l.Loop.hi)
        else if l.Loop.step > 1 then
          Printf.sprintf "for %s = %s to %s step %d {" l.Loop.var
            (expr_to_string l.Loop.lo) (expr_to_string l.Loop.hi) l.Loop.step
        else
          Printf.sprintf "for %s = %s downto %s%s {" l.Loop.var
            (expr_to_string l.Loop.lo) (expr_to_string l.Loop.hi)
            (if l.Loop.step = -1 then ""
             else Printf.sprintf " step %d" (-l.Loop.step))
      in
      Buffer.add_string buf (pad ^ header ^ "\n"))
    n.Nest.loops;
  let body_pad = String.make (depth * 2) ' ' in
  List.iter
    (fun s -> Buffer.add_string buf (body_pad ^ stmt_to_string s ^ "\n"))
    n.Nest.body;
  List.iteri
    (fun i _ ->
      Buffer.add_string buf (String.make ((depth - 1 - i) * 2) ' ' ^ "}\n"))
    n.Nest.loops;
  Buffer.contents buf

let sanitize name =
  let cleaned =
    String.map
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        then c
        else '_')
      name
  in
  if cleaned = "" || (cleaned.[0] >= '0' && cleaned.[0] <= '9') then "p" ^ cleaned
  else cleaned

let program (p : Program.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program %s" (sanitize p.Program.name));
  if p.Program.time_steps > 1 then
    Buffer.add_string buf (Printf.sprintf " steps %d" p.Program.time_steps);
  Buffer.add_string buf "\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "array %s(%s)%s\n" a.Array_decl.name
           (String.concat "," (List.map string_of_int a.Array_decl.dims))
           (match a.Array_decl.elem_size with
           | 4 -> " int"
           | 8 -> ""
           | other -> invalid_arg (Printf.sprintf "Pretty: %d-byte elements" other))))
    p.Program.arrays;
  Buffer.add_string buf "\n";
  List.iter (fun n -> Buffer.add_string buf (nest n ^ "\n")) p.Program.nests;
  Buffer.contents buf
