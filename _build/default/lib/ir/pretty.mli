(** Pretty-printer: emit a program in the kernel-language syntax that
    {!Mlc_frontend.Parser} reads back.

    The IR keeps references and flop counts but not the arithmetic
    between them, so statement right-hand sides are printed as a sum of
    the read references (every read appears exactly once) — parsing the
    output yields a program with the {e same reference stream} as the
    original, which is the round-trip property the tests check.
    Statements with no write (the paper's elided left-hand sides of
    Figure 2) are printed as assignments to their first read. *)

val program : Program.t -> string

val nest : Nest.t -> string
