type t = {
  name : string;
  arrays : Array_decl.t list;
  nests : Nest.t list;
  time_steps : int;
}

let make ?(time_steps = 1) name arrays nests =
  if time_steps < 1 then invalid_arg "Program.make: time_steps < 1";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.Array_decl.name then
        invalid_arg ("Program.make: duplicate array " ^ a.Array_decl.name);
      Hashtbl.add seen a.Array_decl.name ())
    arrays;
  { name; arrays; nests; time_steps }

let find_array t name =
  try List.find (fun a -> a.Array_decl.name = name) t.arrays
  with Not_found ->
    invalid_arg (Printf.sprintf "Program.find_array: %s not declared in %s" name t.name)

let array_names t = List.map (fun a -> a.Array_decl.name) t.arrays

let ref_count t =
  t.time_steps * List.fold_left (fun acc n -> acc + Nest.ref_count n) 0 t.nests

let flop_count t =
  let per_nest n =
    Nest.iterations n
    * List.fold_left (fun acc s -> acc + s.Stmt.flops) 0 n.Nest.body
  in
  t.time_steps * List.fold_left (fun acc n -> acc + per_nest n) 0 t.nests

let map_nests f t = { t with nests = List.map f t.nests }

let set_nest t i nest =
  { t with nests = List.mapi (fun j n -> if i = j then nest else n) t.nests }

let pp ppf t =
  Format.fprintf ppf "program %s@." t.name;
  List.iter (fun a -> Format.fprintf ppf "  %a@." Array_decl.pp a) t.arrays;
  List.iteri
    (fun i n -> Format.fprintf ppf "nest %d:@.%a@." i Nest.pp n)
    t.nests
