(** A whole program: declared arrays plus a sequence of loop nests
    (executed in order, possibly wrapped in a repeated outer time loop
    for iterative kernels). *)

type t = {
  name : string;
  arrays : Array_decl.t list;
  nests : Nest.t list;
  time_steps : int;  (** whole nest sequence repeated this many times *)
}

val make : ?time_steps:int -> string -> Array_decl.t list -> Nest.t list -> t

val find_array : t -> string -> Array_decl.t

val array_names : t -> string list

(** References issued by one full execution. *)
val ref_count : t -> int

(** Floating-point operations of one full execution. *)
val flop_count : t -> int

val map_nests : (Nest.t -> Nest.t) -> t -> t

(** Replace the nest at an index. *)
val set_nest : t -> int -> Nest.t -> t

val pp : Format.formatter -> t -> unit
