type kind = Read | Write

type t = {
  array : string;
  subs : Subscript.t list;
  kind : kind;
}

let read array subs = { array; subs; kind = Read }

let write array subs = { array; subs; kind = Write }

let read_a array exprs = read array (List.map Subscript.affine exprs)

let write_a array exprs = write array (List.map Subscript.affine exprs)

let is_write t = t.kind = Write

let is_affine t = List.for_all Subscript.is_affine t.subs

let map_exprs f t = { t with subs = List.map (Subscript.map_expr f) t.subs }

let constant_difference a b =
  if a.array <> b.array || List.length a.subs <> List.length b.subs then None
  else
    let diff_dim sa sb =
      match (sa, sb) with
      | Subscript.Affine ea, Subscript.Affine eb ->
          let d = Expr.sub ea eb in
          if Expr.is_const d then Some (Expr.const_part d) else None
      | _, _ -> None
    in
    let rec go = function
      | [], [] -> Some []
      | sa :: ta, sb :: tb -> (
          match diff_dim sa sb with
          | None -> None
          | Some d -> ( match go (ta, tb) with None -> None | Some ds -> Some (d :: ds)))
      | _ -> None
    in
    go (a.subs, b.subs)

let equal a b =
  a.array = b.array && a.kind = b.kind
  && (match constant_difference a b with
     | Some ds -> List.for_all (fun d -> d = 0) ds
     | None -> false)

let pp ppf t =
  Format.fprintf ppf "%s%s(%s)"
    (match t.kind with Read -> "" | Write -> "=")
    t.array
    (String.concat "," (List.map (Format.asprintf "%a" Subscript.pp) t.subs))

let to_string t = Format.asprintf "%a" pp t
