(** An array reference: array name + one subscript per dimension, plus the
    access kind (read or write).  References are 0-based internally; the
    kernels translate Fortran's 1-based loops when they are built. *)

type kind = Read | Write

type t = {
  array : string;
  subs : Subscript.t list;
  kind : kind;
}

val read : string -> Subscript.t list -> t

val write : string -> Subscript.t list -> t

(** Read with all-affine subscripts. *)
val read_a : string -> Expr.t list -> t

(** Write with all-affine subscripts. *)
val write_a : string -> Expr.t list -> t

val is_write : t -> bool

(** All subscripts affine? (Needed for the analyses; gather references are
    simulated but not analyzed for reuse.) *)
val is_affine : t -> bool

(** [map_exprs f r] rewrites each subscript's expression (used by loop
    transformations). *)
val map_exprs : (Expr.t -> Expr.t) -> t -> t

(** References to the same array whose subscripts differ only in constant
    terms — the paper's "uniformly generated" references, the unit of
    group reuse. @return [None] when not uniformly generated. *)
val constant_difference : t -> t -> int list option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
