type t = {
  refs : Ref_.t list;
  flops : int;
}

let make ?(flops = 0) refs = { refs; flops }

let assign ?(flops = 0) w rs =
  if not (Ref_.is_write w) then invalid_arg "Stmt.assign: target is not a write";
  { refs = rs @ [ w ]; flops }

let reads t = List.filter (fun r -> not (Ref_.is_write r)) t.refs

let writes t = List.filter Ref_.is_write t.refs

let map_refs f t = { t with refs = List.map f t.refs }

let pp ppf t =
  Format.fprintf ppf "{%s; %d flops}"
    (String.concat " " (List.map Ref_.to_string t.refs))
    t.flops
