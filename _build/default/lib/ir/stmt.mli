(** A statement is an ordered list of references (the simulator issues
    them left to right — reads before the write, like a store at the end
    of an expression evaluation) plus a floating-point operation count for
    MFLOPS accounting. *)

type t = {
  refs : Ref_.t list;
  flops : int;
}

val make : ?flops:int -> Ref_.t list -> t

(** [assign w rs] orders reads first, then the write — the common shape. *)
val assign : ?flops:int -> Ref_.t -> Ref_.t list -> t

val reads : t -> Ref_.t list

val writes : t -> Ref_.t list

val map_refs : (Ref_.t -> Ref_.t) -> t -> t

val pp : Format.formatter -> t -> unit
