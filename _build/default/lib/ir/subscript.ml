type t =
  | Affine of Expr.t
  | Gather of { table : int array; index : Expr.t }

let affine e = Affine e

let gather ~table ~index = Gather { table; index }

let is_affine = function Affine _ -> true | Gather _ -> false

let eval env = function
  | Affine e -> Expr.eval env e
  | Gather { table; index } ->
      let i = Expr.eval env index in
      if i < 0 || i >= Array.length table then
        invalid_arg
          (Printf.sprintf "Subscript.eval: gather index %d outside table of %d" i
             (Array.length table))
      else table.(i)

let expr = function
  | Affine e -> e
  | Gather _ -> invalid_arg "Subscript.expr: gather subscript"

let map_expr f = function
  | Affine e -> Affine (f e)
  | Gather { table; index } -> Gather { table; index = f index }

let pp ppf = function
  | Affine e -> Expr.pp ppf e
  | Gather { index; _ } -> Format.fprintf ppf "idx[%a]" Expr.pp index
