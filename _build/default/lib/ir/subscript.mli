(** One subscript position of an array reference.

    [Affine] covers the dense scientific codes in the paper.  [Gather]
    models irregular accesses ([IRR500K]'s mesh relaxation, [CGM]'s sparse
    matvec, [BUK]'s bucket sort): the element index is looked up in a
    table indexed by an affine expression.  The load of the index array
    itself is modelled as a separate, explicit affine reference in the
    statement, so the simulator still sees its cache traffic. *)

type t =
  | Affine of Expr.t
  | Gather of { table : int array; index : Expr.t }

val affine : Expr.t -> t

val gather : table:int array -> index:Expr.t -> t

val is_affine : t -> bool

(** [eval env s] is the element index selected in this dimension.
    @raise Invalid_argument if a gather index falls outside the table. *)
val eval : (string -> int) -> t -> int

(** Affine payload. @raise Invalid_argument on [Gather]. *)
val expr : t -> Expr.t

(** Apply a function to the affine index expression (gather: to the table
    index expression). *)
val map_expr : (Expr.t -> Expr.t) -> t -> t

val pp : Format.formatter -> t -> unit
