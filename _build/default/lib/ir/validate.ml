type issue = {
  nest : int;
  message : string;
}

let pp_issue ppf i =
  if i.nest >= 0 then Format.fprintf ppf "nest %d: %s" i.nest i.message
  else Format.fprintf ppf "%s" i.message

(* Evaluate an expression at an iteration-space corner described by a
   choice function (true = upper bound) over loop variables; non-loop
   variables are an error surfaced by the caller. *)
let corner_value bounds choice e =
  Expr.eval
    (fun v ->
      match List.assoc_opt v bounds with
      | Some (lo, hi) -> if choice v then hi else lo
      | None -> raise Not_found)
    e

let check program =
  let issues = ref [] in
  let add nest message = issues := { nest; message } :: !issues in
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun a -> Hashtbl.replace arrays a.Array_decl.name a)
    program.Program.arrays;
  List.iteri
    (fun ni nest ->
      (* Shadowing check and constant loop-bound collection. *)
      let seen = Hashtbl.create 8 in
      let bounds = ref [] in
      List.iter
        (fun l ->
          if Hashtbl.mem seen l.Loop.var then
            add ni (Printf.sprintf "loop variable %s shadowed" l.Loop.var);
          Hashtbl.replace seen l.Loop.var ();
          (* Bounds may reference outer variables; approximate by
             evaluating at outer corners when possible. *)
          let eval_range e =
            try
              let lo = corner_value !bounds (fun _ -> false) e in
              let hi = corner_value !bounds (fun _ -> true) e in
              Some (min lo hi, max lo hi)
            with Not_found -> None
          in
          let clamped base clamp combine =
            match (base, Option.map eval_range clamp) with
            | Some r, None -> Some r
            | Some (a, b), Some (Some (c, d)) -> Some (combine a c, combine b d)
            | _ -> None
          in
          let lo_range = clamped (eval_range l.Loop.lo) l.Loop.lo_max max in
          let hi_range = clamped (eval_range l.Loop.hi) l.Loop.hi_min min in
          match (lo_range, hi_range) with
          | Some (lo, _), Some (_, hi) ->
              let lo, hi = if l.Loop.step > 0 then (lo, hi) else (hi, lo) in
              bounds := (l.Loop.var, (min lo hi, max lo hi)) :: !bounds
          | _ -> add ni (Printf.sprintf "bounds of %s not analyzable" l.Loop.var))
        nest.Nest.loops;
      List.iter
        (fun r ->
          match Hashtbl.find_opt arrays r.Ref_.array with
          | None -> add ni (Printf.sprintf "array %s not declared" r.Ref_.array)
          | Some decl ->
              let dims = decl.Array_decl.dims in
              if List.length r.Ref_.subs <> List.length dims then
                add ni
                  (Printf.sprintf "%s: %d subscripts for %d dims" r.Ref_.array
                     (List.length r.Ref_.subs) (List.length dims))
              else
                List.iteri
                  (fun d (sub, dim) ->
                    match sub with
                    | Subscript.Gather { table; _ } ->
                        Array.iter
                          (fun e ->
                            if e < 0 || e >= dim then
                              add ni
                                (Printf.sprintf "%s: gather table entry %d out of [0,%d)"
                                   r.Ref_.array e dim))
                          table
                    | Subscript.Affine e -> (
                        List.iter
                          (fun var ->
                            if not (Hashtbl.mem seen var) then
                              add ni
                                (Printf.sprintf "%s: unbound variable %s in dim %d"
                                   r.Ref_.array var d))
                          (Expr.vars e);
                        (* Corner check: min/max of an affine expression
                           over a box is attained at corners chosen by
                           coefficient sign. *)
                        try
                          let lo =
                            corner_value !bounds (fun v -> Expr.coeff e v < 0) e
                          in
                          let hi =
                            corner_value !bounds (fun v -> Expr.coeff e v > 0) e
                          in
                          if lo < 0 || hi >= dim then
                            add ni
                              (Printf.sprintf
                                 "%s dim %d: subscript range [%d,%d] outside [0,%d)"
                                 r.Ref_.array d lo hi dim)
                        with Not_found -> ()))
                  (List.combine r.Ref_.subs dims))
        (Nest.refs nest))
    program.Program.nests;
  List.rev !issues

let check_exn program =
  match check program with
  | [] -> ()
  | issues ->
      let msgs = List.map (Format.asprintf "%a" pp_issue) issues in
      invalid_arg
        (Printf.sprintf "Validate: %s: %s" program.Program.name
           (String.concat "; " msgs))
