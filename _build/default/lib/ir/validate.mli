(** Well-formedness checks for programs: every referenced array is
    declared with matching arity, every subscript only mentions bound loop
    variables, loop variables are not shadowed within a nest, and every
    affine reference stays in bounds at the iteration-space corners
    (a cheap necessary condition; full checking would walk the space). *)

type issue = {
  nest : int;           (** index of the offending nest, -1 for global *)
  message : string;
}

val check : Program.t -> issue list

(** @raise Invalid_argument listing all issues when [check] is nonempty. *)
val check_exn : Program.t -> unit

val pp_issue : Format.formatter -> issue -> unit
