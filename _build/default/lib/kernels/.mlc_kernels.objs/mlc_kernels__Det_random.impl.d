lib/kernels/det_random.ml: Array
