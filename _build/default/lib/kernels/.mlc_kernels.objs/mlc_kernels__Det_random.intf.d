lib/kernels/det_random.mli:
