lib/kernels/livermore.ml: Build Det_random Loop Mlc_ir Printf Stmt
