lib/kernels/livermore.mli: Mlc_ir Program
