lib/kernels/nas.ml: Array Build Det_random Loop Mlc_ir Printf Stmt
