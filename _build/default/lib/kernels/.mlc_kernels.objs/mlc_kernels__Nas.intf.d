lib/kernels/nas.mli: Mlc_ir Program
