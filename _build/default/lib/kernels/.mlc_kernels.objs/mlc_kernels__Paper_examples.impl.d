lib/kernels/paper_examples.ml: Build Mlc_ir Stmt
