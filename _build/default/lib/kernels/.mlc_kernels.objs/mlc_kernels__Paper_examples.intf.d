lib/kernels/paper_examples.mli: Mlc_ir Program
