lib/kernels/registry.ml: List Livermore Mlc_ir Nas Program Spec String
