lib/kernels/registry.mli: Mlc_ir Program
