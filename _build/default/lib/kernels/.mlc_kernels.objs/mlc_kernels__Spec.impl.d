lib/kernels/spec.ml: Build Det_random Livermore Mlc_ir Printf Program Stmt
