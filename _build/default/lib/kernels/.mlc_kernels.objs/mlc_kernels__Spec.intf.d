lib/kernels/spec.mli: Mlc_ir Program
