lib/kernels/time_kernels.ml: Build Expr Loop Mlc_ir Nest Printf
