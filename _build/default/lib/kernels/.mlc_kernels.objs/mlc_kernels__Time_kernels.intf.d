lib/kernels/time_kernels.mli: Mlc_ir Program
