type t = { mutable state : int }

let create ~seed = { state = (seed lxor 0x1E3779B97F4A7C15) lor 1 }

(* LCG with a 62-bit-safe multiplier (OCaml ints are 63-bit); masking
   keeps the state positive. *)
let next t =
  t.state <- (t.state * 2862933555777941757) + 3037000493;
  t.state land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Det_random.int: bound <= 0";
  next t mod bound

let table ~seed ~n ~bound =
  let t = create ~seed in
  Array.init n (fun _ -> int t bound)

let permutation ~seed ~n =
  let t = create ~seed in
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
