(** Deterministic pseudo-random sequences (64-bit LCG) for building
    reproducible gather tables: every run of the suite sees the same
    irregular meshes, sort keys and sparse patterns. *)

type t

val create : seed:int -> t

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** A table of [n] indices in [0, bound). *)
val table : seed:int -> n:int -> bound:int -> int array

(** A permutation of [0, n). *)
val permutation : seed:int -> n:int -> int array
