open Mlc_ir
open Build

let dot n =
  let x = arr "X" [ n ] and z = arr "Z" [ n ] in
  let k = v "k" in
  program (Printf.sprintf "dot%d" n) [ x; z ]
    [
      nest
        [ loop "k" 0 (n - 1) ]
        [ Stmt.make ~flops:2 [ r "Z" [ k ]; r "X" [ k ] ] ];
    ]

let adi n =
  (* Two alternating-direction sweeps: a row sweep carrying a recurrence
     on the first index, then a column sweep carrying it on the second.
     U is the unknown; A, B hold coefficients per direction. *)
  let u = arr "U" [ n; n ] and a = arr "A" [ n; n ] and b = arr "B" [ n; n ] in
  let i = v "i" and j = v "j" in
  program (Printf.sprintf "adi%d" n) [ u; a; b ]
    [
      nest
        [ loop "j" 0 (n - 1); loop "i" 1 (n - 1) ]
        [
          asn ~flops:2 (w "U" [ i; j ])
            [ r "U" [ i; j ]; r "A" [ i; j ]; r "U" [ i -! 1; j ] ];
        ];
      nest
        [ loop "j" 1 (n - 1); loop "i" 0 (n - 1) ]
        [
          asn ~flops:2 (w "U" [ i; j ])
            [ r "U" [ i; j ]; r "B" [ i; j ]; r "U" [ i; j -! 1 ] ];
        ];
    ]

let erle n =
  (* Erlebacher fragment: sweeps along the third dimension.  A plane of a
     64x64x64 double array is 32K — a multiple of the 16K L1 — so the
     k/k-1 plane pair of the same array collides without intra-variable
     padding. *)
  let f = arr "F" [ n; n; n ]
  and g = arr "G" [ n; n; n ]
  and d = arr "D" [ n; n; n ] in
  let i = v "i" and j = v "j" and k = v "k" in
  program (Printf.sprintf "erle%d" n) [ f; g; d ]
    [
      (* forward elimination along k *)
      nest
        [ loop "k" 1 (n - 1); loop "j" 0 (n - 1); loop "i" 0 (n - 1) ]
        [
          asn ~flops:2 (w "F" [ i; j; k ])
            [ r "F" [ i; j; k ]; r "G" [ i; j; k ]; r "F" [ i; j; k -! 1 ] ];
        ];
      (* back substitution *)
      nest
        [
          Loop.make ~step:(-1) "k" ~lo:(c (n - 2)) ~hi:(c 0);
          loop "j" 0 (n - 1);
          loop "i" 0 (n - 1);
        ]
        [
          asn ~flops:2 (w "F" [ i; j; k ])
            [ r "F" [ i; j; k ]; r "D" [ i; j; k ]; r "F" [ i; j; k +! 1 ] ];
        ];
    ]

let expl n =
  (* Livermore loop 18: 2D explicit hydrodynamics, transcribed with the
     row index j first (unit stride) and the column index k outer.  The
     Fortran ranges j,k = 2..N-1 become 1..n-2. *)
  let mk name = arr name [ n; n ] in
  let za = mk "ZA" and zb = mk "ZB" and zm = mk "ZM" in
  let zp = mk "ZP" and zq = mk "ZQ" and zr = mk "ZR" in
  let zu = mk "ZU" and zv = mk "ZV" and zz = mk "ZZ" in
  let j = v "j" and k = v "k" in
  let n75 =
    nest
      [ loop "k" 1 (n - 2); loop "j" 1 (n - 2) ]
      [
        asn ~flops:8 (w "ZA" [ j; k ])
          [
            r "ZP" [ j -! 1; k +! 1 ]; r "ZQ" [ j -! 1; k +! 1 ];
            r "ZP" [ j -! 1; k ]; r "ZQ" [ j -! 1; k ];
            r "ZR" [ j; k ]; r "ZR" [ j -! 1; k ];
            r "ZM" [ j -! 1; k ]; r "ZM" [ j -! 1; k +! 1 ];
          ];
        asn ~flops:8 (w "ZB" [ j; k ])
          [
            r "ZP" [ j -! 1; k ]; r "ZQ" [ j -! 1; k ];
            r "ZP" [ j; k ]; r "ZQ" [ j; k ];
            r "ZR" [ j; k ]; r "ZR" [ j; k -! 1 ];
            r "ZM" [ j; k ]; r "ZM" [ j -! 1; k ];
          ];
      ]
  in
  let n76 =
    nest
      [ loop "k" 1 (n - 2); loop "j" 1 (n - 2) ]
      [
        asn ~flops:13 (w "ZU" [ j; k ])
          [
            r "ZU" [ j; k ];
            r "ZA" [ j; k ]; r "ZZ" [ j; k ]; r "ZZ" [ j +! 1; k ];
            r "ZA" [ j -! 1; k ]; r "ZZ" [ j -! 1; k ];
            r "ZB" [ j; k ]; r "ZZ" [ j; k -! 1 ];
            r "ZB" [ j; k +! 1 ]; r "ZZ" [ j; k +! 1 ];
          ];
        asn ~flops:13 (w "ZV" [ j; k ])
          [
            r "ZV" [ j; k ];
            r "ZA" [ j; k ]; r "ZR" [ j; k ]; r "ZR" [ j +! 1; k ];
            r "ZA" [ j -! 1; k ]; r "ZR" [ j -! 1; k ];
            r "ZB" [ j; k ]; r "ZR" [ j; k -! 1 ];
            r "ZB" [ j; k +! 1 ]; r "ZR" [ j; k +! 1 ];
          ];
      ]
  in
  let n77 =
    nest
      [ loop "k" 1 (n - 2); loop "j" 1 (n - 2) ]
      [
        asn ~flops:2 (w "ZR" [ j; k ]) [ r "ZR" [ j; k ]; r "ZU" [ j; k ] ];
        asn ~flops:2 (w "ZZ" [ j; k ]) [ r "ZZ" [ j; k ]; r "ZV" [ j; k ] ];
      ]
  in
  program
    (Printf.sprintf "expl%d" n)
    [ za; zb; zm; zp; zq; zr; zu; zv; zz ]
    [ n75; n76; n77 ]

let irr ?nodes edges =
  let nodes = match nodes with Some n -> n | None -> max 16 (edges / 5) in
  let left = Det_random.table ~seed:11 ~n:edges ~bound:nodes in
  let right = Det_random.table ~seed:23 ~n:edges ~bound:nodes in
  let x = arr "X" [ nodes ]
  and y = arr "Y" [ nodes ]
  and il = arr ~elem_size:4 "IL" [ edges ]
  and ir = arr ~elem_size:4 "IR" [ edges ] in
  let e = v "e" in
  program
    (Printf.sprintf "irr%dk" (edges / 1000))
    [ x; y; il; ir ]
    [
      nest
        [ loop "e" 0 (edges - 1) ]
        [
          (* Load both endpoint indices, then relax across the edge. *)
          Stmt.make ~flops:3
            [
              r "IL" [ e ];
              r "IR" [ e ];
              rg "Y" left e;
              rg "Y" right e;
              wg "X" left e;
            ];
        ];
    ]

let jacobi n =
  let a = arr "A" [ n; n ] and b = arr "B" [ n; n ] in
  let i = v "i" and j = v "j" in
  program (Printf.sprintf "jacobi%d" n) [ a; b ]
    [
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [
          asn ~flops:4 (w "A" [ i; j ])
            [
              r "B" [ i -! 1; j ]; r "B" [ i +! 1; j ];
              r "B" [ i; j -! 1 ]; r "B" [ i; j +! 1 ];
            ];
        ];
      (* copy back + convergence test *)
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [ asn ~flops:1 (w "B" [ i; j ]) [ r "A" [ i; j ]; r "B" [ i; j ] ] ];
    ]

let linpackd n =
  let a = arr "A" [ n; n ] in
  let i = v "i" and j = v "j" and k = v "k" in
  program
    (Printf.sprintf "linpackd%d" n)
    [ a ]
    [
      (* Right-looking LU: the pivot search reads column k, then the rank-1
         update touches the trailing submatrix. *)
      nest
        [ loop "k" 0 (n - 2); loop_e "i" (v "k" +! 1) (c (n - 1)) ]
        [ Stmt.make ~flops:1 [ r "A" [ i; k ] ] ];
      nest
        [
          loop "k" 0 (n - 2);
          loop_e "j" (v "k" +! 1) (c (n - 1));
          loop_e "i" (v "k" +! 1) (c (n - 1));
        ]
        [
          asn ~flops:2 (w "A" [ i; j ])
            [ r "A" [ i; j ]; r "A" [ i; k ]; r "A" [ k; j ] ];
        ];
    ]

let shal ?(time_steps = 1) n =
  let mk name = arr name [ n; n ] in
  let u = mk "U" and vv = mk "V" and p = mk "P" in
  let unew = mk "UNEW" and vnew = mk "VNEW" and pnew = mk "PNEW" in
  let uold = mk "UOLD" and vold = mk "VOLD" and pold = mk "POLD" in
  let cu = mk "CU" and cv = mk "CV" and z = mk "Z" and h = mk "H" in
  let i = v "i" and j = v "j" in
  let calc1 =
    nest
      [ loop "j" 0 (n - 2); loop "i" 0 (n - 2) ]
      [
        asn ~flops:2 (w "CU" [ i +! 1; j ])
          [ r "P" [ i +! 1; j ]; r "P" [ i; j ]; r "U" [ i +! 1; j ] ];
        asn ~flops:2 (w "CV" [ i; j +! 1 ])
          [ r "P" [ i; j +! 1 ]; r "P" [ i; j ]; r "V" [ i; j +! 1 ] ];
        asn ~flops:8 (w "Z" [ i +! 1; j +! 1 ])
          [
            r "V" [ i +! 1; j +! 1 ]; r "V" [ i; j +! 1 ];
            r "U" [ i +! 1; j +! 1 ]; r "U" [ i +! 1; j ];
            r "P" [ i; j ]; r "P" [ i +! 1; j ];
            r "P" [ i +! 1; j +! 1 ]; r "P" [ i; j +! 1 ];
          ];
        asn ~flops:9 (w "H" [ i; j ])
          [
            r "P" [ i; j ];
            r "U" [ i +! 1; j ]; r "U" [ i; j ];
            r "V" [ i; j +! 1 ]; r "V" [ i; j ];
          ];
      ]
  in
  let calc2 =
    nest
      [ loop "j" 0 (n - 2); loop "i" 0 (n - 2) ]
      [
        asn ~flops:8 (w "UNEW" [ i +! 1; j ])
          [
            r "UOLD" [ i +! 1; j ];
            r "Z" [ i +! 1; j +! 1 ]; r "Z" [ i +! 1; j ];
            r "CV" [ i +! 1; j +! 1 ]; r "CV" [ i; j +! 1 ];
            r "CV" [ i; j ]; r "CV" [ i +! 1; j ];
            r "H" [ i +! 1; j ]; r "H" [ i; j ];
          ];
        asn ~flops:8 (w "VNEW" [ i; j +! 1 ])
          [
            r "VOLD" [ i; j +! 1 ];
            r "Z" [ i +! 1; j +! 1 ]; r "Z" [ i; j +! 1 ];
            r "CU" [ i +! 1; j +! 1 ]; r "CU" [ i; j +! 1 ];
            r "CU" [ i; j ]; r "CU" [ i +! 1; j ];
            r "H" [ i; j +! 1 ]; r "H" [ i; j ];
          ];
        asn ~flops:4 (w "PNEW" [ i; j ])
          [
            r "POLD" [ i; j ];
            r "CU" [ i +! 1; j ]; r "CU" [ i; j ];
            r "CV" [ i; j +! 1 ]; r "CV" [ i; j ];
          ];
      ]
  in
  let calc3 =
    nest
      [ loop "j" 0 (n - 1); loop "i" 0 (n - 1) ]
      [
        asn ~flops:4 (w "UOLD" [ i; j ])
          [ r "U" [ i; j ]; r "UNEW" [ i; j ]; r "UOLD" [ i; j ] ];
        asn ~flops:4 (w "VOLD" [ i; j ])
          [ r "V" [ i; j ]; r "VNEW" [ i; j ]; r "VOLD" [ i; j ] ];
        asn ~flops:4 (w "POLD" [ i; j ])
          [ r "P" [ i; j ]; r "PNEW" [ i; j ]; r "POLD" [ i; j ] ];
        asn ~flops:0 (w "U" [ i; j ]) [ r "UNEW" [ i; j ] ];
        asn ~flops:0 (w "V" [ i; j ]) [ r "VNEW" [ i; j ] ];
        asn ~flops:0 (w "P" [ i; j ]) [ r "PNEW" [ i; j ] ];
      ]
  in
  program ~time_steps
    (Printf.sprintf "shal%d" n)
    [ u; vv; p; unew; vnew; pnew; uold; vold; pold; cu; cv; z; h ]
    [ calc1; calc2; calc3 ]
