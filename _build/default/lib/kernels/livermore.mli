(** The scientific kernels of Table 1 (top block).

    Each builder takes a problem size and returns the IR program.  The
    reference patterns are transcribed from the Livermore loops / kernel
    sources; 1-based Fortran index ranges become 0-based ranges with the
    same shape.  Default sizes follow the kernel names (DOT256, EXPL512,
    JACOBI512, SHAL512, ERLE64, ...). *)

open Mlc_ir

(** DOT — Livermore 3, inner product [Q += Z(k) * X(k)].  The accumulator
    lives in a register, so the body carries the two vector reads. *)
val dot : int -> Program.t

(** ADI — Livermore 8, 2D ADI integration fragment: two sweeps (rows then
    columns) over arrays U1..U3 and right-hand sides. *)
val adi : int -> Program.t

(** ERLE — Erlebacher 3D tridiagonal solver fragment: forward and
    backward sweeps along the third dimension of 3D arrays, where whole
    planes are a multiple of the L1 cache size (this is the kernel that
    needs intra-variable padding). *)
val erle : int -> Program.t

(** EXPL — Livermore 18, 2D explicit hydrodynamics: nine NxN arrays,
    three j/k nests (75/76/77). *)
val expl : int -> Program.t

(** IRR — relaxation over an irregular mesh: gather references through
    deterministic random edge tables.  [edges] defaults to 500_000 with
    [nodes = edges / 5]. *)
val irr : ?nodes:int -> int -> Program.t

(** JACOBI — 2D Jacobi with copy-back (convergence test folded into the
    second nest's reads). *)
val jacobi : int -> Program.t

(** LINPACKD — right-looking Gaussian elimination with partial pivoting:
    triangular update [A(i,j) -= A(i,k) * A(k,j)]. *)
val linpackd : int -> Program.t

(** SHAL — shallow-water model (the SWIM ancestor): thirteen NxN arrays,
    three computation nests (CALC1, CALC2, CALC3) per time step. *)
val shal : ?time_steps:int -> int -> Program.t
