open Mlc_ir
open Build

let bt n =
  (* The BT structure: 5-component solution and residual fields (the
     first, unit-stride dimension holds the components, as in the NAS
     source's U(5,I,J,K)), a compute_rhs-style stencil, and three
     directional block solves carrying a recurrence per direction. *)
  let uu = arr "U" [ 5; n; n; n ]
  and rhs = arr "RHS" [ 5; n; n; n ]
  and lhs = arr "LHS" [ 5; n; n; n ] in
  let m = v "m" and i = v "i" and j = v "j" and k = v "k" in
  let compute_rhs =
    nest
      [
        loop "k" 1 (n - 2); loop "j" 1 (n - 2); loop "i" 1 (n - 2);
        loop "m" 0 4;
      ]
      [
        asn ~flops:7 (w "RHS" [ m; i; j; k ])
          [
            r "U" [ m; i; j; k ];
            r "U" [ m; i -! 1; j; k ]; r "U" [ m; i +! 1; j; k ];
            r "U" [ m; i; j -! 1; k ]; r "U" [ m; i; j +! 1; k ];
            r "U" [ m; i; j; k -! 1 ]; r "U" [ m; i; j; k +! 1 ];
          ];
      ]
  in
  let sweep var lo_shift =
    let shifted e = match lo_shift with `X -> [ m; e; j; k ] | `Y -> [ m; i; e; k ] | `Z -> [ m; i; j; e ] in
    let loops =
      match lo_shift with
      | `X -> [ loop "k" 0 (n - 1); loop "j" 0 (n - 1); loop "i" 1 (n - 1); loop "m" 0 4 ]
      | `Y -> [ loop "k" 0 (n - 1); loop "j" 1 (n - 1); loop "i" 0 (n - 1); loop "m" 0 4 ]
      | `Z -> [ loop "k" 1 (n - 1); loop "j" 0 (n - 1); loop "i" 0 (n - 1); loop "m" 0 4 ]
    in
    nest loops
      [
        asn ~flops:6 (w "RHS" [ m; i; j; k ])
          [
            r "RHS" [ m; i; j; k ];
            r "LHS" [ m; i; j; k ];
            r "RHS" (shifted (var -! 1));
            r "U" [ m; i; j; k ];
          ];
      ]
  in
  let add_update =
    nest
      [ loop "k" 0 (n - 1); loop "j" 0 (n - 1); loop "i" 0 (n - 1); loop "m" 0 4 ]
      [ asn ~flops:1 (w "U" [ m; i; j; k ]) [ r "U" [ m; i; j; k ]; r "RHS" [ m; i; j; k ] ] ]
  in
  program (Printf.sprintf "appbt%d" n) [ uu; rhs; lhs ]
    [ compute_rhs; sweep i `X; sweep j `Y; sweep k `Z; add_update ]

let lu n =
  (* SSOR over 5-component fields: residual (rhs) computation, the lower
     (blts) and upper (buts) triangular sweeps with 3D recurrences, and
     the solution update — the four phases of APPLU's iteration. *)
  let uu = arr "U" [ 5; n; n; n ] and rsd = arr "RSD" [ 5; n; n; n ] in
  let m = v "m" and i = v "i" and j = v "j" and k = v "k" in
  let rhs =
    nest
      [ loop "k" 1 (n - 2); loop "j" 1 (n - 2); loop "i" 1 (n - 2); loop "m" 0 4 ]
      [
        asn ~flops:6 (w "RSD" [ m; i; j; k ])
          [
            r "U" [ m; i; j; k ];
            r "U" [ m; i -! 1; j; k ]; r "U" [ m; i +! 1; j; k ];
            r "U" [ m; i; j -! 1; k ]; r "U" [ m; i; j +! 1; k ];
          ];
      ]
  in
  let blts =
    nest
      [ loop "k" 1 (n - 1); loop "j" 1 (n - 1); loop "i" 1 (n - 1); loop "m" 0 4 ]
      [
        asn ~flops:6 (w "RSD" [ m; i; j; k ])
          [
            r "RSD" [ m; i; j; k ];
            r "RSD" [ m; i -! 1; j; k ]; r "RSD" [ m; i; j -! 1; k ];
            r "RSD" [ m; i; j; k -! 1 ]; r "U" [ m; i; j; k ];
          ];
      ]
  in
  let buts =
    nest
      [
        Loop.make ~step:(-1) "k" ~lo:(c (n - 2)) ~hi:(c 0);
        Loop.make ~step:(-1) "j" ~lo:(c (n - 2)) ~hi:(c 0);
        Loop.make ~step:(-1) "i" ~lo:(c (n - 2)) ~hi:(c 0);
        loop "m" 0 4;
      ]
      [
        asn ~flops:6 (w "RSD" [ m; i; j; k ])
          [
            r "RSD" [ m; i; j; k ];
            r "RSD" [ m; i +! 1; j; k ]; r "RSD" [ m; i; j +! 1; k ];
            r "RSD" [ m; i; j; k +! 1 ]; r "U" [ m; i; j; k ];
          ];
      ]
  in
  let update =
    nest
      [ loop "k" 0 (n - 1); loop "j" 0 (n - 1); loop "i" 0 (n - 1); loop "m" 0 4 ]
      [ asn ~flops:2 (w "U" [ m; i; j; k ]) [ r "U" [ m; i; j; k ]; r "RSD" [ m; i; j; k ] ] ]
  in
  program (Printf.sprintf "applu%d" n) [ uu; rsd ] [ rhs; blts; buts; update ]

let sp n =
  (* Scalar-pentadiagonal: five-point recurrences per direction, plus the
     1D metric arrays (CV, RHON style) the real code factors per line. *)
  let uu = arr "U" [ n; n; n ] and rhs = arr "RHS" [ n; n; n ] in
  let cv = arr "CV" [ n ] and rhon = arr "RHON" [ n ] in
  let i = v "i" and j = v "j" and k = v "k" in
  let line_sweep axis =
    match axis with
    | `X ->
        nest
          [ loop "k" 0 (n - 1); loop "j" 0 (n - 1); loop "i" 2 (n - 3) ]
          [
            asn ~flops:10 (w "RHS" [ i; j; k ])
              [
                r "RHS" [ i; j; k ]; r "CV" [ i ]; r "RHON" [ i ];
                r "U" [ i -! 2; j; k ]; r "U" [ i -! 1; j; k ];
                r "U" [ i; j; k ]; r "U" [ i +! 1; j; k ]; r "U" [ i +! 2; j; k ];
              ];
          ]
    | `Y ->
        nest
          [ loop "k" 0 (n - 1); loop "j" 2 (n - 3); loop "i" 0 (n - 1) ]
          [
            asn ~flops:8 (w "RHS" [ i; j; k ])
              [
                r "RHS" [ i; j; k ];
                r "U" [ i; j -! 2; k ]; r "U" [ i; j -! 1; k ];
                r "U" [ i; j; k ]; r "U" [ i; j +! 1; k ]; r "U" [ i; j +! 2; k ];
              ];
          ]
    | `Z ->
        nest
          [ loop "k" 2 (n - 3); loop "j" 0 (n - 1); loop "i" 0 (n - 1) ]
          [
            asn ~flops:8 (w "RHS" [ i; j; k ])
              [
                r "RHS" [ i; j; k ];
                r "U" [ i; j; k -! 2 ]; r "U" [ i; j; k -! 1 ];
                r "U" [ i; j; k ]; r "U" [ i; j; k +! 1 ]; r "U" [ i; j; k +! 2 ];
              ];
          ]
  in
  program (Printf.sprintf "appsp%d" n) [ uu; rhs; cv; rhon ]
    [ line_sweep `X; line_sweep `Y; line_sweep `Z ]

let buk ?(buckets = 1024) n =
  let keys = Det_random.table ~seed:7 ~n ~bound:buckets in
  let rank = Det_random.permutation ~seed:13 ~n in
  let key = arr ~elem_size:4 "KEY" [ n ]
  and count = arr ~elem_size:4 "COUNT" [ buckets ]
  and out = arr ~elem_size:4 "OUT" [ n ] in
  let i = v "i" and b = v "b" in
  program (Printf.sprintf "buk%d" n) [ key; count; out ]
    [
      (* counting pass *)
      nest
        [ loop "i" 0 (n - 1) ]
        [
          Stmt.make ~flops:1
            [ r "KEY" [ i ]; rg "COUNT" keys i; wg "COUNT" keys i ];
        ];
      (* prefix sum over buckets *)
      nest
        [ loop "b" 1 (buckets - 1) ]
        [ asn ~flops:1 (w "COUNT" [ b ]) [ r "COUNT" [ b ]; r "COUNT" [ b -! 1 ] ] ];
      (* permutation pass *)
      nest
        [ loop "i" 0 (n - 1) ]
        [ Stmt.make ~flops:1 [ r "KEY" [ i ]; wg "OUT" rank i ] ];
    ]

let cgm ?(row_nnz = 8) n =
  (* y = A x with [row_nnz] nonzeros per row, flattened over nnz. *)
  let nnz = n * row_nnz in
  let colidx_table = Det_random.table ~seed:31 ~n:nnz ~bound:n in
  let a = arr "A" [ nnz ]
  and x = arr "X" [ n ]
  and y = arr "Y" [ n ]
  and colidx = arr ~elem_size:4 "COLIDX" [ nnz ] in
  let e = v "e" in
  let row = Array.init nnz (fun e -> e / row_nnz) in
  program (Printf.sprintf "cgm%d" n) [ a; x; y; colidx ]
    [
      nest
        [ loop "e" 0 (nnz - 1) ]
        [
          Stmt.make ~flops:2
            [ r "A" [ e ]; r "COLIDX" [ e ]; rg "X" colidx_table e; wg "Y" row e ];
        ];
    ]

let embar n =
  (* Monte Carlo: a tiny constant table and histogram counters; nearly
     all references hit — the "nothing to optimize" end of Figure 9. *)
  let gauss = arr "GAUSS" [ 64 ] and q = arr "Q" [ 10 ] in
  let hist = Det_random.table ~seed:41 ~n:4096 ~bound:10 in
  let tab = Det_random.table ~seed:43 ~n:4096 ~bound:64 in
  let i = v "i" in
  let wrap = Array.init n (fun k -> k mod 4096) in
  let idx_of t = Array.init n (fun k -> t.(wrap.(k))) in
  program (Printf.sprintf "embar%d" n) [ gauss; q ]
    [
      nest
        [ loop "i" 0 (n - 1) ]
        [
          Stmt.make ~flops:12
            [ rg "GAUSS" (idx_of tab) i; rg "Q" (idx_of hist) i; wg "Q" (idx_of hist) i ];
        ];
    ]

let fftpde n =
  (* Butterfly passes with stride-2 access plus a transpose-flavoured
     pass: the classic power-of-two conflict generator. *)
  let re = arr "RE" [ n ] and im = arr "IM" [ n ] in
  let half = n / 2 in
  let i = v "i" and j = v "j" in
  let m = int_of_float (sqrt (float_of_int n)) in
  let plane_re = arr "PRE" [ m; m ] and plane_im = arr "PIM" [ m; m ] in
  program (Printf.sprintf "fftpde%d" n)
    [ re; im; plane_re; plane_im ]
    [
      nest
        [ loop "i" 0 (half - 1) ]
        [
          asn ~flops:4 (w "RE" [ i ** 2 ])
            [ r "RE" [ i ** 2 ]; r "RE" [ (i ** 2) +! 1 ]; r "IM" [ i ** 2 ] ];
          asn ~flops:4 (w "IM" [ (i ** 2) +! 1 ])
            [ r "IM" [ i ** 2 ]; r "IM" [ (i ** 2) +! 1 ]; r "RE" [ (i ** 2) +! 1 ] ];
        ];
      (* transpose-like pass across the plane views *)
      nest
        [ loop "j" 0 (m - 1); loop "i" 0 (m - 1) ]
        [ asn ~flops:0 (w "PRE" [ i; j ]) [ r "PIM" [ j; i ] ] ];
    ]

let mgrid n =
  let fine = arr "UF" [ n; n; n ]
  and res = arr "R" [ n; n; n ]
  and rhs = arr "V" [ n; n; n ]
  and coarse = arr "UC" [ n / 2; n / 2; n / 2 ] in
  let i = v "i" and j = v "j" and k = v "k" in
  let residual =
    nest
      [ loop "k" 1 (n - 2); loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
      [
        asn ~flops:8 (w "R" [ i; j; k ])
          [
            r "V" [ i; j; k ]; r "UF" [ i; j; k ];
            r "UF" [ i -! 1; j; k ]; r "UF" [ i +! 1; j; k ];
            r "UF" [ i; j -! 1; k ]; r "UF" [ i; j +! 1; k ];
            r "UF" [ i; j; k -! 1 ]; r "UF" [ i; j; k +! 1 ];
          ];
      ]
  in
  program (Printf.sprintf "mgrid%d" n) [ fine; res; rhs; coarse ]
    [
      residual;
      (* smooth: 7-point stencil *)
      nest
        [ loop "k" 1 (n - 2); loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [
          asn ~flops:7 (w "UF" [ i; j; k ])
            [
              r "R" [ i; j; k ];
              r "UF" [ i -! 1; j; k ]; r "UF" [ i +! 1; j; k ];
              r "UF" [ i; j -! 1; k ]; r "UF" [ i; j +! 1; k ];
              r "UF" [ i; j; k -! 1 ]; r "UF" [ i; j; k +! 1 ];
            ];
        ];
      (* restrict to the coarse grid (injection at even points) *)
      nest
        [
          loop "k" 0 ((n / 2) - 1);
          loop "j" 0 ((n / 2) - 1);
          loop "i" 0 ((n / 2) - 1);
        ]
        [
          asn ~flops:1 (w "UC" [ i; j; k ])
            [ r "R" [ i ** 2; j ** 2; k ** 2 ] ];
        ];
      (* prolongate back *)
      nest
        [
          loop "k" 0 ((n / 2) - 1);
          loop "j" 0 ((n / 2) - 1);
          loop "i" 0 ((n / 2) - 1);
        ]
        [
          asn ~flops:1 (w "UF" [ i ** 2; j ** 2; k ** 2 ])
            [ r "UF" [ i ** 2; j ** 2; k ** 2 ]; r "UC" [ i; j; k ] ];
        ];
    ]
