(** NAS benchmark mini-kernels (Table 1, middle block).

    Substitutes for the full NAS codes (see DESIGN.md): each mini
    reproduces the dominant loop/array structure of its namesake — the
    number and shape of the arrays, the stencil or indirect access
    pattern, and the sweep directions — which is what the padding passes
    and the cache simulation actually see.  Default sizes keep each run
    in the milliseconds-to-seconds range. *)

open Mlc_ir

(** BT: block-tridiagonal solver — 3D sweeps over several (N,N,N) fields
    in all three directions. *)
val bt : int -> Program.t

(** LU (APPLU): SSOR sweeps with wavefront-like k recurrence. *)
val lu : int -> Program.t

(** SP (APPSP): scalar-pentadiagonal sweeps, five diagonals per
    direction. *)
val sp : int -> Program.t

(** BUK: integer bucket sort — counting pass (gather-increment), prefix
    sum, and the permutation pass. *)
val buk : ?buckets:int -> int -> Program.t

(** CGM: sparse conjugate-gradient matrix-vector product through column
    indices. *)
val cgm : ?row_nnz:int -> int -> Program.t

(** EMBAR: embarrassingly parallel Monte Carlo — almost no memory reuse;
    a small table plus counters. *)
val embar : int -> Program.t

(** FFTPDE: 3D FFT kernel — butterfly passes with power-of-two strides. *)
val fftpde : int -> Program.t

(** MGRID: multigrid V-cycle fragment — fine-grid smoothing plus
    restriction/prolongation between grids. *)
val mgrid : int -> Program.t
