open Mlc_ir
open Build

let figure1 ~n ~m =
  let a = arr "A" [ n; m ] and b = arr "B" [ n ] in
  let i = v "i" and j = v "j" in
  program "figure1" [ a; b ]
    [
      nest
        [ loop "j" 0 (n - 1); loop "i" 0 (m - 1) ]
        [ asn ~flops:1 (w "B" [ j ]) [ r "A" [ j; i ] ] ];
    ]

let figure1_permuted ~n ~m =
  let a = arr "A" [ n; m ] and b = arr "B" [ n ] in
  let i = v "i" and j = v "j" in
  program "figure1-permuted" [ a; b ]
    [
      nest
        [ loop "i" 0 (m - 1); loop "j" 0 (n - 1) ]
        [ asn ~flops:1 (w "B" [ j ]) [ r "A" [ j; i ] ] ];
    ]

let figure1_transposed ~n ~m =
  let a = arr "A" [ m; n ] and b = arr "B" [ n ] in
  let i = v "i" and j = v "j" in
  program "figure1-transposed" [ a; b ]
    [
      nest
        [ loop "j" 0 (n - 1); loop "i" 0 (m - 1) ]
        [ asn ~flops:1 (w "B" [ j ]) [ r "A" [ i; j ] ] ];
    ]

(* The paper's Figure 2 statements show only right-hand sides; we model
   each statement as its reads (plus a flop count), which is exactly what
   the layout diagrams (Figures 3-5, 7) contain. *)
let figure2 n =
  let a = arr "A" [ n; n ] and b = arr "B" [ n; n ] and c = arr "C" [ n; n ] in
  let i = v "i" and j = v "j" in
  program "figure2" [ a; b; c ]
    [
      nest
        [ loop "j" 1 (n - 2); loop "i" 0 (n - 1) ]
        [
          Stmt.make ~flops:1 [ r "A" [ i; j ]; r "A" [ i; j +! 1 ] ];
          Stmt.make ~flops:1 [ r "B" [ i; j ]; r "B" [ i; j +! 1 ] ];
          Stmt.make ~flops:1 [ r "C" [ i; j ]; r "C" [ i; j +! 1 ] ];
        ];
      nest
        [ loop "j" 1 (n - 2); loop "i" 0 (n - 1) ]
        [
          Stmt.make ~flops:2 [ r "B" [ i; j -! 1 ]; r "B" [ i; j ]; r "B" [ i; j +! 1 ] ];
          Stmt.make ~flops:0 [ r "C" [ i; j ] ];
        ];
    ]

let figure6_fused n =
  let a = arr "A" [ n; n ] and b = arr "B" [ n; n ] and c = arr "C" [ n; n ] in
  let i = v "i" and j = v "j" in
  program "figure6-fused" [ a; b; c ]
    [
      nest
        [ loop "j" 1 (n - 2); loop "i" 0 (n - 1) ]
        [
          Stmt.make ~flops:1 [ r "A" [ i; j ]; r "A" [ i; j +! 1 ] ];
          Stmt.make ~flops:1 [ r "B" [ i; j ]; r "B" [ i; j +! 1 ] ];
          Stmt.make ~flops:1 [ r "C" [ i; j ]; r "C" [ i; j +! 1 ] ];
          Stmt.make ~flops:2 [ r "B" [ i; j -! 1 ]; r "B" [ i; j ]; r "B" [ i; j +! 1 ] ];
          Stmt.make ~flops:0 [ r "C" [ i; j ] ];
        ];
    ]
