(** The worked examples from the paper's text, used by unit tests and the
    fusion experiment (Figure 12).

    {!figure1} is the loop-permutation example of Section 1/2.
    {!figure2} is the two-nest program of Section 3/4; {!figure6_fused}
    its fused form (Figure 6).  The statements' left-hand sides are
    elided in the paper, so the bodies here contain exactly the array
    references shown in the figures (reads), which is what the layout
    diagrams and the Section 4 accounting are computed from. *)

open Mlc_ir

(** [figure1 ~n ~m] — [do j do i: B(j) = A(j,i)] (original order). *)
val figure1 : n:int -> m:int -> Program.t

(** [figure1_permuted] — the loop-permuted version ([i] outer). *)
val figure1_permuted : n:int -> m:int -> Program.t

(** [figure1_transposed] — original loop order with A transposed. *)
val figure1_transposed : n:int -> m:int -> Program.t

(** [figure2 n] — two nests over A, B, C (NxN doubles):
    nest 1 reads A(i,j), A(i,j+1), B(i,j), B(i,j+1), C(i,j), C(i,j+1);
    nest 2 reads B(i,j-1), B(i,j), B(i,j+1), C(i,j). *)
val figure2 : int -> Program.t

(** [figure6_fused n] — the same references in a single fused nest. *)
val figure6_fused : int -> Program.t
