open Mlc_ir
open Build

let swim n =
  let p = Livermore.shal n in
  { p with Program.name = Printf.sprintf "swim%d" n }

let tomcatv n =
  let mk name = arr name [ n; n ] in
  let x = mk "X" and y = mk "Y" in
  let rx = mk "RX" and ry = mk "RY" in
  let aa = mk "AA" and dd = mk "DD" and d = mk "D" in
  let i = v "i" and j = v "j" in
  program (Printf.sprintf "tomcatv%d" n)
    [ x; y; rx; ry; aa; dd; d ]
    [
      (* residual computation: 9-point stencils on X and Y *)
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [
          asn ~flops:12 (w "RX" [ i; j ])
            [
              r "X" [ i -! 1; j ]; r "X" [ i +! 1; j ]; r "X" [ i; j -! 1 ];
              r "X" [ i; j +! 1 ]; r "X" [ i -! 1; j -! 1 ]; r "X" [ i +! 1; j +! 1 ];
            ];
          asn ~flops:12 (w "RY" [ i; j ])
            [
              r "Y" [ i -! 1; j ]; r "Y" [ i +! 1; j ]; r "Y" [ i; j -! 1 ];
              r "Y" [ i; j +! 1 ]; r "Y" [ i -! 1; j -! 1 ]; r "Y" [ i +! 1; j +! 1 ];
            ];
          asn ~flops:6 (w "AA" [ i; j ]) [ r "X" [ i; j ]; r "Y" [ i; j ] ];
          asn ~flops:6 (w "DD" [ i; j ]) [ r "X" [ i; j ]; r "Y" [ i; j ] ];
        ];
      (* forward elimination along i (tridiagonal solves per column) *)
      nest
        [ loop "j" 1 (n - 2); loop "i" 2 (n - 2) ]
        [
          asn ~flops:4 (w "D" [ i; j ])
            [ r "DD" [ i; j ]; r "AA" [ i; j ]; r "D" [ i -! 1; j ] ];
          asn ~flops:4 (w "RX" [ i; j ])
            [ r "RX" [ i; j ]; r "AA" [ i; j ]; r "RX" [ i -! 1; j ] ];
          asn ~flops:4 (w "RY" [ i; j ])
            [ r "RY" [ i; j ]; r "AA" [ i; j ]; r "RY" [ i -! 1; j ] ];
        ];
      (* add corrections *)
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [
          asn ~flops:1 (w "X" [ i; j ]) [ r "X" [ i; j ]; r "RX" [ i; j ] ];
          asn ~flops:1 (w "Y" [ i; j ]) [ r "Y" [ i; j ]; r "RY" [ i; j ] ];
        ];
    ]

let apsi n =
  (* 3D fields with short vertical extent, swept column by column. *)
  let levels = 32 in
  let t = arr "T" [ levels; n; n ]
  and uu = arr "U" [ levels; n; n ]
  and q = arr "Q" [ levels; n; n ] in
  let l = v "l" and i = v "i" and j = v "j" in
  program (Printf.sprintf "apsi%d" n) [ t; uu; q ]
    [
      (* vertical diffusion columns *)
      nest
        [ loop "j" 0 (n - 1); loop "i" 0 (n - 1); loop "l" 1 (levels - 1) ]
        [
          asn ~flops:4 (w "T" [ l; i; j ])
            [ r "T" [ l; i; j ]; r "T" [ l -! 1; i; j ]; r "U" [ l; i; j ] ];
          asn ~flops:3 (w "Q" [ l; i; j ])
            [ r "Q" [ l; i; j ]; r "T" [ l; i; j ]; r "U" [ l; i; j ] ];
        ];
      (* horizontal advection at every level *)
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2); loop "l" 0 (levels - 1) ]
        [
          asn ~flops:6 (w "Q" [ l; i; j ])
            [
              r "Q" [ l; i; j ];
              r "Q" [ l; i -! 1; j ]; r "Q" [ l; i +! 1; j ];
              r "Q" [ l; i; j -! 1 ]; r "Q" [ l; i; j +! 1 ];
              r "U" [ l; i; j ];
            ];
        ];
    ]

let hydro2d n =
  (* HYDRO2D advances density, energy and two momenta with per-direction
     flux arrays (the Galilei-transformed hydro equations): flux build,
     conserved-variable update, and the viscosity/smoothing pass. *)
  let mk name = arr name [ n; n ] in
  let ro = mk "RO" and en = mk "EN" and mx = mk "MX" and my = mk "MY" in
  let fx = mk "FX" and fy = mk "FY" and gx = mk "GX" and gy = mk "GY" in
  let i = v "i" and j = v "j" in
  program (Printf.sprintf "hydro2d%d" n)
    [ ro; en; mx; my; fx; fy; gx; gy ]
    [
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [
          asn ~flops:6 (w "FX" [ i; j ])
            [ r "MX" [ i; j ]; r "MX" [ i +! 1; j ]; r "RO" [ i; j ]; r "RO" [ i +! 1; j ] ];
          asn ~flops:6 (w "FY" [ i; j ])
            [ r "MY" [ i; j ]; r "MY" [ i; j +! 1 ]; r "RO" [ i; j ]; r "RO" [ i; j +! 1 ] ];
        ];
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [
          asn ~flops:6 (w "GX" [ i; j ])
            [ r "EN" [ i; j ]; r "EN" [ i +! 1; j ]; r "MX" [ i; j ]; r "RO" [ i; j ] ];
          asn ~flops:6 (w "GY" [ i; j ])
            [ r "EN" [ i; j ]; r "EN" [ i; j +! 1 ]; r "MY" [ i; j ]; r "RO" [ i; j ] ];
        ];
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [
          asn ~flops:4 (w "RO" [ i; j ])
            [ r "RO" [ i; j ]; r "FX" [ i; j ]; r "FX" [ i -! 1; j ];
              r "FY" [ i; j ]; r "FY" [ i; j -! 1 ] ];
          asn ~flops:4 (w "EN" [ i; j ])
            [ r "EN" [ i; j ]; r "GX" [ i; j ]; r "GX" [ i -! 1; j ];
              r "GY" [ i; j ]; r "GY" [ i; j -! 1 ] ];
          asn ~flops:4 (w "MX" [ i; j ])
            [ r "MX" [ i; j ]; r "FX" [ i; j ]; r "GX" [ i; j ] ];
          asn ~flops:4 (w "MY" [ i; j ])
            [ r "MY" [ i; j ]; r "FY" [ i; j ]; r "GY" [ i; j ] ];
        ];
    ]

let su2cor n =
  (* Lattice sweep over interleaved complex pairs: stride-2 accesses. *)
  let lattice = arr "GAUGE" [ 2 * n; n ] and prop = arr "PROP" [ 2 * n; n ] in
  let i = v "i" and j = v "j" in
  program (Printf.sprintf "su2cor%d" n) [ lattice; prop ]
    [
      nest
        [ loop "j" 0 (n - 1); loop "i" 0 (n - 1) ]
        [
          asn ~flops:8 (w "PROP" [ i ** 2; j ])
            [
              r "PROP" [ i ** 2; j ]; r "PROP" [ (i ** 2) +! 1; j ];
              r "GAUGE" [ i ** 2; j ]; r "GAUGE" [ (i ** 2) +! 1; j ];
            ];
          asn ~flops:8 (w "PROP" [ (i ** 2) +! 1; j ])
            [
              r "PROP" [ i ** 2; j ]; r "GAUGE" [ i ** 2; j ];
              r "GAUGE" [ (i ** 2) +! 1; j ];
            ];
        ];
    ]

let turb3d n =
  let uu = arr "U" [ n; n; n ] and vv = arr "V" [ n; n; n ] in
  let i = v "i" and j = v "j" and k = v "k" in
  program (Printf.sprintf "turb3d%d" n) [ uu; vv ]
    [
      (* x-direction butterflies *)
      nest
        [ loop "k" 0 (n - 1); loop "j" 0 (n - 1); loop "i" 0 ((n / 2) - 1) ]
        [
          asn ~flops:4 (w "U" [ i ** 2; j; k ])
            [ r "U" [ i ** 2; j; k ]; r "U" [ (i ** 2) +! 1; j; k ]; r "V" [ i ** 2; j; k ] ];
        ];
      (* z-direction pass: large-stride accesses *)
      nest
        [ loop "j" 0 (n - 1); loop "i" 0 (n - 1); loop "k" 1 (n - 1) ]
        [
          asn ~flops:4 (w "V" [ i; j; k ])
            [ r "V" [ i; j; k ]; r "V" [ i; j; k -! 1 ]; r "U" [ i; j; k ] ];
        ];
    ]

let wave5 ?(particles = 100_000) n =
  let ex = arr "EX" [ n; n ] and ey = arr "EY" [ n; n ] in
  let px = arr "PX" [ particles ] and py = arr "PY" [ particles ] in
  let cell = Det_random.table ~seed:57 ~n:particles ~bound:(n * n) in
  let flat_ex = arr "FEX" [ n * n ] and flat_ey = arr "FEY" [ n * n ] in
  let i = v "i" and j = v "j" and p = v "p" in
  program (Printf.sprintf "wave5_%d" n)
    [ ex; ey; px; py; flat_ex; flat_ey ]
    [
      (* field solve: stencil on E *)
      nest
        [ loop "j" 1 (n - 2); loop "i" 1 (n - 2) ]
        [
          asn ~flops:4 (w "EX" [ i; j ])
            [ r "EX" [ i; j ]; r "EY" [ i; j ]; r "EY" [ i -! 1; j ]; r "EY" [ i; j -! 1 ] ];
        ];
      (* particle push: gather fields at particle cells *)
      nest
        [ loop "p" 0 (particles - 1) ]
        [
          Stmt.make ~flops:6
            [
              r "PX" [ p ]; r "PY" [ p ];
              rg "FEX" cell p; rg "FEY" cell p;
              w "PX" [ p ]; w "PY" [ p ];
            ];
        ];
    ]

let fpppp n =
  (* Many small dense blocks with almost no cross-block reuse. *)
  let blocks = n in
  let bsize = 16 in
  let f = arr "F" [ bsize; bsize; blocks ] and gout = arr "G" [ bsize; blocks ] in
  let b = v "b" and i = v "i" and j = v "j" in
  program (Printf.sprintf "fpppp%d" n) [ f; gout ]
    [
      nest
        [ loop "b" 0 (blocks - 1); loop "j" 0 (bsize - 1); loop "i" 0 (bsize - 1) ]
        [
          asn ~flops:2 (w "G" [ i; b ])
            [ r "G" [ i; b ]; r "F" [ i; j; b ] ];
        ];
    ]
