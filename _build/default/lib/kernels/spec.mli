(** SPEC95fp mini-kernels (Table 1, bottom block) — structural substitutes
    for the full benchmarks, as documented in DESIGN.md.  SWIM shares the
    shallow-water structure of SHAL at its SPEC problem size. *)

open Mlc_ir

(** SWIM — vector shallow water model: SHAL's thirteen arrays at SPEC
    size (512). *)
val swim : int -> Program.t

(** TOMCATV — mesh generation: seven NxN arrays, stencil sweeps plus a
    tridiagonal-ish recurrence. *)
val tomcatv : int -> Program.t

(** APSI — pseudospectral air pollution: 3D fields swept by vertical
    columns. *)
val apsi : int -> Program.t

(** HYDRO2D — Navier-Stokes hydrodynamics: many 2D fields, Jacobi-like
    stencils. *)
val hydro2d : int -> Program.t

(** SU2COR — quantum physics Monte Carlo: strided complex-pair lattice
    sweeps. *)
val su2cor : int -> Program.t

(** TURB3D — isotropic turbulence: 3D FFT-flavoured passes. *)
val turb3d : int -> Program.t

(** WAVE5 — plasma physics: particle pushes (gathers) over field
    arrays. *)
val wave5 : ?particles:int -> int -> Program.t

(** FPPPP — electron integrals: small dense blocks with little array
    reuse. *)
val fpppp : int -> Program.t
