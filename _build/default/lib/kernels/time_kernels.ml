open Mlc_ir
open Build

(* In-place 5-point relaxation: legal to time-skew (the k-1 / j-1 values
   are from the current sweep, k+1 / j+1 from the previous one, exactly
   as Gauss-Seidel executes). *)
let body_stmt =
  let j = v "j" and k = v "k" in
  asn ~flops:4
    (w "A" [ j; k ])
    [
      r "A" [ j -! 1; k ]; r "A" [ j +! 1; k ];
      r "A" [ j; k -! 1 ]; r "A" [ j; k +! 1 ];
    ]

let sweep_2d ~n ~steps =
  let a = arr "A" [ n; n ] in
  program ~time_steps:steps
    (Printf.sprintf "sweep2d-%d-t%d" n steps)
    [ a ]
    [
      nest [ loop "k" 1 (n - 2); loop "j" 1 (n - 2) ] [ body_stmt ];
    ]

let tile_columns ~steps ~block = block + steps

let time_tiled_2d ~n ~steps ~block =
  if block < 1 || steps < 1 then invalid_arg "time_tiled_2d: bad parameters";
  let a = arr "A" [ n; n ] in
  (* kk walks column blocks; within a block, all [steps] time steps run
     before moving on; the column range of step t is shifted left by t
     (time skewing).  Interior only: kk starts past the deepest skew and
     the clamp trims the right edge. *)
  let kk = v "kk" and t = v "t" in
  let lo_kk = steps in
  let nest_tiled =
    Nest.make
      [
        Loop.make ~step:block "kk" ~lo:(c lo_kk) ~hi:(c (n - 2));
        loop "t" 0 (steps - 1);
        Loop.make "k"
          ~lo:(Expr.sub kk t)
          ~hi:(Expr.add (Expr.sub kk t) (c (block - 1)))
          ~hi_min:(c (n - 2));
        loop "j" 1 (n - 2);
      ]
      [ body_stmt ]
  in
  program
    (Printf.sprintf "sweep2d-%d-t%d-tiled-b%d" n steps block)
    [ a ]
    [ nest_tiled ]
