(** Time-step kernels for the Section 5 exception (Song & Li [25]):
    tiling {e across} time steps needs tiles holding a block of columns
    plus a column per time step — too large for the L1 cache, so the
    tile targets L2.

    [sweep_2d] is a Gauss–Seidel-style 2D relaxation repeated [steps]
    times.  [time_tiled_2d] is its time-skewed blocked form: a block of
    [block] columns is carried through all time steps before moving on
    (interior only: the boundary wedges are trimmed rather than peeled,
    so the tiled program performs the same interior work with the same
    reference pattern, which is what the cache comparison needs). *)

open Mlc_ir

val sweep_2d : n:int -> steps:int -> Program.t

val time_tiled_2d : n:int -> steps:int -> block:int -> Program.t

(** Columns a tile touches: [block + steps] columns of the array — the
    quantity that must fit in the targeted cache level. *)
val tile_columns : steps:int -> block:int -> int
