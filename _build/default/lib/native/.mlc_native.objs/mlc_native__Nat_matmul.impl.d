lib/native/nat_matmul.ml: Array
