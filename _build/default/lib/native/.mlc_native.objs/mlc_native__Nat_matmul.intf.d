lib/native/nat_matmul.mli:
