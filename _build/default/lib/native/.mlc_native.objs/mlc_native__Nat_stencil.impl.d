lib/native/nat_stencil.ml: Array
