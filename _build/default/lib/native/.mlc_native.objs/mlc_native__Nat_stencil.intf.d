lib/native/nat_stencil.mli:
