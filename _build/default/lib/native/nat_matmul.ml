type matrix = { n : int; data : float array }

let create n = { n; data = Array.make (n * n) 0.0 }

let random_fill ~seed m =
  let state = ref (seed lor 1) in
  for i = 0 to Array.length m.data - 1 do
    state := (!state * 1103515245) + 12345;
    let bits = !state land 0xFFFFFF in
    m.data.(i) <- float_of_int bits /. 16777216.0
  done

(* column-major: (i, j) at i + n*j *)
let get m i j = m.data.(i + (m.n * j))

let set m i j x = m.data.(i + (m.n * j)) <- x

let multiply ~c ~a ~b =
  let n = c.n in
  if a.n <> n || b.n <> n then invalid_arg "Nat_matmul.multiply: size mismatch";
  let ca = c.data and aa = a.data and ba = b.data in
  for j = 0 to n - 1 do
    for k = 0 to n - 1 do
      let bkj = ba.(k + (n * j)) in
      let a_col = n * k and c_col = n * j in
      for i = 0 to n - 1 do
        ca.(i + c_col) <- ca.(i + c_col) +. (aa.(i + a_col) *. bkj)
      done
    done
  done

let multiply_tiled ~h ~w ~c ~a ~b =
  let n = c.n in
  if a.n <> n || b.n <> n then invalid_arg "Nat_matmul.multiply_tiled: size mismatch";
  if h <= 0 || w <= 0 then invalid_arg "Nat_matmul.multiply_tiled: bad tile";
  let ca = c.data and aa = a.data and ba = b.data in
  let kk = ref 0 in
  while !kk < n do
    let k_hi = min (!kk + w) n in
    let ii = ref 0 in
    while !ii < n do
      let i_hi = min (!ii + h) n in
      for j = 0 to n - 1 do
        let c_col = n * j in
        for k = !kk to k_hi - 1 do
          let bkj = ba.(k + (n * j)) in
          let a_col = n * k in
          for i = !ii to i_hi - 1 do
            ca.(i + c_col) <- ca.(i + c_col) +. (aa.(i + a_col) *. bkj)
          done
        done
      done;
      ii := !ii + h
    done;
    kk := !kk + w
  done

let multiply_unrolled ~c ~a ~b =
  let n = c.n in
  if a.n <> n || b.n <> n then invalid_arg "Nat_matmul.multiply_unrolled: size mismatch";
  let ca = c.data and aa = a.data and ba = b.data in
  for j = 0 to n - 1 do
    let c_col = n * j and b_col = n * j in
    let k = ref 0 in
    while !k + 3 < n do
      let k0 = !k in
      (* scalar-replace the four B operands for the whole column sweep *)
      let b0 = ba.(k0 + b_col)
      and b1 = ba.(k0 + 1 + b_col)
      and b2 = ba.(k0 + 2 + b_col)
      and b3 = ba.(k0 + 3 + b_col) in
      let a0 = n * k0 and a1 = n * (k0 + 1) and a2 = n * (k0 + 2) and a3 = n * (k0 + 3) in
      for i = 0 to n - 1 do
        ca.(i + c_col) <-
          ca.(i + c_col)
          +. (aa.(i + a0) *. b0)
          +. (aa.(i + a1) *. b1)
          +. (aa.(i + a2) *. b2)
          +. (aa.(i + a3) *. b3)
      done;
      k := k0 + 4
    done;
    while !k < n do
      let bkj = ba.(!k + b_col) in
      let a_col = n * !k in
      for i = 0 to n - 1 do
        ca.(i + c_col) <- ca.(i + c_col) +. (aa.(i + a_col) *. bkj)
      done;
      incr k
    done
  done

let max_abs_diff x y =
  if x.n <> y.n then invalid_arg "Nat_matmul.max_abs_diff: size mismatch";
  let m = ref 0.0 in
  for i = 0 to Array.length x.data - 1 do
    let d = abs_float (x.data.(i) -. y.data.(i)) in
    if d > !m then m := d
  done;
  !m

let mflop_count n = 2.0 *. float_of_int n *. float_of_int n *. float_of_int n /. 1.0e6
