(** Native (really executed) matrix multiplication, untiled and tiled with
    the Figure 8 loop structure — the workload behind the paper's timing
    experiment (Figure 13).  Matrices are column-major in flat float
    arrays, matching the IR's addressing, so simulated and real runs
    exercise the same access pattern. *)

type matrix = { n : int; data : float array }

val create : int -> matrix

(** Deterministically filled. *)
val random_fill : seed:int -> matrix -> unit

val get : matrix -> int -> int -> float

val set : matrix -> int -> int -> float -> unit

(** [multiply ~c ~a ~b] — C += A·B with J/K/I loops (I innermost,
    unit stride). *)
val multiply : c:matrix -> a:matrix -> b:matrix -> unit

(** [multiply_tiled ~h ~w ~c ~a ~b] — the Figure 8 tiled order:
    KK (step [w]), II (step [h]), J, K, I. *)
val multiply_tiled : h:int -> w:int -> c:matrix -> a:matrix -> b:matrix -> unit

(** Hand-unrolled (K by 4) with scalar replacement of the B operands and
    the C column pointer — the paper's footnote 2 variant ("if we unroll
    the loop by hand and apply scalar replacement, we achieve 60
    MFLOPS"): same traffic, better register use. *)
val multiply_unrolled : c:matrix -> a:matrix -> b:matrix -> unit

(** Max-abs difference between two result matrices (for correctness
    tests: tiled ≡ untiled). *)
val max_abs_diff : matrix -> matrix -> float

(** MFLOP count of one N³ multiplication: 2·N³ / 10⁶. *)
val mflop_count : int -> float
