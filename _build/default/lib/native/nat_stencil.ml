type grid = { n : int; ld : int; data : float array }

let create ?ld n =
  let ld = match ld with Some l -> max l n | None -> n in
  { n; ld; data = Array.make (ld * n) 0.0 }

let random_fill ~seed g =
  let state = ref (seed lor 1) in
  for i = 0 to Array.length g.data - 1 do
    state := (!state * 1103515245) + 12345;
    g.data.(i) <- float_of_int (!state land 0xFFFF) /. 65536.0
  done

let get g i j = g.data.(i + (g.ld * j))

let jacobi_sweep ~src ~dst =
  let n = src.n in
  if dst.n <> n then invalid_arg "Nat_stencil.jacobi_sweep: size mismatch";
  let s = src.data and d = dst.data in
  let ls = src.ld and ldst = dst.ld in
  for j = 1 to n - 2 do
    let c = ls * j and cd = ldst * j in
    for i = 1 to n - 2 do
      d.(i + cd) <-
        0.25 *. (s.(i - 1 + c) +. s.(i + 1 + c) +. s.(i + c - ls) +. s.(i + c + ls))
    done
  done

let jacobi ~steps ~a ~b =
  for _ = 1 to steps do
    jacobi_sweep ~src:b ~dst:a;
    (* copy back *)
    let n = a.n in
    for j = 1 to n - 2 do
      let ca = a.ld * j and cb = b.ld * j in
      for i = 1 to n - 2 do
        b.data.(i + cb) <- a.data.(i + ca)
      done
    done
  done

(* EXPL-style second and third nests (Livermore 18's 76 and 77): nest A
   updates ZU/ZV from ZA/ZB/ZZ/ZR stencils; nest B integrates ZR/ZZ from
   ZU/ZV. *)
let nest76 ~za ~zb ~zu ~zv ~zr ~zz k =
  let n = za.n in
  let l = za.ld in
  let c = l * k and cm = l * (k - 1) and cp = l * (k + 1) in
  for j = 1 to n - 2 do
    zu.data.(j + c) <-
      zu.data.(j + c)
      +. 0.1
         *. ((za.data.(j + c) *. (zz.data.(j + c) -. zz.data.(j + 1 + c)))
            -. (za.data.(j - 1 + c) *. (zz.data.(j + c) -. zz.data.(j - 1 + c)))
            -. (zb.data.(j + c) *. (zz.data.(j + c) -. zz.data.(j + cm)))
            +. (zb.data.(j + cp) *. (zz.data.(j + c) -. zz.data.(j + cp))));
    zv.data.(j + c) <-
      zv.data.(j + c)
      +. 0.1
         *. ((za.data.(j + c) *. (zr.data.(j + c) -. zr.data.(j + 1 + c)))
            -. (za.data.(j - 1 + c) *. (zr.data.(j + c) -. zr.data.(j - 1 + c)))
            -. (zb.data.(j + c) *. (zr.data.(j + c) -. zr.data.(j + cm)))
            +. (zb.data.(j + cp) *. (zr.data.(j + c) -. zr.data.(j + cp))))
  done

let nest77 ~zu ~zv ~zr ~zz k =
  let n = zu.n in
  let l = zu.ld in
  let c = l * k in
  for j = 1 to n - 2 do
    zr.data.(j + c) <- zr.data.(j + c) +. (0.05 *. zu.data.(j + c));
    zz.data.(j + c) <- zz.data.(j + c) +. (0.05 *. zv.data.(j + c))
  done

let expl_separate ~za ~zb ~zu ~zv ~zr ~zz =
  let n = za.n in
  for k = 1 to n - 2 do
    nest76 ~za ~zb ~zu ~zv ~zr ~zz k
  done;
  for k = 1 to n - 2 do
    nest77 ~zu ~zv ~zr ~zz k
  done

(* Fused with an alignment shift of one column: at iteration k we run
   nest76(k) then nest77(k-1), so nest77 never consumes a ZU/ZV column
   before nest76 has produced it — and nest76(k) reads ZR/ZZ columns
   k-1..k+1, all still untouched by nest77 at that point except k-1...
   nest77(k-1) writes ZR/ZZ at k-1 AFTER nest76(k) read them: the values
   nest76 sees match the separate version only for columns >= k, so the
   shift must be 2 to be exactly equivalent.  We use shift 2 plus
   epilogue iterations. *)
let expl_fused ~za ~zb ~zu ~zv ~zr ~zz =
  let n = za.n in
  let shift = 2 in
  for k = 1 to n - 2 + shift do
    if k <= n - 2 then nest76 ~za ~zb ~zu ~zv ~zr ~zz k;
    let k' = k - shift in
    if k' >= 1 && k' <= n - 2 then nest77 ~zu ~zv ~zr ~zz k'
  done

let checksum g =
  let acc = ref 0.0 in
  let n = g.n in
  for j = 1 to n - 2 do
    let c = g.ld * j in
    for i = 1 to n - 2 do
      acc := !acc +. g.data.(i + c)
    done
  done;
  !acc
