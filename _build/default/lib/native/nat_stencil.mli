(** Native 2D stencil kernels (Jacobi and the EXPL update) on column-major
    flat arrays, used by the Bechamel benches to show real-hardware
    effects of padding and fusion, and by tests to cross-check the
    simulator's reference counting. *)

type grid = { n : int; ld : int; data : float array }
(** [ld] is the leading (column) dimension; [ld > n] realizes
    intra-variable padding on real hardware. *)

val create : ?ld:int -> int -> grid

val random_fill : seed:int -> grid -> unit

val get : grid -> int -> int -> float

(** One Jacobi sweep from [src] into [dst] (interior points). *)
val jacobi_sweep : src:grid -> dst:grid -> unit

(** Jacobi with copy-back, [steps] times. *)
val jacobi : steps:int -> a:grid -> b:grid -> unit

(** The two separate EXPL-style update nests... [expl_separate] runs the
    ZU/ZV-style update then the ZR/ZZ-style update as two sweeps;
    [expl_fused] runs them fused with an alignment shift of one column —
    the transformation Figure 12 studies. *)
val expl_separate : za:grid -> zb:grid -> zu:grid -> zv:grid -> zr:grid -> zz:grid -> unit

val expl_fused : za:grid -> zb:grid -> zu:grid -> zv:grid -> zr:grid -> zz:grid -> unit

(** Sum of a grid's interior (to keep results observable and prevent
    dead-code elimination in benches). *)
val checksum : grid -> float
