test/test_analysis.ml: Alcotest Build Expr Layout List Locality Mlc_analysis Mlc_ir Mlc_kernels Program Ref_ String
