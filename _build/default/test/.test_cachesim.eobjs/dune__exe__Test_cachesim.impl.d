test/test_cachesim.ml: Alcotest Gen List Mlc_cachesim QCheck QCheck_alcotest
