test/test_codegen.ml: Alcotest Build Filename In_channel Interp Layout List Locality Mlc_codegen Mlc_frontend Mlc_ir Mlc_kernels Option Pretty Printf QCheck QCheck_alcotest String Sys Unix
