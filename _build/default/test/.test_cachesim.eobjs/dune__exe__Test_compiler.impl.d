test/test_compiler.ml: Alcotest Array Interp Layout List Locality Mlc_cachesim Mlc_ir Mlc_kernels Nest Printf Program String
