test/test_extensions.ml: Alcotest Array Build Interp Layout List Locality Mlc_cachesim Mlc_ir Mlc_kernels Mlc_native Nest Printf Program Validate
