test/test_frontend.ml: Alcotest Array Array_decl Interp Layout List Locality Mlc_cachesim Mlc_frontend Mlc_ir Mlc_kernels Nest Printf Program Stmt String
