test/test_integration.ml: Alcotest Interp Layout List Locality Mlc_cachesim Mlc_ir Mlc_kernels Printf Program
