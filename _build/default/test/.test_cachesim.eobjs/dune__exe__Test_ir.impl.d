test/test_ir.ml: Alcotest Array_decl Expr Format Interp Layout List Loop Mlc_cachesim Mlc_ir Nest Program QCheck QCheck_alcotest Ref_ Stmt Subscript Validate
