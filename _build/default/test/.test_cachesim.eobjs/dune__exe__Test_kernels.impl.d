test/test_kernels.ml: Alcotest Format Interp Layout List Locality Mlc_ir Mlc_kernels Nest Program String Validate
