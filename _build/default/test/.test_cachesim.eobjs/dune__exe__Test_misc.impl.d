test/test_misc.ml: Alcotest Array_decl Expr Layout List Locality Mlc_cachesim Mlc_ir Mlc_kernels Pretty Program Subscript
