test/test_miss_predict.ml: Alcotest Build Interp Layout List Locality Mlc_analysis Mlc_cachesim Mlc_ir Mlc_kernels Printf Program
