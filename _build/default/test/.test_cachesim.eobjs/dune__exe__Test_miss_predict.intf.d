test/test_miss_predict.mli:
