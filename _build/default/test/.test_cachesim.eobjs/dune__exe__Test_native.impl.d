test/test_native.ml: Alcotest Array List Mlc_native Printf QCheck QCheck_alcotest
