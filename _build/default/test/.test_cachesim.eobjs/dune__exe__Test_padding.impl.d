test/test_padding.ml: Alcotest Array_decl Layout List Locality Mlc_analysis Mlc_cachesim Mlc_ir Mlc_kernels QCheck QCheck_alcotest
