test/test_padding.mli:
