test/test_properties.ml: Alcotest Array Array_decl Build Expr Gen Interp Layout List Locality Mlc_analysis Mlc_cachesim Mlc_ir Mlc_kernels Nest Printf Program QCheck QCheck_alcotest Ref_
