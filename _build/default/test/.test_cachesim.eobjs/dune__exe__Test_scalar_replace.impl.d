test/test_scalar_replace.ml: Alcotest Build Interp List Locality Loop Mlc_cachesim Mlc_ir Mlc_kernels Nest Printf Program Ref_
