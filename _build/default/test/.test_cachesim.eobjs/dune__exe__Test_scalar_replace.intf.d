test/test_scalar_replace.mli:
