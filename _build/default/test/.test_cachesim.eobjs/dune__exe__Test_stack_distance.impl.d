test/test_stack_distance.ml: Alcotest Array Gen List Mlc_cachesim Mlc_ir Mlc_kernels QCheck QCheck_alcotest
