test/test_stack_distance.mli:
