test/test_transform.ml: Alcotest Array Build Expr Interp Layout List Locality Mlc_analysis Mlc_cachesim Mlc_ir Mlc_kernels Nest Printf Program QCheck QCheck_alcotest String Validate
