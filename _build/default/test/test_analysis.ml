(* Tests for reuse analysis, the arc (layout-diagram) model, dependences,
   and the Section 4 fusion accounting — including the paper's own
   worked numbers. *)

open Mlc_ir
module An = Mlc_analysis
module K = Mlc_kernels

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* A fixture mirroring Figure 2 under the paper's diagram geometry: the
   cache is "slightly more than double the common column size", and array
   sizes are multiples of the L1 cache size so all base addresses
   coincide.  N = 960: column 7680B vs a 16K L1 (2.13 columns), and
   960²·8 = 450·16384. *)
let n_fig = 960

let fig2 = K.Paper_examples.figure2 n_fig

let fig6 = K.Paper_examples.figure6_fused n_fig

let l1_size = 16 * 1024

let l1_line = 32

let _l2_size = 512 * 1024

(* --- Ref_group ---------------------------------------------------------- *)

let test_groups_fig2 () =
  let layout = Layout.initial fig2 in
  let nest1 = List.hd fig2.Program.nests in
  let groups = An.Ref_group.of_nest layout nest1 in
  check_int "three groups (A,B,C)" 3 (List.length groups);
  List.iter
    (fun g ->
      check_int ("two members in " ^ g.An.Ref_group.array) 2
        (List.length g.An.Ref_group.members);
      Alcotest.(check (list int))
        "offsets are 0 and one column"
        [ 0; n_fig * 8 ]
        (An.Ref_group.distinct_offsets g))
    groups

let test_group_not_uniform () =
  let layout = Layout.initial fig2 in
  let refs =
    [
      Ref_.read_a "A" [ Expr.var "i"; Expr.var "j" ];
      Ref_.read_a "A" [ Expr.var "j"; Expr.var "i" ];
    ]
  in
  let groups = An.Ref_group.of_refs layout refs in
  check_int "transposed refs split" 2 (List.length groups)

(* --- Reuse -------------------------------------------------------------- *)

let test_reuse_figure1 () =
  let p = K.Paper_examples.figure1 ~n:64 ~m:64 in
  let layout = Layout.initial p in
  let nest = List.hd p.Program.nests in
  let reuses = An.Reuse.of_nest layout ~line:32 nest in
  (* B(j) is self-temporal on i (invariant) and self-spatial on j;
     A(j,i) is self-spatial on j. *)
  let has ref_index var kind_match =
    List.exists
      (fun r ->
        r.An.Reuse.ref_index = ref_index && r.An.Reuse.loop_var = var
        && kind_match r.An.Reuse.kind)
      reuses
  in
  (* body order: read A, write B *)
  check_bool "A self-spatial on j" true
    (has 0 "j" (function An.Reuse.Self_spatial -> true | _ -> false));
  check_bool "B self-temporal on i" true
    (has 1 "i" (function An.Reuse.Self_temporal -> true | _ -> false));
  check_bool "B self-spatial on j" true
    (has 1 "j" (function An.Reuse.Self_spatial -> true | _ -> false));
  check_bool "A no temporal on i" false
    (has 0 "i" (function An.Reuse.Self_temporal -> true | _ -> false))

let test_group_temporal_detected () =
  let layout = Layout.initial fig2 in
  let nest1 = List.hd fig2.Program.nests in
  let reuses = An.Reuse.of_nest layout ~line:32 nest1 in
  (* A(i,j) reuses A(i,j+1)'s data one j-iteration later *)
  check_bool "group-temporal A on j" true
    (List.exists
       (fun r ->
         r.An.Reuse.ref_index = 0 && r.An.Reuse.loop_var = "j"
         &&
         match r.An.Reuse.kind with
         | An.Reuse.Group_temporal { iterations_apart = 1; _ } -> true
         | _ -> false)
       reuses)

(* --- Arcs: severe conflicts and the Figure 3/4 story -------------------- *)

let test_packed_layout_conflicts () =
  (* With arrays multiples of the cache size, all bases coincide on the
     cache: severe conflicts between different arrays. *)
  let layout = Layout.initial fig2 in
  let nest1 = List.hd fig2.Program.nests in
  let conflicts =
    An.Arcs.severe_conflicts layout ~size:l1_size ~line:l1_line nest1
  in
  check_bool "severe conflicts exist" true (conflicts <> [])

let test_arcs_of_fig2 () =
  let layout = Layout.initial fig2 in
  check_int "nest1 has 3 arcs" 3
    (List.length (An.Arcs.arcs layout (List.nth fig2.Program.nests 0)));
  (* nest 2: B has offsets 0,N,2N -> 2 arcs; C single ref -> none *)
  check_int "nest2 has 2 arcs" 2
    (List.length (An.Arcs.arcs layout (List.nth fig2.Program.nests 1)));
  (* five arcs total, as in Figure 3's five arcs *)
  check_int "fused nest has 4 arcs" 4
    (List.length (An.Arcs.arcs layout (List.hd fig6.Program.nests)))

let test_arc_preservation_geometry () =
  (* Hand-built dots: arc of span 100 on a 1000-byte cache. *)
  let mk i pos = { An.Arcs.ref_index = i; ref_ = Ref_.read_a "X" []; address = pos; position = pos } in
  let arc = { An.Arcs.array = "X"; trailing = 0; leading = 1; span = 100 } in
  let dots_clear = [ mk 0 200; mk 1 300; mk 2 500 ] in
  check_bool "no dot under arc" true (An.Arcs.arc_preserved dots_clear ~size:1000 arc);
  let dots_blocked = [ mk 0 200; mk 1 300; mk 2 250 ] in
  check_bool "dot under arc kills" false
    (An.Arcs.arc_preserved dots_blocked ~size:1000 arc);
  (* wrap-around interval *)
  let arc_wrap = { An.Arcs.array = "X"; trailing = 0; leading = 1; span = 150 } in
  let dots_wrap = [ mk 0 950; mk 1 100; mk 2 20 ] in
  check_bool "wrapped interval checked" false
    (An.Arcs.arc_preserved dots_wrap ~size:1000 arc_wrap);
  (* span >= cache never preserved *)
  let arc_big = { An.Arcs.array = "X"; trailing = 0; leading = 1; span = 1000 } in
  check_bool "span >= size impossible" false
    (An.Arcs.arc_preserved dots_clear ~size:1000 arc_big)

(* Figure 4: GROUPPAD preserves only B's reuse in nest 1 when the cache
   fits two columns plus change but not three; the paper notes the L1
   "lacks the capacity to preserve all group reuse in the first loop (as
   this would require a cache size three times the column size)". *)
let test_capacity_argument () =
  (* three arcs of span = column; cache = 2.5 columns: at most 2 arcs can
     be simultaneously preserved *)
  let col = 4096 in
  let size = col * 5 / 2 in
  let mk i pos = { An.Arcs.ref_index = i; ref_ = Ref_.read_a "X" []; address = pos; position = pos mod size } in
  let arcs =
    [
      { An.Arcs.array = "A"; trailing = 0; leading = 1; span = col };
      { An.Arcs.array = "B"; trailing = 2; leading = 3; span = col };
      { An.Arcs.array = "C"; trailing = 4; leading = 5; span = col };
    ]
  in
  (* try to spread three arcs: trailing positions 0, col, 2*col *)
  let dots =
    [ mk 0 0; mk 1 col; mk 2 col; mk 3 (2 * col); mk 4 (2 * col); mk 5 (3 * col) ]
  in
  let preserved =
    List.length (List.filter (An.Arcs.arc_preserved dots ~size) arcs)
  in
  check_bool "at most two of three arcs fit" true (preserved <= 2)

(* --- Dependence --------------------------------------------------------- *)

let test_dependence_distance () =
  let r1 = Ref_.read_a "A" [ Expr.var "i"; Expr.var "j" ] in
  let r2 = Ref_.write_a "A" [ Expr.var "i"; Expr.add (Expr.var "j") (Expr.const 1) ] in
  (match An.Dependence.between r1 r2 with
  | An.Dependence.Distance ds ->
      check_int "distance j" (-1) (List.assoc "j" ds)
  | _ -> Alcotest.fail "expected distance");
  let r3 = Ref_.read_a "A" [ Expr.const 0; Expr.var "j" ] in
  let r4 = Ref_.read_a "A" [ Expr.const 1; Expr.var "j" ] in
  (match An.Dependence.between r3 r4 with
  | An.Dependence.Independent -> ()
  | _ -> Alcotest.fail "expected independent");
  let r5 = Ref_.read_a "B" [ Expr.var "i" ] in
  (match An.Dependence.between r1 r5 with
  | An.Dependence.Independent -> ()
  | _ -> Alcotest.fail "different arrays independent")

let stencil_nests n =
  (* nest1 writes W(i,j); nest2 reads W(i,j-1): flow dep distance +1 on j *)
  let open Build in
  let wa = arr "W" [ n; n ] and x = arr "X" [ n; n ] in
  let i = v "i" and j = v "j" in
  let n1 =
    nest [ loop "j" 1 (n - 2); loop "i" 0 (n - 1) ]
      [ asn (w "W" [ i; j ]) [ r "X" [ i; j ] ] ]
  in
  let n2 =
    nest [ loop "j" 1 (n - 2); loop "i" 0 (n - 1) ]
      [ asn (w "X" [ i; j ]) [ r "W" [ i; j -! 1 ] ] ]
  in
  (Program.make "stencil" [ wa; x ] [ n1; n2 ], n1, n2)

let test_fusion_legality () =
  let _, n1, n2 = stencil_nests 16 in
  (* W(i,j) written at j, read at j+1 by nest2 (its j-1 = nest1's j):
     distance +1 -> direct fusion legal *)
  check_bool "legal at shift 0" true (An.Dependence.fusion_legal ~shift:0 n1 n2);
  (* reversed direction: nest2 reading W(i,j+1) needs a shift *)
  let open Build in
  let i = v "i" and j = v "j" in
  let n2' =
    nest [ loop "j" 1 13; loop "i" 0 15 ]
      [ asn (w "X" [ i; j ]) [ r "W" [ i; j +! 1 ] ] ]
  in
  let n1' =
    nest [ loop "j" 1 13; loop "i" 0 15 ]
      [ asn (w "W" [ i; j ]) [ r "X" [ i; j -! 1 ] ] ]
  in
  check_bool "illegal at shift 0" false (An.Dependence.fusion_legal ~shift:0 n1' n2');
  check_bool "legal at shift 1" true (An.Dependence.fusion_legal ~shift:1 n1' n2');
  Alcotest.(check (option int)) "min shift" (Some 1)
    (An.Dependence.min_legal_shift n1' n2')

let test_permutation_legality () =
  let open Build in
  let n = 8 in
  let a = arr "A" [ n; n ] in
  ignore a;
  let i = v "i" and j = v "j" in
  (* A(i,j) = A(i-1,j+1): distance (i:+1, j:-1); swapping loops flips the
     lex sign -> illegal *)
  let nest_skewed =
    nest [ loop "i" 1 (n - 1); loop "j" 0 (n - 2) ]
      [ asn (w "A" [ i; j ]) [ r "A" [ i -! 1; j +! 1 ] ] ]
  in
  check_bool "interchange illegal" false
    (An.Dependence.permutation_legal nest_skewed [ "j"; "i" ]);
  check_bool "identity legal" true
    (An.Dependence.permutation_legal nest_skewed [ "i"; "j" ]);
  (* pure stencil read/write with distance (0,+1) permutes fine *)
  let nest_ok =
    nest [ loop "i" 0 (n - 1); loop "j" 1 (n - 1) ]
      [ asn (w "A" [ i; j ]) [ r "A" [ i; j -! 1 ] ] ]
  in
  check_bool "interchange legal" true
    (An.Dependence.permutation_legal nest_ok [ "j"; "i" ])

let test_permutation_star_reduction () =
  (* matmul: C(i,j) updated across k -> '*' on k, zeros elsewhere; any
     permutation is legal *)
  let p = Locality.Tiling.matmul 8 in
  let nest = List.hd p.Program.nests in
  List.iter
    (fun order ->
      check_bool (String.concat "" order) true
        (An.Dependence.permutation_legal nest order))
    [ [ "J"; "K"; "I" ]; [ "I"; "J"; "K" ]; [ "K"; "I"; "J" ] ]

let test_permutation_star_blocks_unsound () =
  (* S(i) written under (i,j) nests with another '*' var in front:
     vector ('*' on j only when S(i) vs S(i)) — here S(0) scalar-like
     ref under two loops: '*' on both -> only identity-ish orders pass *)
  let open Build in
  let s = arr "S" [ 4 ] in
  ignore s;
  let nest_scalar =
    nest [ loop "i" 0 3; loop "j" 0 3 ]
      [ asn (w "S" [ c 0 ]) [ r "S" [ c 0 ] ] ]
  in
  check_bool "two-star dep blocks interchange" false
    (An.Dependence.permutation_legal nest_scalar [ "j"; "i" ])

(* --- Fusion model: the paper's Section 4 numbers ------------------------ *)

(* Under GROUPPAD, Figure 4's layout preserves B's arcs on L1 but not A's
   and C's.  We reproduce the classification counts the paper derives:
   original: 5 memory refs + 2 L2 refs; fused: 3 memory refs + 3 L2 refs. *)
let grouppad_layout () =
  let layout = Layout.initial fig2 in
  Locality.Grouppad.apply ~size:l1_size ~line:l1_line fig2 layout

let test_section4_original_counts () =
  let layout = grouppad_layout () in
  let counts =
    An.Fusion_model.count layout ~l1_size fig2.Program.nests
  in
  check_int "memory refs" 5 counts.An.Fusion_model.memory_refs;
  check_int "l2 refs" 2 counts.An.Fusion_model.l2_refs;
  check_int "l1 hits" 3 counts.An.Fusion_model.l1_hits

let test_section4_fused_counts () =
  (* Apply GROUPPAD to the fused program, as the paper does (Figure 7). *)
  let layout =
    Locality.Grouppad.apply ~size:l1_size ~line:l1_line fig6 (Layout.initial fig6)
  in
  let counts = An.Fusion_model.count layout ~l1_size fig6.Program.nests in
  check_int "memory refs" 3 counts.An.Fusion_model.memory_refs;
  check_int "l2 refs" 3 counts.An.Fusion_model.l2_refs;
  check_int "l1 hits" 1 counts.An.Fusion_model.l1_hits;
  check_int "register refs" 3 counts.An.Fusion_model.register

let test_fusion_profitability_weighting () =
  let layout = grouppad_layout () in
  let layout_fused =
    Locality.Grouppad.apply ~size:l1_size ~line:l1_line fig6 (Layout.initial fig6)
  in
  let before = An.Fusion_model.count layout ~l1_size fig2.Program.nests in
  let after = An.Fusion_model.count layout_fused ~l1_size fig6.Program.nests in
  (* Memory misses cost much more than L2 hits: fusion wins (5*mem + 2*l2
     vs 3*mem + 3*l2). *)
  let cost = An.Fusion_model.miss_cost ~l2_cost:6.0 ~memory_cost:50.0 in
  check_bool "fusion profitable at realistic costs" true (cost after < cost before);
  (* If L2 misses were nearly free and L1 misses everything, fusion's L1
     loss shows: 2 -> 3 L2 refs *)
  let cost_l1 = An.Fusion_model.miss_cost ~l2_cost:50.0 ~memory_cost:51.0 in
  check_bool "l1-heavy costs penalize fusion less clearly" true
    (cost_l1 after < cost_l1 before
    || after.An.Fusion_model.l2_refs > before.An.Fusion_model.l2_refs)

(* --- Diagram -------------------------------------------------------------- *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

let test_diagram_renders () =
  (* Under GROUPPAD at the Figure 4 geometry only one of the three
     first-nest arcs survives: the rendering must show both outcomes. *)
  let layout = grouppad_layout () in
  let nest1 = List.hd fig2.Program.nests in
  let out = An.Diagram.render layout ~size:l1_size ~line:l1_line nest1 in
  check_bool "has a cache box" true
    (String.split_on_char '\n' out
    |> List.exists (fun l -> String.length l > 0 && String.contains l '|'));
  check_bool "mentions the cache size" true (contains out "16384");
  check_bool "some arc preserved" true (contains out "PRESERVED");
  check_bool "some arc lost" true (contains out "lost");
  check_bool "no severe conflicts under GROUPPAD" true
    (contains out "severe conflicts: 0");
  (* program rendering covers every nest *)
  let all = An.Diagram.render_program layout ~size:l1_size ~line:l1_line fig2 in
  check_bool "two nests rendered" true (contains all "nest 1:")

(* --- Miss model --------------------------------------------------------- *)

let test_miss_model_prefers_unit_stride () =
  let p = K.Paper_examples.figure1 ~n:256 ~m:256 in
  let layout = Layout.initial p in
  let nest = List.hd p.Program.nests in
  let cost_orig = An.Miss_model.nest_cost layout ~line:32 nest ~order:[ "j"; "i" ] in
  let cost_perm = An.Miss_model.nest_cost layout ~line:32 nest ~order:[ "i"; "j" ] in
  check_bool "permuted (j innermost) cheaper" true (cost_perm < cost_orig);
  Alcotest.(check (list string)) "best order" [ "i"; "j" ]
    (An.Miss_model.best_permutation layout ~line:32 nest)

let () =
  Alcotest.run "analysis"
    [
      ( "ref_group",
        [
          Alcotest.test_case "figure 2 groups" `Quick test_groups_fig2;
          Alcotest.test_case "non-uniform split" `Quick test_group_not_uniform;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "figure 1 classification" `Quick test_reuse_figure1;
          Alcotest.test_case "group-temporal" `Quick test_group_temporal_detected;
        ] );
      ( "arcs",
        [
          Alcotest.test_case "packed layout conflicts" `Quick test_packed_layout_conflicts;
          Alcotest.test_case "figure 2 arcs" `Quick test_arcs_of_fig2;
          Alcotest.test_case "preservation geometry" `Quick test_arc_preservation_geometry;
          Alcotest.test_case "capacity bound" `Quick test_capacity_argument;
        ] );
      ( "dependence",
        [
          Alcotest.test_case "distances" `Quick test_dependence_distance;
          Alcotest.test_case "fusion legality" `Quick test_fusion_legality;
          Alcotest.test_case "permutation legality" `Quick test_permutation_legality;
          Alcotest.test_case "reduction star" `Quick test_permutation_star_reduction;
          Alcotest.test_case "double star blocked" `Quick test_permutation_star_blocks_unsound;
        ] );
      ( "fusion_model",
        [
          Alcotest.test_case "original 5 memory + 2 L2" `Quick test_section4_original_counts;
          Alcotest.test_case "fused 3 memory + 3 L2" `Quick test_section4_fused_counts;
          Alcotest.test_case "profitability weighting" `Quick test_fusion_profitability_weighting;
        ] );
      ( "diagram",
        [ Alcotest.test_case "renders" `Quick test_diagram_renders ] );
      ( "miss_model",
        [ Alcotest.test_case "prefers unit stride" `Quick test_miss_model_prefers_unit_stride ] );
    ]
