(* Pretty-printer round trips through the parser, and the C code
   generator produces programs that gcc compiles and runs. *)

open Mlc_ir
module K = Mlc_kernels
module F = Mlc_frontend
module L = Locality

let check_bool = Alcotest.(check bool)

let roundtrip p =
  let src = Pretty.program p in
  match F.Parser.parse src with
  | parsed ->
      let l1 = Layout.initial p and l2 = Layout.initial parsed in
      Interp.trace l1 p = Interp.trace l2 parsed
  | exception F.Parser.Error (msg, line, col) ->
      Alcotest.failf "reparse failed at %d:%d: %s\nsource:\n%s" line col msg src

let test_pretty_roundtrip_kernels () =
  List.iter
    (fun (label, p) ->
      check_bool (label ^ " round-trips") true (roundtrip p))
    [
      ("jacobi", K.Livermore.jacobi 24);
      ("adi", K.Livermore.adi 16);
      ("expl", K.Livermore.expl 16);
      ("shal", K.Livermore.shal ~time_steps:2 12);
      ("linpackd", K.Livermore.linpackd 10);
      ("matmul", L.Tiling.matmul 8);
    ]

let prop_pretty_roundtrip_random =
  QCheck.Test.make ~name:"pretty/parse round-trip on random stencils" ~count:50
    QCheck.(triple (int_range 6 20) (int_range 0 2) (int_range 0 2))
    (fun (n, o1, o2) ->
      let open Build in
      let a = arr "A" [ n + 4; n + 4 ] and b = arr "B" [ n + 4; n + 4 ] in
      let i = v "i" and j = v "j" in
      let p =
        program "rand" [ a; b ]
          [
            nest
              [ loop "j" 2 (n + 1); loop "i" 2 (n + 1) ]
              [
                asn (w "A" [ i; j ])
                  [ r "B" [ i +! o1; j -! o2 ]; r "B" [ i -! 1; j ]; r "A" [ i; j ] ];
              ];
          ]
      in
      roundtrip p)

(* --- C codegen -------------------------------------------------------------- *)

let compile_and_run c_source =
  let dir = Filename.temp_file "mlc_cg" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let c_path = Filename.concat dir "prog.c" in
  let exe_path = Filename.concat dir "prog" in
  let oc = open_out c_path in
  output_string oc c_source;
  close_out oc;
  let compile =
    Printf.sprintf "gcc -O1 -o %s %s 2> %s/gcc.log" exe_path c_path dir
  in
  if Sys.command compile <> 0 then begin
    let log = In_channel.with_open_text (dir ^ "/gcc.log") In_channel.input_all in
    Alcotest.failf "gcc failed:\n%s" log
  end;
  let out_path = Filename.concat dir "out.txt" in
  if Sys.command (Printf.sprintf "%s > %s" exe_path out_path) <> 0 then
    Alcotest.fail "generated program crashed";
  In_channel.with_open_text out_path In_channel.input_all

let test_codegen_compiles_and_runs () =
  let p = K.Livermore.jacobi 64 in
  let layout = Layout.initial p in
  let out = compile_and_run (Mlc_codegen.Codegen_c.emit ~repeat:2 layout p) in
  check_bool "prints checksum" true
    (String.length out > 0 && String.sub out 0 8 = "checksum");
  check_bool "prints seconds" true
    (String.split_on_char '\n' out
    |> List.exists (fun l -> String.length l > 7 && String.sub l 0 7 = "seconds"))

let test_codegen_respects_padding () =
  (* the padded layout grows the heap by exactly the pads *)
  let p = K.Paper_examples.figure2 64 in
  let packed = Layout.initial p in
  let padded = L.Pad.apply ~size:(16 * 1024) ~line:32 p packed in
  let src_packed = Mlc_codegen.Codegen_c.emit packed p in
  let src_padded = Mlc_codegen.Codegen_c.emit padded p in
  let heap_size src =
    (* first line with mlc_heap[<N>UL] *)
    String.split_on_char '\n' src
    |> List.find_map (fun l ->
           match String.index_opt l '[' with
           | Some i when String.length l > 12 && String.sub l 0 6 = "static" ->
               let j = String.index_from l i 'U' in
               Some (int_of_string (String.sub l (i + 1) (j - i - 1)))
           | _ -> None)
    |> Option.get
  in
  check_bool "padded heap larger" true (heap_size src_padded > heap_size src_packed);
  (* and both run *)
  ignore (compile_and_run src_packed);
  ignore (compile_and_run src_padded)

let test_codegen_gather_and_int () =
  (* BUK exercises int arrays and gather tables *)
  let p = K.Nas.buk ~buckets:32 500 in
  let layout = Layout.initial p in
  let src = Mlc_codegen.Codegen_c.emit layout p in
  check_bool "emits a table" true
    (let needle = "mlc_table_0" in
     let n = String.length src and m = String.length needle in
     let rec go i = i + m <= n && (String.sub src i m = needle || go (i + 1)) in
     go 0);
  ignore (compile_and_run src)

let test_codegen_tiled_clamps () =
  (* tiled matmul has hi_min clamps; the generated loops must respect
     them (no out-of-bounds writes => no crash with fortify) *)
  let p = L.Tiling.tiled_matmul ~n:20 ~h:6 ~w:7 in
  let layout = Layout.initial p in
  ignore (compile_and_run (Mlc_codegen.Codegen_c.emit layout p))

(* --- F77 codegen -------------------------------------------------------------- *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

let test_f77_structure () =
  let p = K.Paper_examples.figure2 64 in
  let layout = L.Pad.apply ~size:(16 * 1024) ~line:32 p (Layout.initial p) in
  let src = Mlc_codegen.Codegen_f77.emit layout p in
  check_bool "has PROGRAM" true (contains src "PROGRAM MLCGEN");
  check_bool "declares arrays" true (contains src "DOUBLE PRECISION A(64,64)");
  check_bool "realizes pads as PAD arrays" true (contains src "MLCPD");
  check_bool "one COMMON block" true (contains src "COMMON /MLC/");
  check_bool "prints checksum" true (contains src "PRINT *, 'checksum'");
  (* fixed form: no line beyond column 72 *)
  check_bool "fixed-form width respected" true
    (String.split_on_char '\n' src |> List.for_all (fun l -> String.length l <= 72));
  (* every DO is closed *)
  let count needle =
    String.split_on_char '\n' src
    |> List.filter (fun l -> contains l needle)
    |> List.length
  in
  check_bool "DOs balanced with ENDDOs" true (count "DO " >= count "ENDDO")

let test_f77_intra_pad_leading_dimension () =
  let p = K.Livermore.erle 64 in
  let layout =
    Locality.Intra_pad.apply ~size:(16 * 1024) ~line:32 p (Layout.initial p)
  in
  let src = Mlc_codegen.Codegen_f77.emit layout p in
  (* column padding shows up as a padded leading dimension *)
  let pad = Layout.intra_pad layout "F" in
  check_bool "some intra pad present" true (pad > 0);
  check_bool "padded leading dimension emitted" true
    (contains src (Printf.sprintf "F(%d,64,64)" (64 + pad)))

let test_f77_gather_tables () =
  let p = K.Nas.buk ~buckets:16 64 in
  let layout = Layout.initial p in
  let src = Mlc_codegen.Codegen_f77.emit layout p in
  check_bool "table declared" true (contains src "INTEGER MLCTB0");
  check_bool "data statement" true (contains src "DATA (MLCTB0(MLCI)");
  (* and big tables are rejected *)
  match Mlc_codegen.Codegen_f77.emit ~max_table:8 layout p with
  | exception Mlc_codegen.Codegen_f77.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for oversized table"

let () =
  Alcotest.run "codegen"
    [
      ( "pretty",
        [
          Alcotest.test_case "kernel round-trips" `Quick test_pretty_roundtrip_kernels;
          QCheck_alcotest.to_alcotest prop_pretty_roundtrip_random;
        ] );
      ( "c",
        [
          Alcotest.test_case "compiles and runs" `Quick test_codegen_compiles_and_runs;
          Alcotest.test_case "respects padding" `Quick test_codegen_respects_padding;
          Alcotest.test_case "gather and int arrays" `Quick test_codegen_gather_and_int;
          Alcotest.test_case "tiled clamps" `Quick test_codegen_tiled_clamps;
        ] );
      ( "f77",
        [
          Alcotest.test_case "structure" `Quick test_f77_structure;
          Alcotest.test_case "intra-pad leading dimension" `Quick
            test_f77_intra_pad_leading_dimension;
          Alcotest.test_case "gather tables" `Quick test_f77_gather_tables;
        ] );
    ]
