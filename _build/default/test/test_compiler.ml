(* The combined pipeline: never illegal, decisions logged, and on the
   kernel suite it never loses to the untouched program by more than
   noise while winning clearly on the conflict-ridden ones. *)

open Mlc_ir
module Cs = Mlc_cachesim
module K = Mlc_kernels
module L = Locality

let machine = Cs.Machine.ultrasparc

let check_bool = Alcotest.(check bool)

let cycles layout p = (Interp.run machine layout p).Interp.cycles

let test_never_hurts_kernel_suite () =
  List.iter
    (fun (label, p) ->
      let r = L.Compiler.optimize machine p in
      let before = cycles (Layout.initial p) p in
      let after = cycles r.L.Compiler.layout r.L.Compiler.program in
      check_bool
        (Printf.sprintf "%s: %.3e -> %.3e" label before after)
        true
        (after <= before *. 1.02))
    [
      ("jacobi", K.Livermore.jacobi 200);
      ("expl", K.Livermore.expl 200);
      ("adi", K.Livermore.adi 200);
      ("shal", K.Livermore.shal 100);
      ("figure1", K.Paper_examples.figure1 ~n:200 ~m:200);
      ("figure2", K.Paper_examples.figure2 256);
      ("tomcatv", K.Spec.tomcatv 129);
    ]

let test_wins_big_on_conflicts () =
  let p = K.Paper_examples.figure2 256 in
  let r = L.Compiler.optimize machine p in
  let before = cycles (Layout.initial p) p in
  let after = cycles r.L.Compiler.layout r.L.Compiler.program in
  check_bool "at least 2x better on the colliding program" true
    (after *. 2.0 < before)

let test_permutes_figure1 () =
  (* figure 1's original loop order is memory-hostile; the pipeline must
     fix it *)
  let p = K.Paper_examples.figure1 ~n:128 ~m:128 in
  let r = L.Compiler.optimize machine p in
  let nest = List.hd r.L.Compiler.program.Program.nests in
  Alcotest.(check (list string)) "j innermost" [ "i"; "j" ] (Nest.vars nest);
  check_bool "logged" true
    (List.exists
       (fun l -> String.length l >= 8 && String.sub l 0 8 = "permuted")
       r.L.Compiler.log)

let test_fuses_figure2 () =
  let p = K.Paper_examples.figure2 960 in
  let r = L.Compiler.optimize machine p in
  Alcotest.(check int) "one nest after fusion" 1
    (List.length r.L.Compiler.program.Program.nests)

let test_accesses_preserved_without_scalar_replacement () =
  (* permutation + fusion + padding never change the multiset of array
     elements touched *)
  let p = K.Livermore.expl 64 in
  let r = L.Compiler.optimize machine p in
  let relative layout p =
    (* addresses relative to each array's base so layouts compare *)
    let t = Interp.trace layout p in
    Array.sort compare t;
    Array.length t
  in
  Alcotest.(check int) "same reference count"
    (relative (Layout.initial p) p)
    (relative r.L.Compiler.layout r.L.Compiler.program)

let test_options_disable_passes () =
  let p = K.Paper_examples.figure1 ~n:64 ~m:64 in
  let options =
    { L.Compiler.default_options with L.Compiler.permute = false; fuse = false }
  in
  let r = L.Compiler.optimize ~options machine p in
  let nest = List.hd r.L.Compiler.program.Program.nests in
  Alcotest.(check (list string)) "loop order untouched" [ "j"; "i" ] (Nest.vars nest)

let test_report_renders () =
  let out = L.Compiler.report machine (K.Livermore.jacobi 128) in
  check_bool "mentions improvement" true
    (let needle = "model-time improvement" in
     let n = String.length out and m = String.length needle in
     let rec go i = i + m <= n && (String.sub out i m = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "compiler"
    [
      ( "pipeline",
        [
          Alcotest.test_case "never hurts the suite" `Slow test_never_hurts_kernel_suite;
          Alcotest.test_case "wins big on conflicts" `Quick test_wins_big_on_conflicts;
          Alcotest.test_case "permutes figure 1" `Quick test_permutes_figure1;
          Alcotest.test_case "fuses figure 2" `Quick test_fuses_figure2;
          Alcotest.test_case "accesses preserved" `Quick
            test_accesses_preserved_without_scalar_replacement;
          Alcotest.test_case "options" `Quick test_options_disable_passes;
          Alcotest.test_case "report" `Quick test_report_renders;
        ] );
    ]
