(* Tests for the extension transformations: the unimodular framework
   (permutation/reversal/skewing as matrices), array transpose, loop
   distribution, time-step tiling, and the unrolled native matmul. *)

open Mlc_ir
module Cs = Mlc_cachesim
module K = Mlc_kernels
module L = Locality
module N = Mlc_native

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let sorted_trace layout p =
  let t = Interp.trace layout p in
  Array.sort compare t;
  t

(* --- Unimodular ---------------------------------------------------------- *)

let test_matrix_algebra () =
  let open L.Unimodular in
  let id = identity 3 in
  check_int "det id" 1 (determinant id);
  let p = permutation 3 [| 2; 0; 1 |] in
  check_int "det perm" 1 (abs (determinant p));
  let r = reversal 3 1 in
  check_int "det reversal" (-1) (determinant r);
  let s = skew 3 ~target:2 ~source:0 ~factor:5 in
  check_int "det skew" 1 (determinant s);
  let prod = multiply p (multiply r s) in
  check_int "det multiplicative" 1 (abs (determinant prod));
  let inv = inverse prod in
  let again = multiply prod inv in
  Alcotest.(check bool) "inverse" true (again = identity 3)

let test_unimodular_permutation_matches_permute () =
  let p = K.Paper_examples.figure1 ~n:8 ~m:8 in
  let nest = List.hd p.Program.nests in
  (* swap the two loops via the matrix framework *)
  let t = L.Unimodular.permutation 2 [| 1; 0 |] in
  let transformed = L.Unimodular.apply nest t in
  Alcotest.(check (list string)) "loop order swapped" [ "i"; "j" ]
    (Nest.vars transformed);
  let layout = Layout.initial p in
  let p' = Program.set_nest p 0 transformed in
  Alcotest.(check (array int)) "same accesses"
    (sorted_trace layout p) (sorted_trace layout p')

let test_unimodular_reversal () =
  let open Build in
  let a = arr "A" [ 8; 8 ] in
  let i = v "i" and j = v "j" in
  let n1 =
    nest [ loop "i" 0 7; loop "j" 0 7 ] [ asn (w "A" [ i; j ]) [ r "A" [ i; j ] ] ]
  in
  let p = program "rev" [ a ] [ n1 ] in
  let t = L.Unimodular.reversal 2 1 in
  let transformed = L.Unimodular.apply n1 t in
  let layout = Layout.initial p in
  let p' = Program.set_nest p 0 transformed in
  Alcotest.(check (array int)) "same multiset"
    (sorted_trace layout p) (sorted_trace layout p');
  (* per outer iteration the inner sweep must run backwards *)
  let tr = Interp.trace layout p' in
  check_bool "first access is column end" true (tr.(0) > tr.(2))

let test_unimodular_skew_wavefront () =
  (* A(i,j) = A(i-1,j+1) + A(i,j-1): the (1,-1) dependence forbids
     interchange, but skewing j by i turns it into (1,0), after which
     interchange is legal — the classic wavefront. *)
  let open Build in
  let a = arr "A" [ 20; 20 ] in
  let i = v "i" and j = v "j" in
  let n1 =
    nest [ loop "i" 1 8; loop "j" 1 8 ]
      [ asn (w "A" [ i; j ]) [ r "A" [ i -! 1; j +! 1 ]; r "A" [ i; j -! 1 ] ] ]
  in
  let p = program "wave" [ a ] [ n1 ] in
  let layout = Layout.initial p in
  (* direct interchange: illegal *)
  (match L.Unimodular.apply n1 (L.Unimodular.permutation 2 [| 1; 0 |]) with
  | exception L.Unimodular.Illegal _ -> ()
  | _ -> Alcotest.fail "interchange should be illegal");
  (* skew then interchange: legal, same accesses *)
  let t =
    L.Unimodular.multiply
      (L.Unimodular.permutation 2 [| 1; 0 |])
      (L.Unimodular.skew 2 ~target:1 ~source:0 ~factor:1)
  in
  let transformed = L.Unimodular.apply n1 t in
  let p' = Program.set_nest p 0 transformed in
  Alcotest.(check (array int)) "wavefront preserves accesses"
    (sorted_trace layout p) (sorted_trace layout p')

let test_unimodular_skew_only () =
  let open Build in
  let a = arr "A" [ 30; 30 ] in
  let i = v "i" and j = v "j" in
  let n1 =
    nest [ loop "i" 0 7; loop "j" 0 7 ] [ asn (w "A" [ i; j ]) [ r "A" [ i; j ] ] ]
  in
  let p = program "skew" [ a ] [ n1 ] in
  let layout = Layout.initial p in
  let t = L.Unimodular.skew 2 ~target:1 ~source:0 ~factor:2 in
  let transformed = L.Unimodular.apply n1 t in
  check_int "same iteration count" (Nest.iterations n1) (Nest.iterations transformed);
  let p' = Program.set_nest p 0 transformed in
  Alcotest.(check (array int)) "skew preserves accesses"
    (sorted_trace layout p) (sorted_trace layout p')

(* --- Transpose ------------------------------------------------------------ *)

let test_transpose_figure1 () =
  (* Figure 1's data-layout alternative: transposing A makes the original
     loop order unit-stride, like loop permutation does. *)
  let p = K.Paper_examples.figure1 ~n:64 ~m:64 in
  let transposed = L.Transpose.transpose_2d p "A" in
  let machine = Cs.Machine.ultrasparc in
  let r_orig = Interp.run machine (Layout.initial p) p in
  let r_trans = Interp.run machine (Layout.initial transposed) transposed in
  check_int "same refs" r_orig.Interp.total_refs r_trans.Interp.total_refs;
  check_bool "transpose reduces L1 misses" true
    (List.hd r_trans.Interp.misses < List.hd r_orig.Interp.misses)

let test_transpose_is_involution () =
  let p = K.Paper_examples.figure1 ~n:8 ~m:6 in
  let twice = L.Transpose.transpose_2d (L.Transpose.transpose_2d p "A") "A" in
  let layout = Layout.initial p in
  Alcotest.(check (array int)) "double transpose is identity"
    (Interp.trace layout p) (Interp.trace (Layout.initial twice) twice)

let test_transpose_optimize () =
  let p = K.Paper_examples.figure1 ~n:64 ~m:64 in
  let optimized, transposed = L.Transpose.optimize p (Layout.initial p) ~line:32 in
  Alcotest.(check (list string)) "A transposed" [ "A" ] transposed;
  let machine = Cs.Machine.ultrasparc in
  let r0 = Interp.run machine (Layout.initial p) p in
  let r1 = Interp.run machine (Layout.initial optimized) optimized in
  check_bool "fewer misses" true (List.hd r1.Interp.misses < List.hd r0.Interp.misses)

(* --- Distribution ----------------------------------------------------------- *)

let test_distribution_roundtrip_with_fusion () =
  let fig6 = K.Paper_examples.figure6_fused 32 in
  let nest = List.hd fig6.Program.nests in
  let parts = L.Distribution.maximal nest in
  check_int "five nests" 5 (List.length parts);
  let p' = { fig6 with Program.nests = parts } in
  let layout = Layout.initial fig6 in
  Alcotest.(check (array int)) "same multiset of accesses"
    (sorted_trace layout fig6) (sorted_trace layout p')

let test_distribution_rejects_backward_dep () =
  let open Build in
  let a = arr "A" [ 16 ] and b = arr "B" [ 16 ] in
  ignore (a, b);
  let i = v "i" in
  (* s0 consumes what s1 wrote on a previous iteration: splitting [s0]
     before [s1] would starve it. *)
  let nest_bad =
    nest [ loop "i" 1 14 ]
      [
        asn (w "A" [ i ]) [ r "B" [ i -! 1 ] ];
        asn (w "B" [ i ]) [ r "A" [ i ] ];
      ]
  in
  (* the two statements form a recurrence cycle (s0 reads B written by
     s1 on the previous iteration; s1 reads A written by s0 on the same
     iteration): no split order is legal *)
  (match L.Distribution.apply nest_bad [ [ 0 ]; [ 1 ] ] with
  | exception L.Distribution.Illegal _ -> ()
  | _ -> Alcotest.fail "cycle must not distribute (forward)");
  (match L.Distribution.apply nest_bad [ [ 1 ]; [ 0 ] ] with
  | exception L.Distribution.Illegal _ -> ()
  | _ -> Alcotest.fail "cycle must not distribute (backward)");
  (* a one-directional producer/consumer pair distributes fine *)
  let nest_ok =
    nest [ loop "i" 1 14 ]
      [
        asn (w "A" [ i ]) [ r "A" [ i ] ];
        asn (w "B" [ i ]) [ r "A" [ i -! 1 ] ];
      ]
  in
  match L.Distribution.apply nest_ok [ [ 0 ]; [ 1 ] ] with
  | parts -> check_int "two nests" 2 (List.length parts)
  | exception L.Distribution.Illegal _ ->
      Alcotest.fail "producer/consumer split is legal"

(* --- Time-step tiling (Song & Li exception) ---------------------------------- *)

let test_time_tiled_interior_work () =
  let n = 40 and steps = 4 in
  let plain = K.Time_kernels.sweep_2d ~n ~steps in
  let tiled = K.Time_kernels.time_tiled_2d ~n ~steps ~block:8 in
  Validate.check_exn plain;
  Validate.check_exn tiled;
  (* the tiled version performs the interior work: at most the full
     sweep, at least the sweep minus the trimmed wedges *)
  let full = Program.ref_count plain in
  let tiled_refs = Program.ref_count tiled in
  check_bool "within the full sweep" true (tiled_refs <= full);
  check_bool "covers most of it" true
    (float_of_int tiled_refs > 0.7 *. float_of_int full)

let test_time_tiling_targets_l2 () =
  (* The paper's Section 5 exception: across time steps the tile's
     working set (block + steps columns) cannot fit the L1 cache for any
     reasonable block, so the tiling targets L2 — and an L2-sized block
     beats the untiled multi-sweep once the array exceeds the L2. *)
  let machine = Cs.Machine.ultrasparc in
  let n = 512 and steps = 8 in
  let col_bytes = n * 8 in
  (* no feasible L1 tile: even block = 1 overflows the 16K L1 *)
  check_bool "L1 cannot hold any time tile" true
    (K.Time_kernels.tile_columns ~steps ~block:1 * col_bytes
    > Cs.Machine.s1 machine);
  let l2_cols = Cs.Machine.level_size machine 1 / col_bytes in
  let block = max 1 ((l2_cols / 2) - steps) in
  check_bool "array exceeds L2" true
    (n * n * 8 > Cs.Machine.level_size machine 1);
  let cycles p = (Interp.run machine (Layout.initial p) p).Interp.cycles in
  let untiled = K.Time_kernels.sweep_2d ~n ~steps in
  let tiled = K.Time_kernels.time_tiled_2d ~n ~steps ~block in
  (* normalize by work: the tiled interior does slightly fewer
     iterations (trimmed wedges), so compare cycles per reference *)
  let per_ref p =
    let r = Interp.run machine (Layout.initial p) p in
    r.Interp.cycles /. float_of_int r.Interp.total_refs
  in
  ignore cycles;
  check_bool
    (Printf.sprintf "L2 time tile (block %d) beats untiled (%.2f vs %.2f cyc/ref)"
       block (per_ref tiled) (per_ref untiled))
    true
    (per_ref tiled < per_ref untiled)

(* --- Native unrolled matmul --------------------------------------------------- *)

let test_unrolled_matmul_exact () =
  List.iter
    (fun n ->
      let a = N.Nat_matmul.create n and b = N.Nat_matmul.create n in
      N.Nat_matmul.random_fill ~seed:5 a;
      N.Nat_matmul.random_fill ~seed:6 b;
      let c1 = N.Nat_matmul.create n and c2 = N.Nat_matmul.create n in
      N.Nat_matmul.multiply ~c:c1 ~a ~b;
      N.Nat_matmul.multiply_unrolled ~c:c2 ~a ~b;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "n=%d bitwise equal" n)
        0.0
        (N.Nat_matmul.max_abs_diff c1 c2))
    [ 1; 3; 4; 17; 32 ]

let () =
  Alcotest.run "extensions"
    [
      ( "unimodular",
        [
          Alcotest.test_case "matrix algebra" `Quick test_matrix_algebra;
          Alcotest.test_case "permutation" `Quick test_unimodular_permutation_matches_permute;
          Alcotest.test_case "reversal" `Quick test_unimodular_reversal;
          Alcotest.test_case "skew + interchange wavefront" `Quick
            test_unimodular_skew_wavefront;
          Alcotest.test_case "skew only" `Quick test_unimodular_skew_only;
        ] );
      ( "transpose",
        [
          Alcotest.test_case "figure 1" `Quick test_transpose_figure1;
          Alcotest.test_case "involution" `Quick test_transpose_is_involution;
          Alcotest.test_case "optimize" `Quick test_transpose_optimize;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "undoes fusion" `Quick test_distribution_roundtrip_with_fusion;
          Alcotest.test_case "rejects backward dep" `Quick
            test_distribution_rejects_backward_dep;
        ] );
      ( "time_tiling",
        [
          Alcotest.test_case "interior work" `Quick test_time_tiled_interior_work;
          Alcotest.test_case "targets L2 (Song-Li)" `Slow test_time_tiling_targets_l2;
        ] );
      ( "native",
        [ Alcotest.test_case "unrolled matmul exact" `Quick test_unrolled_matmul_exact ] );
    ]
