(* Tests for the kernel-language front end: lexing, parsing, lowering to
   the IR, and equivalence with the hand-built kernels. *)

open Mlc_ir
module F = Mlc_frontend
module K = Mlc_kernels

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let jacobi_src n =
  Printf.sprintf
    {|
program jacobi
array A(%d,%d)
array B(%d,%d)

# five-point stencil
for j = 1 to %d {
  for i = 1 to %d {
    A(i,j) = B(i-1,j) + B(i+1,j) + B(i,j-1) + B(i,j+1)
  }
}
for j = 1 to %d {
  for i = 1 to %d {
    B(i,j) = A(i,j) + B(i,j)
  }
}
|}
    n n n n (n - 2) (n - 2) (n - 2) (n - 2)

let test_lexer_basics () =
  let toks = F.Lexer.tokenize "for i = 1 to 10 { A(i) = 2*i }" in
  check_int "token count" 17 (List.length toks);
  let kinds = List.map (fun t -> t.F.Lexer.token) toks in
  check_bool "starts with for" true (List.hd kinds = F.Lexer.KW_FOR);
  check_bool "ends with eof" true (List.nth kinds 16 = F.Lexer.EOF)

let test_lexer_comments_and_positions () =
  let toks = F.Lexer.tokenize "# comment\nfor // trailing\nx" in
  match toks with
  | [ f; x; _eof ] ->
      check_bool "for" true (f.F.Lexer.token = F.Lexer.KW_FOR);
      check_int "for on line 2" 2 f.F.Lexer.line;
      check_bool "x ident" true (x.F.Lexer.token = F.Lexer.IDENT "x");
      check_int "x on line 3" 3 x.F.Lexer.line
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_rejects_garbage () =
  match F.Lexer.tokenize "for i = 1 ? 2" with
  | exception F.Lexer.Error (_, 1, col) -> check_int "column" 11 col
  | _ -> Alcotest.fail "expected lexer error"

let test_parse_jacobi_structure () =
  let p = F.Parser.parse (jacobi_src 64) in
  check_int "two arrays" 2 (List.length p.Program.arrays);
  check_int "two nests" 2 (List.length p.Program.nests);
  check_int "time steps default" 1 p.Program.time_steps;
  let nest1 = List.hd p.Program.nests in
  Alcotest.(check (list string)) "loop order" [ "j"; "i" ] (Nest.vars nest1);
  check_int "five refs" 5 (List.length (Nest.refs nest1));
  (* flops: three '+' operators *)
  check_int "flops" 3 (List.hd nest1.Nest.body).Stmt.flops

let test_parse_matches_handbuilt_kernel () =
  (* the parsed jacobi must produce exactly the trace of the Build-based
     kernel, modulo the convergence-test statement's extra read *)
  let n = 32 in
  let parsed = F.Parser.parse (jacobi_src n) in
  let built = K.Livermore.jacobi n in
  let lp = Layout.initial parsed and lb = Layout.initial built in
  Alcotest.(check (array int)) "identical traces"
    (Interp.trace lb built) (Interp.trace lp parsed)

let test_parse_steps_and_elem_sizes () =
  let src =
    {|
program mixed steps 3
array K(100) int
array V(100) real
array W(100)

for i = 0 to 99 {
  W(i) = K(i) * V(i)
}
|}
  in
  let p = F.Parser.parse src in
  check_int "steps" 3 p.Program.time_steps;
  check_int "int elem" 4 (Program.find_array p "K").Array_decl.elem_size;
  check_int "real elem" 8 (Program.find_array p "V").Array_decl.elem_size;
  check_int "default elem" 8 (Program.find_array p "W").Array_decl.elem_size;
  check_int "refs per step" 300 (Nest.ref_count (List.hd p.Program.nests));
  check_int "total refs" 900 (Program.ref_count p)

let test_parse_downto_and_affine_bounds () =
  let src =
    {|
program tri
array A(64,64)

for k = 0 to 62 {
  for i = k+1 to 63 {
    A(i,k) = A(k,k) + A(i,k)
  }
}
for i = 63 downto 0 {
  A(i,0) = A(i,0)
}
|}
  in
  let p = F.Parser.parse src in
  let tri = List.hd p.Program.nests in
  (* sum_{k=0}^{62} (63-k) iterations *)
  let expected = List.init 63 (fun k -> 63 - k) |> List.fold_left ( + ) 0 in
  check_int "triangular iterations" expected (Nest.iterations tri);
  let rev = List.nth p.Program.nests 1 in
  let layout = Layout.initial p in
  let trace =
    Interp.trace layout { p with Program.nests = [ rev ] }
  in
  check_bool "downward" true (trace.(0) > trace.(2))

let test_parse_errors () =
  let expect_error src fragment =
    match F.Parser.parse src with
    | exception F.Parser.Error (msg, _, _) ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          m = 0 || go 0
        in
        if not (contains msg fragment) then
          Alcotest.failf "error %S does not mention %S" msg fragment
    | _ -> Alcotest.failf "expected parse error mentioning %S" fragment
  in
  expect_error "program p\nfor i = 0 to 9 { A(i) = 1 }" "not declared";
  expect_error "program p\narray A(10)\nfor i = 0 to 9 { A(i) = }" "expected an expression";
  expect_error "program p\narray A(10)" "no loop nests";
  expect_error "program p\narray A(10)\nfor i = 0 to 20 { A(i) = 1 }" "invalid program";
  expect_error "program p\narray A(10)\nfor i = 0 to 9 { A(i*i) = 1 }"
    "expected an integer coefficient"

let test_parsed_program_optimizable () =
  (* end-to-end: parse, pad, simulate *)
  let machine = Mlc_cachesim.Machine.ultrasparc in
  let p = F.Parser.parse (jacobi_src 128) in
  let orig = Locality.Experiment.run_strategy machine Locality.Pipeline.Original p in
  let pad = Locality.Experiment.run_strategy machine Locality.Pipeline.Pad_l1 p in
  check_bool "padding works on parsed programs" true
    (Locality.Experiment.miss_rate_pct pad 0
    <= Locality.Experiment.miss_rate_pct orig 0)

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments and positions" `Quick
            test_lexer_comments_and_positions;
          Alcotest.test_case "rejects garbage" `Quick test_lexer_rejects_garbage;
        ] );
      ( "parser",
        [
          Alcotest.test_case "jacobi structure" `Quick test_parse_jacobi_structure;
          Alcotest.test_case "matches hand-built kernel" `Quick
            test_parse_matches_handbuilt_kernel;
          Alcotest.test_case "steps and element sizes" `Quick
            test_parse_steps_and_elem_sizes;
          Alcotest.test_case "downto and affine bounds" `Quick
            test_parse_downto_and_affine_bounds;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "optimizable end-to-end" `Quick
            test_parsed_program_optimizable;
        ] );
    ]
