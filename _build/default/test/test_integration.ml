(* End-to-end integration tests: simulate real kernels under the paper's
   cache configuration and check the qualitative results the paper
   reports (padding reduces conflict misses; L1-targeted optimization
   captures most of the L2 benefit; L1 tiles beat L2 tiles in model
   time for matrices that fit in L2; the fusion model's predictions are
   directionally confirmed by simulation). *)

open Mlc_ir
module Cs = Mlc_cachesim
module K = Mlc_kernels
module L = Locality

let machine = Cs.Machine.ultrasparc

let check_bool = Alcotest.(check bool)

let miss_rate o level = L.Experiment.miss_rate_pct o level

let test_pad_improves_colliding_program () =
  (* Figure 2 program at the collision size: packed layout ping-pongs. *)
  let p = K.Paper_examples.figure2 256 in
  let orig = L.Experiment.run_strategy machine L.Pipeline.Original p in
  let pad = L.Experiment.run_strategy machine L.Pipeline.Pad_l1 p in
  check_bool
    (Printf.sprintf "L1 misses drop (%.1f%% -> %.1f%%)" (miss_rate orig 0)
       (miss_rate pad 0))
    true
    (miss_rate pad 0 < miss_rate orig 0);
  check_bool "L2 also improves from the L1-only pass" true
    (miss_rate pad 1 <= miss_rate orig 1)

let test_l1_opt_captures_most_l2_benefit () =
  let p = K.Paper_examples.figure2 256 in
  let orig = L.Experiment.run_strategy machine L.Pipeline.Original p in
  let l1 = L.Experiment.run_strategy machine L.Pipeline.Pad_l1 p in
  let both = L.Experiment.run_strategy machine L.Pipeline.Pad_multilevel p in
  (* the multi-level version must not hurt L1 *)
  check_bool "multi-level does not hurt L1" true
    (miss_rate both 0 <= miss_rate l1 0 +. 1.0);
  (* and most of the original->multilevel L2 gain is already in L1-only *)
  let gain_l1 = miss_rate orig 1 -. miss_rate l1 1 in
  let gain_both = miss_rate orig 1 -. miss_rate both 1 in
  check_bool
    (Printf.sprintf "L1-only captures most L2 gain (%.2f of %.2f)" gain_l1 gain_both)
    true
    (gain_both <= 0.01 || gain_l1 >= 0.5 *. gain_both)

let test_jacobi_simulation_sane () =
  (* At 256², A and B are 512K each: their bases coincide mod 16K and the
     packed layout ping-pongs (that is the paper's starting point).  After
     PAD the stencil should enjoy its unit-stride locality. *)
  let p = K.Livermore.jacobi 256 in
  let orig = L.Experiment.run_strategy machine L.Pipeline.Original p in
  check_bool "refs counted" true
    (orig.L.Experiment.result.Interp.total_refs = Program.ref_count p);
  let pad = L.Experiment.run_strategy machine L.Pipeline.Pad_l1 p in
  check_bool
    (Printf.sprintf "packed ping-pongs (%.1f%%), PAD restores locality (%.1f%%)"
       (miss_rate orig 0) (miss_rate pad 0))
    true
    (miss_rate pad 0 < 20.0 && miss_rate pad 0 < miss_rate orig 0);
  check_bool "L2 <= L1 after PAD" true (miss_rate pad 1 <= miss_rate pad 0)

let test_tiling_l1_beats_l2_within_l2 () =
  (* 200x200 doubles: 320K per array fits in 512K L2, exceeds 16K L1.
     Figure 13: "L2-sized tiles are of no use when the data already fits
     in L2 cache". *)
  let n = 200 in
  let elem = 8 in
  let l1_tile =
    L.Tile_size.select ~cache_bytes:(16 * 1024) ~elem ~col_elems:n ~rows:n ()
  in
  let l2_tile =
    L.Tile_size.select ~cache_bytes:(512 * 1024) ~elem ~col_elems:n ~rows:n ()
  in
  let run tile =
    let p =
      L.Tiling.tiled_matmul ~n ~h:tile.L.Tile_size.height ~w:tile.L.Tile_size.width
    in
    Interp.run machine (Layout.initial p) p
  in
  let r_l1 = run l1_tile and r_l2 = run l2_tile in
  check_bool
    (Printf.sprintf "L1 tile %.0f cycles <= L2 tile %.0f cycles"
       r_l1.Interp.cycles r_l2.Interp.cycles)
    true
    (r_l1.Interp.cycles <= r_l2.Interp.cycles)

let test_tiling_beats_untiled_beyond_l1 () =
  let n = 200 in
  let tile = L.Tile_size.select ~cache_bytes:(16 * 1024) ~elem:8 ~col_elems:n ~rows:n () in
  let tiled =
    L.Tiling.tiled_matmul ~n ~h:tile.L.Tile_size.height ~w:tile.L.Tile_size.width
  in
  let untiled = L.Tiling.matmul n in
  let r_t = Interp.run machine (Layout.initial tiled) tiled in
  let r_u = Interp.run machine (Layout.initial untiled) untiled in
  check_bool
    (Printf.sprintf "tiled %.2e < untiled %.2e cycles" r_t.Interp.cycles
       r_u.Interp.cycles)
    true
    (r_t.Interp.cycles < r_u.Interp.cycles)

let test_grouppad_l2maxpad_on_expl () =
  (* A reduced EXPL still shows: GROUPPAD+L2MAXPAD never hurts L1 and
     does not increase L2 misses. *)
  let p = K.Livermore.expl 256 in
  let l1 = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1 p in
  let both = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1_l2 p in
  check_bool "L1 unchanged by L2MAXPAD" true
    (abs_float (miss_rate both 0 -. miss_rate l1 0) < 0.5);
  check_bool "L2 not worse" true (miss_rate both 1 <= miss_rate l1 1 +. 0.25)

let test_fusion_model_directionally_confirmed () =
  (* Fuse the Figure 2 program and check the simulator agrees with the
     model that memory accesses go down. *)
  let n = 960 in
  let fig2 = K.Paper_examples.figure2 n in
  let fig6 = K.Paper_examples.figure6_fused n in
  let run p strategy =
    L.Experiment.run_strategy machine strategy p
  in
  let o2 = run fig2 L.Pipeline.Grouppad_l1_l2 in
  let o6 = run fig6 L.Pipeline.Grouppad_l1_l2 in
  (* memory accesses per reference should drop after fusion *)
  let mem_per_ref o =
    float_of_int o.L.Experiment.result.Interp.memory_accesses
    /. float_of_int o.L.Experiment.result.Interp.total_refs
  in
  check_bool
    (Printf.sprintf "memory/ref falls with fusion (%.4f -> %.4f)" (mem_per_ref o2)
       (mem_per_ref o6))
    true
    (mem_per_ref o6 < mem_per_ref o2)

let test_associativity_treated_as_direct_mapped () =
  (* The paper: treating k-way caches as direct-mapped for optimization
     achieves nearly all the benefit.  Here: PAD computed for the
     direct-mapped model still helps (or at least never hurts) on a
     2-way machine. *)
  let p = K.Paper_examples.figure2 256 in
  let assoc_machine = Cs.Machine.with_associativity 2 machine in
  let layout_orig = Layout.initial p in
  let layout_pad = L.Pipeline.layout_for machine L.Pipeline.Pad_l1 p in
  let r_orig = Interp.run assoc_machine layout_orig p in
  let r_pad = Interp.run assoc_machine layout_pad p in
  check_bool "PAD never hurts on the associative cache" true
    (r_pad.Interp.cycles <= r_orig.Interp.cycles *. 1.02)

let test_three_level_machine () =
  (* extension: the Alpha-style 3-level hierarchy runs end-to-end *)
  let alpha = Cs.Machine.alpha21164 in
  let p = K.Livermore.jacobi 128 in
  let result = Interp.run alpha (Layout.initial p) p in
  Alcotest.(check int) "three miss rates" 3 (List.length result.Interp.miss_rates);
  let padded = L.Multilvlpad.apply alpha p (Layout.initial p) in
  check_bool "multilvlpad runs on 3 levels" true (Layout.total_bytes padded > 0)

let () =
  Alcotest.run "integration"
    [
      ( "padding",
        [
          Alcotest.test_case "PAD improves colliding program" `Slow
            test_pad_improves_colliding_program;
          Alcotest.test_case "L1-opt captures most L2 benefit" `Slow
            test_l1_opt_captures_most_l2_benefit;
          Alcotest.test_case "GROUPPAD+L2MAXPAD on EXPL" `Slow
            test_grouppad_l2maxpad_on_expl;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "jacobi sane" `Slow test_jacobi_simulation_sane;
          Alcotest.test_case "associativity" `Slow
            test_associativity_treated_as_direct_mapped;
          Alcotest.test_case "three-level machine" `Slow test_three_level_machine;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "L1 tile beats L2 tile (fits L2)" `Slow
            test_tiling_l1_beats_l2_within_l2;
          Alcotest.test_case "tiling beats untiled" `Slow
            test_tiling_beats_untiled_beyond_l1;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "model directionally confirmed" `Slow
            test_fusion_model_directionally_confirmed;
        ] );
    ]
