(* Tests for the loop-nest IR: expressions, layout/addressing, loops,
   interpretation (fast path vs naive trace), validation. *)

open Mlc_ir
module Cs = Mlc_cachesim

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- Expr -------------------------------------------------------------- *)

let test_expr_algebra () =
  let e = Expr.add (Expr.term 2 "i") (Expr.add (Expr.var "j") (Expr.const 3)) in
  check_int "coeff i" 2 (Expr.coeff e "i");
  check_int "coeff j" 1 (Expr.coeff e "j");
  check_int "coeff k" 0 (Expr.coeff e "k");
  check_int "const" 3 (Expr.const_part e);
  Alcotest.(check (list string)) "vars" [ "i"; "j" ] (Expr.vars e);
  let e2 = Expr.sub e (Expr.term 2 "i") in
  check_bool "cancelled" false (List.mem "i" (Expr.vars e2));
  check_int "eval" 13 (Expr.eval (function "i" -> 2 | "j" -> 6 | _ -> 0) e)

let test_expr_subst_shift () =
  let e = Expr.add (Expr.term 3 "i") (Expr.const 1) in
  let shifted = Expr.shift "i" (-2) e in
  (* 3*(i-2) + 1 = 3i - 5 *)
  check_int "coeff" 3 (Expr.coeff shifted "i");
  check_int "const" (-5) (Expr.const_part shifted);
  let renamed = Expr.rename (fun v -> if v = "i" then "k" else v) e in
  check_int "renamed coeff" 3 (Expr.coeff renamed "k");
  check_int "old gone" 0 (Expr.coeff renamed "i")

let test_expr_equal_normal_form () =
  let a = Expr.add (Expr.var "i") (Expr.var "j") in
  let b = Expr.add (Expr.var "j") (Expr.var "i") in
  check_bool "commutative normal form" true (Expr.equal a b)

(* --- Array_decl & Layout ----------------------------------------------- *)

let test_dim_strides () =
  let a = Array_decl.make "A" [ 4; 5; 6 ] in
  Alcotest.(check (list int)) "strides" [ 1; 4; 20 ] (Array_decl.dim_strides a);
  check_int "elements" 120 (Array_decl.elements a);
  check_int "bytes" 960 (Array_decl.size_bytes a);
  check_int "column bytes" 32 (Array_decl.column_bytes a)

let test_layout_packed () =
  let a = Array_decl.make "A" [ 10 ] and b = Array_decl.make "B" [ 10 ] in
  let l = Layout.of_arrays [ a; b ] in
  check_int "A base" 0 (Layout.base l "A");
  check_int "B base" 80 (Layout.base l "B");
  check_int "total" 160 (Layout.total_bytes l)

let test_layout_pads () =
  let a = Array_decl.make "A" [ 10 ] and b = Array_decl.make "B" [ 10 ] in
  let l = Layout.of_arrays [ a; b ] in
  let l = Layout.set_pad_before l "B" 32 in
  check_int "B shifted" 112 (Layout.base l "B");
  let l = Layout.add_pad_before l "B" 32 in
  check_int "B shifted more" 144 (Layout.base l "B");
  check_int "pad recorded" 64 (Layout.pad_before l "B");
  (* pad before A shifts everything *)
  let l = Layout.set_pad_before l "A" 8 in
  check_int "A shifted" 8 (Layout.base l "A");
  check_int "B shifted too" 152 (Layout.base l "B")

let test_layout_intra_pad () =
  let a = Array_decl.make "A" [ 4; 3 ] in
  let l = Layout.of_arrays [ a ] in
  check_int "addr (1,2) packed" ((1 + (4 * 2)) * 8) (Layout.address l "A" [ 1; 2 ]);
  let l = Layout.set_intra_pad l "A" 1 in
  (* columns now 5 long *)
  check_int "addr (1,2) padded" ((1 + (5 * 2)) * 8) (Layout.address l "A" [ 1; 2 ]);
  check_int "size grows" (5 * 3 * 8) (Layout.total_bytes l)

let test_layout_address_expr () =
  let a = Array_decl.make "A" [ 8; 8 ] in
  let l = Layout.of_arrays [ a ] in
  let r = Ref_.read_a "A" [ Expr.var "i"; Expr.add (Expr.var "j") (Expr.const 1) ] in
  let addr = Layout.address_expr l r in
  (* base 0 + 8*(i + 8*(j+1)) = 8i + 64j + 64 *)
  check_int "i stride" 8 (Expr.coeff addr "i");
  check_int "j stride" 64 (Expr.coeff addr "j");
  check_int "const" 64 (Expr.const_part addr)

let test_layout_alignment () =
  let a = Array_decl.make "A" [ 3 ] and b = Array_decl.make "B" [ 3 ] in
  let l = Layout.of_arrays [ a; b ] in
  let l = Layout.set_pad_before l "B" 3 in
  (* 24 + 3 = 27, aligned up to 32 *)
  check_int "aligned" 32 (Layout.base l "B")

(* --- Loop -------------------------------------------------------------- *)

let env_empty v = invalid_arg ("unbound " ^ v)

let collect loop env =
  let out = ref [] in
  Loop.iter env loop (fun iv -> out := iv :: !out);
  List.rev !out

let test_loop_basic () =
  Alcotest.(check (list int)) "0..3" [ 0; 1; 2; 3 ] (collect (Loop.range "i" 0 3) env_empty);
  check_int "trip" 4 (Loop.trip_count env_empty (Loop.range "i" 0 3));
  Alcotest.(check (list int)) "empty" [] (collect (Loop.range "i" 3 0) env_empty)

let test_loop_step () =
  let l = Loop.make ~step:3 "i" ~lo:(Expr.const 0) ~hi:(Expr.const 10) in
  Alcotest.(check (list int)) "step 3" [ 0; 3; 6; 9 ] (collect l env_empty);
  check_int "trip" 4 (Loop.trip_count env_empty l)

let test_loop_negative_step () =
  let l = Loop.make ~step:(-2) "i" ~lo:(Expr.const 9) ~hi:(Expr.const 2) in
  Alcotest.(check (list int)) "down" [ 9; 7; 5; 3 ] (collect l env_empty);
  check_int "trip" 4 (Loop.trip_count env_empty l)

let test_loop_clamp () =
  let l =
    Loop.make "i" ~lo:(Expr.const 4) ~hi:(Expr.const 9) ~hi_min:(Expr.const 6)
  in
  Alcotest.(check (list int)) "clamped" [ 4; 5; 6 ] (collect l env_empty)

(* --- Nest / Program ---------------------------------------------------- *)

let test_nest_iterations_triangular () =
  let nest =
    Nest.make
      [
        Loop.range "k" 0 3;
        Loop.make "i" ~lo:(Expr.add (Expr.var "k") (Expr.const 1)) ~hi:(Expr.const 3);
      ]
      [ Stmt.make [ Ref_.read_a "A" [ Expr.var "i" ] ] ]
  in
  (* k=0: i=1..3 (3); k=1: 2; k=2: 1; k=3: 0 *)
  check_int "triangular iterations" 6 (Nest.iterations nest)

let test_program_counts () =
  let a = Array_decl.make "A" [ 10 ] in
  let nest =
    Nest.make [ Loop.range "i" 0 9 ]
      [ Stmt.make ~flops:2 [ Ref_.read_a "A" [ Expr.var "i" ] ] ]
  in
  let p = Program.make ~time_steps:3 "p" [ a ] [ nest ] in
  check_int "refs" 30 (Program.ref_count p);
  check_int "flops" 60 (Program.flop_count p)

let test_program_duplicate_array () =
  let a = Array_decl.make "A" [ 10 ] in
  match Program.make "p" [ a; a ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of duplicate array"

(* --- Validate ----------------------------------------------------------- *)

let test_validate_catches () =
  let a = Array_decl.make "A" [ 10 ] in
  let bad_arity =
    Program.make "bad" [ a ]
      [
        Nest.make [ Loop.range "i" 0 9 ]
          [ Stmt.make [ Ref_.read_a "A" [ Expr.var "i"; Expr.var "i" ] ] ];
      ]
  in
  check_bool "arity" true (Validate.check bad_arity <> []);
  let unbound =
    Program.make "unbound" [ a ]
      [ Nest.make [ Loop.range "i" 0 9 ] [ Stmt.make [ Ref_.read_a "A" [ Expr.var "z" ] ] ] ]
  in
  check_bool "unbound var" true (Validate.check unbound <> []);
  let oob =
    Program.make "oob" [ a ]
      [ Nest.make [ Loop.range "i" 0 10 ] [ Stmt.make [ Ref_.read_a "A" [ Expr.var "i" ] ] ] ]
  in
  check_bool "out of bounds" true (Validate.check oob <> []);
  let ok =
    Program.make "ok" [ a ]
      [ Nest.make [ Loop.range "i" 0 9 ] [ Stmt.make [ Ref_.read_a "A" [ Expr.var "i" ] ] ] ]
  in
  Alcotest.(check (list string)) "clean" []
    (List.map (Format.asprintf "%a" Validate.pp_issue) (Validate.check ok))

(* --- Interp ------------------------------------------------------------- *)

let small_machine =
  {
    Cs.Machine.name = "test";
    geometries = [ { Cs.Level.size = 256; line = 32; assoc = 1 } ];
    cost = { Cs.Cost_model.hit_cycles = [| 1.0 |]; memory_cycles = 10.0; clock_hz = 1e6 };
  }

let test_interp_counts () =
  let a = Array_decl.make "A" [ 64 ] in
  let p =
    Program.make "p" [ a ]
      [
        Nest.make [ Loop.range "i" 0 63 ]
          [ Stmt.make ~flops:1 [ Ref_.read_a "A" [ Expr.var "i" ] ] ];
      ]
  in
  let layout = Layout.initial p in
  let result = Interp.run small_machine layout p in
  check_int "refs" 64 result.Interp.total_refs;
  check_int "flops" 64 result.Interp.flops;
  (* 64 doubles = 512 bytes = 16 lines; cache 256B, so every line is a
     cold miss: 16 misses *)
  Alcotest.(check (list int)) "misses" [ 16 ] result.Interp.misses

let test_interp_trace_order () =
  let a = Array_decl.make "A" [ 4; 4 ] in
  let p =
    Program.make "p" [ a ]
      [
        Nest.make [ Loop.range "j" 0 1; Loop.range "i" 0 1 ]
          [ Stmt.make [ Ref_.read_a "A" [ Expr.var "i"; Expr.var "j" ] ] ];
      ]
  in
  let layout = Layout.initial p in
  let trace = Interp.trace layout p in
  (* column-major: (i,j) at (i + 4j)*8 *)
  Alcotest.(check (array int)) "trace" [| 0; 8; 32; 40 |] trace

let test_interp_gather () =
  let x = Array_decl.make "X" [ 8 ] in
  let table = [| 3; 1; 3; 0 |] in
  let p =
    Program.make "p" [ x ]
      [
        Nest.make [ Loop.range "i" 0 3 ]
          [ Stmt.make [ Ref_.read "X" [ Subscript.gather ~table ~index:(Expr.var "i") ] ] ];
      ]
  in
  let layout = Layout.initial p in
  Alcotest.(check (array int)) "gather trace" [| 24; 8; 24; 0 |] (Interp.trace layout p)

(* Property: the fast interpreter and the naive trace agree on miss counts
   for random small programs. *)
let random_program =
  let open QCheck.Gen in
  let* n1 = int_range 2 6 in
  let* n2 = int_range 2 6 in
  let* off1 = int_range 0 1 in
  let* off2 = int_range 0 1 in
  let a = Array_decl.make "A" [ n1 + 2; n2 + 2 ] in
  let b = Array_decl.make "B" [ n1 + 2; n2 + 2 ] in
  let i = Expr.var "i" and j = Expr.var "j" in
  let refs =
    [
      Ref_.read_a "A" [ Expr.add i (Expr.const off1); j ];
      Ref_.read_a "B" [ i; Expr.add j (Expr.const off2) ];
      Ref_.write_a "A" [ i; j ];
    ]
  in
  let nest = Nest.make [ Loop.range "j" 0 (n2 - 1); Loop.range "i" 0 (n1 - 1) ] [ Stmt.make refs ] in
  return (Program.make "rand" [ a; b ] [ nest ])

let prop_fast_interp_matches_trace =
  QCheck.Test.make ~name:"fast interp = naive trace (miss counts)" ~count:100
    (QCheck.make random_program)
    (fun p ->
      let layout = Layout.initial p in
      (* replay naive trace *)
      let h1 = Cs.Machine.hierarchy small_machine in
      Cs.Trace.replay h1 (Interp.trace layout p);
      (* fast path *)
      let h2 = Cs.Machine.hierarchy small_machine in
      ignore (Interp.feed h2 layout p);
      Cs.Hierarchy.miss_rates h1 = Cs.Hierarchy.miss_rates h2
      && Cs.Hierarchy.total_refs h1 = Cs.Hierarchy.total_refs h2)

let prop_pad_shifts_addresses =
  QCheck.Test.make ~name:"pad_before shifts all later bases equally" ~count:100
    QCheck.(pair (int_range 0 512) (int_range 0 512))
    (fun (p1, p2) ->
      let a = Array_decl.make "A" [ 16 ] in
      let b = Array_decl.make "B" [ 16 ] in
      let c = Array_decl.make "C" [ 16 ] in
      let l = Layout.of_arrays [ a; b; c ] in
      let l' = Layout.set_pad_before l "B" (p1 * 8) in
      let l'' = Layout.set_pad_before l' "C" (p2 * 8) in
      Layout.base l'' "B" - Layout.base l "B" = p1 * 8
      && Layout.base l'' "C" - Layout.base l "C" = (p1 + p2) * 8
      && Layout.base l'' "A" = Layout.base l "A")

let () =
  Alcotest.run "ir"
    [
      ( "expr",
        [
          Alcotest.test_case "algebra" `Quick test_expr_algebra;
          Alcotest.test_case "subst/shift/rename" `Quick test_expr_subst_shift;
          Alcotest.test_case "normal form" `Quick test_expr_equal_normal_form;
        ] );
      ( "layout",
        [
          Alcotest.test_case "dim strides" `Quick test_dim_strides;
          Alcotest.test_case "packed" `Quick test_layout_packed;
          Alcotest.test_case "pads" `Quick test_layout_pads;
          Alcotest.test_case "intra pad" `Quick test_layout_intra_pad;
          Alcotest.test_case "address expr" `Quick test_layout_address_expr;
          Alcotest.test_case "alignment" `Quick test_layout_alignment;
        ] );
      ( "loop",
        [
          Alcotest.test_case "basic" `Quick test_loop_basic;
          Alcotest.test_case "step" `Quick test_loop_step;
          Alcotest.test_case "negative step" `Quick test_loop_negative_step;
          Alcotest.test_case "clamp" `Quick test_loop_clamp;
        ] );
      ( "nest",
        [
          Alcotest.test_case "triangular iterations" `Quick test_nest_iterations_triangular;
          Alcotest.test_case "program counts" `Quick test_program_counts;
          Alcotest.test_case "duplicate array" `Quick test_program_duplicate_array;
        ] );
      ("validate", [ Alcotest.test_case "catches issues" `Quick test_validate_catches ]);
      ( "interp",
        [
          Alcotest.test_case "counts" `Quick test_interp_counts;
          Alcotest.test_case "trace order" `Quick test_interp_trace_order;
          Alcotest.test_case "gather" `Quick test_interp_gather;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fast_interp_matches_trace; prop_pad_shifts_addresses ] );
    ]
