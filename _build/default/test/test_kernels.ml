(* Tests for the benchmark kernel builders: every registered program
   validates, has the advertised array/nest structure, and reference
   counts scale as expected. *)

open Mlc_ir
module K = Mlc_kernels

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* Validate every registry program at a reduced size (cheap but complete
   structural checking). *)
let small_build (e : K.Registry.entry) =
  match e.K.Registry.build_sized with
  | Some f ->
      let size =
        match e.K.Registry.name with
        | "ADI32" | "ERLE64" | "EXPL512" | "JACOBI512" | "SHAL512" | "LINPACKD"
        | "HYDRO2D" | "SWIM" | "TOMCATV" | "SU2COR" ->
            32
        | "APPBT" | "APPLU" | "APPSP" | "MGRID" | "TURB3D" | "APSI" -> 8
        | "DOT256" | "IRR500K" | "BUK" | "CGM" | "EMBAR" | "WAVE5" | "FPPPP" -> 64
        | "FFTPDE" -> 256
        | _ -> 16
      in
      f size
  | None -> e.K.Registry.build ()

let test_all_validate () =
  List.iter
    (fun e ->
      let p = small_build e in
      match Validate.check p with
      | [] -> ()
      | issues ->
          Alcotest.failf "%s: %s" e.K.Registry.name
            (String.concat "; "
               (List.map (Format.asprintf "%a" Validate.pp_issue) issues)))
    K.Registry.all

let test_registry_inventory () =
  check_int "8 kernels" 8 (List.length K.Registry.kernels);
  check_int "8 NAS" 8 (List.length K.Registry.nas);
  check_int "8 SPEC" 8 (List.length K.Registry.spec);
  check_int "24 programs (Table 1)" 24 (List.length K.Registry.all);
  check_bool "find is case-insensitive" true
    ((K.Registry.find "expl512").K.Registry.name = "EXPL512")

let test_expl_structure () =
  let p = K.Livermore.expl 64 in
  check_int "nine arrays" 9 (List.length p.Program.arrays);
  check_int "three nests" 3 (List.length p.Program.nests);
  (* Livermore 18 loop ranges: (n-2)^2 iterations per nest *)
  check_int "iterations" ((64 - 2) * (64 - 2))
    (Nest.iterations (List.hd p.Program.nests))

let test_shal_structure () =
  let p = K.Livermore.shal 64 in
  check_int "thirteen arrays" 13 (List.length p.Program.arrays);
  check_int "three calc nests" 3 (List.length p.Program.nests)

let test_jacobi_refs () =
  let p = K.Livermore.jacobi 32 in
  (* nest1: 5 refs * 30^2; nest2: 3 refs * 30^2 *)
  check_int "ref count" ((5 * 30 * 30) + (3 * 30 * 30)) (Program.ref_count p)

let test_dot_flops () =
  let p = K.Livermore.dot 1000 in
  check_int "2 flops per element" 2000 (Program.flop_count p)

let test_linpackd_triangular () =
  let p = K.Livermore.linpackd 8 in
  (* update nest: sum_{k=0}^{6} (7-k)^2 iterations *)
  let expected = List.fold_left (fun acc k -> acc + ((7 - k) * (7 - k))) 0 [ 0; 1; 2; 3; 4; 5; 6 ] in
  check_int "triangular update size" expected
    (Nest.iterations (List.nth p.Program.nests 1))

let test_irr_gather_tables_deterministic () =
  let p1 = K.Livermore.irr 1000 in
  let p2 = K.Livermore.irr 1000 in
  let layout = Layout.initial p1 in
  Alcotest.(check (array int)) "same trace both builds"
    (Interp.trace layout p1) (Interp.trace layout p2)

let test_erle_planes_collide () =
  (* the raison d'être of intra-variable padding in the paper *)
  let p = K.Livermore.erle 64 in
  let layout = Layout.initial p in
  check_bool "64^2 plane is a multiple of 16K" true
    (64 * 64 * 8 mod (16 * 1024) = 0);
  check_bool "same-array plane conflicts" true
    (Locality.Intra_pad.remaining_self_conflicts ~size:(16 * 1024) ~line:32 p layout
     <> [])

let test_time_steps_multiply () =
  let once = K.Livermore.shal ~time_steps:1 32 in
  let thrice = K.Livermore.shal ~time_steps:3 32 in
  check_int "refs triple" (3 * Program.ref_count once) (Program.ref_count thrice)

let test_buk_gather_bounds () =
  let p = K.Nas.buk ~buckets:64 1000 in
  Alcotest.(check (list string)) "valid" []
    (List.map (Format.asprintf "%a" Validate.pp_issue) (Validate.check p))

let test_paper_examples_match_paper_refs () =
  let p = K.Paper_examples.figure2 64 in
  let nest1 = List.nth p.Program.nests 0 in
  let nest2 = List.nth p.Program.nests 1 in
  check_int "nest1 has 6 refs" 6 (List.length (Nest.refs nest1));
  check_int "nest2 has 4 refs" 4 (List.length (Nest.refs nest2));
  let fused = K.Paper_examples.figure6_fused 64 in
  check_int "fused nest has 10 refs" 10
    (List.length (Nest.refs (List.hd fused.Program.nests)))

let () =
  Alcotest.run "kernels"
    [
      ( "registry",
        [
          Alcotest.test_case "all validate" `Slow test_all_validate;
          Alcotest.test_case "inventory" `Quick test_registry_inventory;
        ] );
      ( "structure",
        [
          Alcotest.test_case "EXPL (Liv18)" `Quick test_expl_structure;
          Alcotest.test_case "SHAL arrays" `Quick test_shal_structure;
          Alcotest.test_case "JACOBI refs" `Quick test_jacobi_refs;
          Alcotest.test_case "DOT flops" `Quick test_dot_flops;
          Alcotest.test_case "LINPACKD triangular" `Quick test_linpackd_triangular;
          Alcotest.test_case "IRR deterministic" `Quick test_irr_gather_tables_deterministic;
          Alcotest.test_case "ERLE plane conflicts" `Quick test_erle_planes_collide;
          Alcotest.test_case "time steps" `Quick test_time_steps_multiply;
          Alcotest.test_case "BUK gather bounds" `Quick test_buk_gather_bounds;
          Alcotest.test_case "paper examples" `Quick test_paper_examples_match_paper_refs;
        ] );
    ]
