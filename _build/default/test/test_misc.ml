(* Edge-case coverage for the smaller utility surfaces: Machine
   accessors, Stats conventions, Pretty's refusals, Report formatting,
   Pipeline naming, and Registry sizing hooks. *)

open Mlc_ir
module Cs = Mlc_cachesim
module K = Mlc_kernels
module L = Locality

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let test_machine_accessors () =
  let m = Cs.Machine.ultrasparc in
  check_int "S1" (16 * 1024) (Cs.Machine.s1 m);
  check_int "Lmax" 64 (Cs.Machine.lmax m);
  check_int "levels" 2 (Cs.Machine.n_levels m);
  check_int "L2 size" (512 * 1024) (Cs.Machine.level_size m 1);
  check_int "L1 line" 32 (Cs.Machine.level_line m 0);
  let m2 = Cs.Machine.with_associativity 2 m in
  check_int "assoc applied" 2
    (List.hd m2.Cs.Machine.geometries).Cs.Level.assoc;
  check_int "capacity unchanged" (Cs.Machine.s1 m) (Cs.Machine.s1 m2);
  let alpha = Cs.Machine.alpha21164 in
  check_int "alpha levels" 3 (Cs.Machine.n_levels alpha)

let test_stats_conventions () =
  let s = Cs.Stats.create () in
  Alcotest.(check (float 0.0)) "empty rate" 0.0 (Cs.Stats.local_miss_rate s);
  Cs.Stats.record s ~hit:false;
  Cs.Stats.record s ~hit:true;
  Alcotest.(check (float 1e-9)) "local" 0.5 (Cs.Stats.local_miss_rate s);
  (* the paper's convention: misses over total program references *)
  Alcotest.(check (float 1e-9)) "vs total refs" 0.25
    (Cs.Stats.miss_rate_vs ~total_refs:4 s);
  Alcotest.(check (float 0.0)) "zero total" 0.0 (Cs.Stats.miss_rate_vs ~total_refs:0 s)

let test_pretty_refusals () =
  (* clamped (tiled) loops have no source syntax *)
  let tiled = L.Tiling.tiled_matmul ~n:8 ~h:2 ~w:2 in
  (match Pretty.program tiled with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected refusal on clamped loops");
  (* gather subscripts have no source syntax *)
  let irr = K.Livermore.irr 100 in
  match Pretty.program irr with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected refusal on gather subscripts"

let test_pipeline_names_distinct () =
  let names = List.map L.Pipeline.strategy_name L.Pipeline.all in
  check_int "five strategies" 5 (List.length names);
  check_int "names distinct" 5 (List.length (List.sort_uniq compare names))

let test_registry_sizing () =
  let e = K.Registry.find "JACOBI512" in
  (match e.K.Registry.build_sized with
  | Some f ->
      let p = f 64 in
      check_bool "sized build" true (Program.ref_count p > 0)
  | None -> Alcotest.fail "jacobi should be size-parameterized");
  match K.Registry.find "nosuchprogram" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_expr_pp_roundtrip_display () =
  let e = Expr.add (Expr.term 2 "i") (Expr.add (Expr.term (-1) "j") (Expr.const (-3))) in
  Alcotest.(check string) "rendering" "2i-j-3" (Expr.to_string e);
  Alcotest.(check string) "constant" "0" (Expr.to_string (Expr.const 0))

let test_subscript_gather_bounds () =
  let s = Subscript.gather ~table:[| 5; 6 |] ~index:(Expr.var "i") in
  check_int "lookup" 6 (Subscript.eval (fun _ -> 1) s);
  match Subscript.eval (fun _ -> 7) s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds failure"

let test_layout_errors () =
  let a = Array_decl.make "A" [ 4 ] in
  let l = Layout.of_arrays [ a ] in
  (match Layout.base l "Z" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown array must raise");
  match Layout.set_pad_before l "A" (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative pad must raise"

let test_report_table_alignment () =
  (* smoke: table printing never raises on ragged rows *)
  L.Report.table ~title:"t" ~columns:[ "a"; "bb" ] [ [ "1" ]; [ "22"; "333" ] ];
  L.Report.series ~title:"s" ~x_label:"x" ~labels:[ "y" ] [ (1, [ 2.0 ]) ]

let () =
  Alcotest.run "misc"
    [
      ( "cachesim",
        [
          Alcotest.test_case "machine accessors" `Quick test_machine_accessors;
          Alcotest.test_case "stats conventions" `Quick test_stats_conventions;
        ] );
      ( "ir",
        [
          Alcotest.test_case "pretty refusals" `Quick test_pretty_refusals;
          Alcotest.test_case "expr rendering" `Quick test_expr_pp_roundtrip_display;
          Alcotest.test_case "gather bounds" `Quick test_subscript_gather_bounds;
          Alcotest.test_case "layout errors" `Quick test_layout_errors;
        ] );
      ( "core",
        [
          Alcotest.test_case "pipeline names" `Quick test_pipeline_names_distinct;
          Alcotest.test_case "registry sizing" `Quick test_registry_sizing;
          Alcotest.test_case "report smoke" `Quick test_report_table_alignment;
        ] );
    ]
