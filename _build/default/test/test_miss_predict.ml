(* The analytical miss predictor is validated the way it is used: it must
   rank layouts and program versions the way the simulator does, and land
   within a coarse factor of the simulated counts. *)

open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality

let machine = Cs.Machine.ultrasparc

let check_bool = Alcotest.(check bool)

let simulated_l1_misses layout p =
  let r = Interp.run machine layout p in
  float_of_int (List.hd r.Interp.misses)

let predicted_l1_misses layout p =
  List.hd (An.Miss_predict.program_misses layout machine p)

let test_ranks_padded_vs_packed () =
  List.iter
    (fun p ->
      let packed = Layout.initial p in
      let padded = L.Pipeline.layout_for machine L.Pipeline.Pad_l1 p in
      let pred_packed = predicted_l1_misses packed p in
      let pred_padded = predicted_l1_misses padded p in
      let sim_packed = simulated_l1_misses packed p in
      let sim_padded = simulated_l1_misses padded p in
      (* the simulator says padding helps; the predictor must agree *)
      check_bool (p.Program.name ^ ": simulator prefers padded") true
        (sim_padded < sim_packed);
      check_bool (p.Program.name ^ ": predictor prefers padded") true
        (pred_padded < pred_packed))
    [ K.Paper_examples.figure2 256; K.Livermore.jacobi 256; K.Livermore.expl 128 ]

let test_within_coarse_factor () =
  List.iter
    (fun (label, p, layout) ->
      let pred = predicted_l1_misses layout p in
      let sim = simulated_l1_misses layout p in
      let ratio = if sim = 0.0 then 1.0 else pred /. sim in
      check_bool
        (Printf.sprintf "%s: prediction %.0f vs simulation %.0f (ratio %.2f)"
           label pred sim ratio)
        true
        (ratio > 0.2 && ratio < 5.0))
    [
      ("jacobi padded", K.Livermore.jacobi 256,
       L.Pipeline.layout_for machine L.Pipeline.Pad_l1 (K.Livermore.jacobi 256));
      ("expl padded", K.Livermore.expl 128,
       L.Pipeline.layout_for machine L.Pipeline.Pad_l1 (K.Livermore.expl 128));
      ("dot", K.Livermore.dot 100_000, Layout.initial (K.Livermore.dot 100_000));
    ]

let test_small_footprint_cold_only () =
  (* a nest whose data fits in L1 predicts only cold misses *)
  let open Build in
  let a = arr "A" [ 128 ] in
  let i = v "i" in
  let p =
    program "tiny" [ a ]
      [ nest [ loop "t" 0 9; loop "i" 0 127 ] [ asn (w "A" [ i ]) [ r "A" [ i ] ] ] ]
  in
  let layout = Layout.initial p in
  let pred = predicted_l1_misses layout p in
  (* 128 doubles = 1024 bytes = 32 lines *)
  Alcotest.(check (float 0.01)) "cold lines" 32.0 pred

let test_l2_prediction_ordering () =
  (* on the L2 the same ordering must hold for the multi-level pass *)
  let p = K.Paper_examples.figure2 256 in
  let packed = Layout.initial p in
  let padded = L.Pipeline.layout_for machine L.Pipeline.Pad_multilevel p in
  let l2 layout = List.nth (An.Miss_predict.program_misses layout machine p) 1 in
  check_bool "L2 prediction prefers MULTILVLPAD" true (l2 padded <= l2 packed)

let () =
  Alcotest.run "miss_predict"
    [
      ( "predictor",
        [
          Alcotest.test_case "ranks padded vs packed" `Quick test_ranks_padded_vs_packed;
          Alcotest.test_case "coarse factor" `Quick test_within_coarse_factor;
          Alcotest.test_case "small footprint" `Quick test_small_footprint_cold_only;
          Alcotest.test_case "L2 ordering" `Quick test_l2_prediction_ordering;
        ] );
    ]
