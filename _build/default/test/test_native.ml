(* Tests for the native (really executed) kernels: the tiled matmul must
   compute the same product as the untiled one for every tile shape, and
   the fused EXPL update must match the separate sweeps bit-for-bit. *)

module N = Mlc_native

let test_matmul_tiled_equals_untiled () =
  let n = 48 in
  let a = N.Nat_matmul.create n and b = N.Nat_matmul.create n in
  N.Nat_matmul.random_fill ~seed:1 a;
  N.Nat_matmul.random_fill ~seed:2 b;
  let c1 = N.Nat_matmul.create n in
  N.Nat_matmul.multiply ~c:c1 ~a ~b;
  List.iter
    (fun (h, w) ->
      let c = N.Nat_matmul.create n in
      N.Nat_matmul.multiply_tiled ~h ~w ~c ~a ~b;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "tile %dx%d" h w)
        0.0
        (N.Nat_matmul.max_abs_diff c c1))
    [ (1, 1); (4, 4); (7, 5); (16, 3); (48, 48); (64, 64) ]

let prop_tiled_matmul_correct =
  QCheck.Test.make ~name:"tiled matmul = untiled for random tiles" ~count:30
    QCheck.(triple (int_range 2 24) (int_range 1 30) (int_range 1 30))
    (fun (n, h, w) ->
      let a = N.Nat_matmul.create n and b = N.Nat_matmul.create n in
      N.Nat_matmul.random_fill ~seed:3 a;
      N.Nat_matmul.random_fill ~seed:4 b;
      let c1 = N.Nat_matmul.create n and c2 = N.Nat_matmul.create n in
      N.Nat_matmul.multiply ~c:c1 ~a ~b;
      N.Nat_matmul.multiply_tiled ~h ~w ~c:c2 ~a ~b;
      N.Nat_matmul.max_abs_diff c1 c2 = 0.0)

let test_jacobi_padding_agnostic () =
  (* the same computation on padded and unpadded grids gives identical
     interior values *)
  let n = 32 in
  let run ld =
    let a = N.Nat_stencil.create ?ld n and b = N.Nat_stencil.create ?ld n in
    N.Nat_stencil.random_fill ~seed:7 b;
    (* ld only changes layout, seed fill touches padding too: refill the
       interior deterministically by (i,j) instead *)
    for j = 0 to n - 1 do
      for i = 0 to n - 1 do
        b.N.Nat_stencil.data.(i + (b.N.Nat_stencil.ld * j)) <-
          float_of_int (((i * 31) + (j * 17)) mod 97) /. 97.0
      done
    done;
    N.Nat_stencil.jacobi ~steps:3 ~a ~b;
    N.Nat_stencil.checksum b
  in
  Alcotest.(check (float 1e-12)) "padding does not change values" (run None)
    (run (Some (n + 8)))

let test_expl_fused_equals_separate () =
  let n = 64 in
  let mk seed =
    let g = N.Nat_stencil.create n in
    N.Nat_stencil.random_fill ~seed g;
    g
  in
  let run fused =
    let za = mk 1 and zb = mk 2 and zu = mk 3 and zv = mk 4 and zr = mk 5 and zz = mk 6 in
    if fused then N.Nat_stencil.expl_fused ~za ~zb ~zu ~zv ~zr ~zz
    else N.Nat_stencil.expl_separate ~za ~zb ~zu ~zv ~zr ~zz;
    ( N.Nat_stencil.checksum zu,
      N.Nat_stencil.checksum zv,
      N.Nat_stencil.checksum zr,
      N.Nat_stencil.checksum zz )
  in
  let u1, v1, r1, z1 = run false in
  let u2, v2, r2, z2 = run true in
  Alcotest.(check (float 0.0)) "zu" u1 u2;
  Alcotest.(check (float 0.0)) "zv" v1 v2;
  Alcotest.(check (float 0.0)) "zr" r1 r2;
  Alcotest.(check (float 0.0)) "zz" z1 z2

let test_column_major_layout () =
  let m = N.Nat_matmul.create 4 in
  N.Nat_matmul.set m 1 2 5.0;
  Alcotest.(check (float 0.0)) "get/set roundtrip" 5.0 (N.Nat_matmul.get m 1 2);
  Alcotest.(check (float 0.0)) "column major: (1,2) = data.(1 + 4*2)" 5.0
    m.N.Nat_matmul.data.(9)

let () =
  Alcotest.run "native"
    [
      ( "matmul",
        [
          Alcotest.test_case "tiled = untiled (fixed tiles)" `Quick
            test_matmul_tiled_equals_untiled;
          QCheck_alcotest.to_alcotest prop_tiled_matmul_correct;
          Alcotest.test_case "column-major layout" `Quick test_column_major_layout;
        ] );
      ( "stencil",
        [
          Alcotest.test_case "jacobi padding-agnostic" `Quick test_jacobi_padding_agnostic;
          Alcotest.test_case "EXPL fused = separate" `Quick test_expl_fused_equals_separate;
        ] );
    ]
