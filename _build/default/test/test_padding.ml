(* Tests for the padding algorithms: PAD, MULTILVLPAD, intra-variable
   padding, GROUPPAD, MAXPAD/L2MAXPAD — including the modular-arithmetic
   properties the paper's multi-level arguments rest on. *)

open Mlc_ir
module An = Mlc_analysis
module Cs = Mlc_cachesim
module K = Mlc_kernels
module L = Locality

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let s1 = 16 * 1024

let l1_line = 32

let l2_size = 512 * 1024

let l2_line = 64

let fig2 = K.Paper_examples.figure2 960

(* --- PAD ----------------------------------------------------------------- *)

let test_pad_eliminates_conflicts () =
  let layout = Layout.initial fig2 in
  check_bool "conflicts before" true
    (L.Pad.remaining_conflicts ~size:s1 ~line:l1_line fig2 layout <> []);
  let padded = L.Pad.apply ~size:s1 ~line:l1_line fig2 layout in
  Alcotest.(check int) "no conflicts after" 0
    (List.length (L.Pad.remaining_conflicts ~size:s1 ~line:l1_line fig2 padded))

let test_pad_uses_few_lines () =
  (* "In practice, PAD requires only a few cache lines of padding per
     variable." *)
  let layout = Layout.initial fig2 in
  let padded = L.Pad.apply ~size:s1 ~line:l1_line fig2 layout in
  List.iter
    (fun v ->
      check_bool (v ^ " pad small") true (Layout.pad_before padded v <= 8 * l1_line))
    (Layout.array_names padded)

let test_pad_idempotent () =
  let layout = Layout.initial fig2 in
  let once = L.Pad.apply ~size:s1 ~line:l1_line fig2 layout in
  let twice = L.Pad.apply ~size:s1 ~line:l1_line fig2 once in
  List.iter
    (fun v -> check_int (v ^ " unchanged") (Layout.base once v) (Layout.base twice v))
    (Layout.array_names once)

(* --- MULTILVLPAD ---------------------------------------------------------- *)

let machine = Cs.Machine.ultrasparc

let test_multilvlpad_config () =
  let size, line = L.Multilvlpad.config machine in
  check_int "S1" s1 size;
  check_int "Lmax" 64 line

let test_multilvlpad_eliminates_both_levels () =
  let layout = Layout.initial fig2 in
  let padded = L.Multilvlpad.apply machine fig2 layout in
  check_int "L1 clean" 0
    (List.length (L.Pad.remaining_conflicts ~size:s1 ~line:l1_line fig2 padded));
  check_int "L2 clean" 0
    (List.length (L.Pad.remaining_conflicts ~size:l2_size ~line:l2_line fig2 padded))

(* The modular-arithmetic heart of MULTILVLPAD: positions at least Lmax
   apart (circularly) on a cache of size S1 remain at least Lmax apart on
   a cache of size k*S1. *)
let prop_modular_spacing =
  QCheck.Test.make
    ~name:"spacing >= Lmax on S1 implies spacing >= Lmax on k*S1" ~count:2000
    QCheck.(triple (int_range 0 10_000_000) (int_range 0 10_000_000) (int_range 1 64))
    (fun (a, b, k) ->
      let lmax = 64 in
      let circ size x y =
        let d = (x - y) mod size in
        let d = if d < 0 then d + size else d in
        min d (size - d)
      in
      let d1 = circ s1 (a mod s1) (b mod s1) in
      let dk = circ (k * s1) (a mod (k * s1)) (b mod (k * s1)) in
      QCheck.assume (d1 >= lmax);
      dk >= d1 || dk >= lmax)

(* --- Intra-variable padding ----------------------------------------------- *)

let test_intra_pad_erle () =
  (* ERLE's 64x64 planes are 32K: k and k-1 planes of the same array
     collide on a 16K cache. *)
  let p = K.Livermore.erle 64 in
  let layout = Layout.initial p in
  check_bool "self conflicts before" true
    (L.Intra_pad.remaining_self_conflicts ~size:s1 ~line:l1_line p layout <> []);
  let padded = L.Intra_pad.apply ~size:s1 ~line:l1_line p layout in
  check_int "self conflicts after" 0
    (List.length (L.Intra_pad.remaining_self_conflicts ~size:s1 ~line:l1_line p padded));
  check_bool "some column padding applied" true
    (List.exists (fun v -> Layout.intra_pad padded v > 0) (Layout.array_names padded))

(* --- GROUPPAD -------------------------------------------------------------- *)

let test_grouppad_beats_pad_on_group_reuse () =
  let layout = Layout.initial fig2 in
  let pad = L.Pad.apply ~size:s1 ~line:l1_line fig2 layout in
  let gp = L.Grouppad.apply ~size:s1 ~line:l1_line fig2 layout in
  let preserved l = L.Grouppad.preserved_references ~size:s1 fig2 l in
  check_bool "grouppad >= pad" true (preserved gp >= preserved pad);
  check_bool "grouppad preserves something" true (preserved gp > 0);
  check_int "grouppad has no severe conflicts" 0
    (L.Grouppad.conflict_count ~size:s1 ~line:l1_line fig2 gp)

let test_grouppad_figure4_counts () =
  (* At the Figure 3/4 geometry (cache ~2.13 columns) at most one of the
     three first-nest arcs can be preserved, plus both B arcs of nest 2:
     3 references exploit group reuse in total, and GROUPPAD gets them. *)
  let layout = Layout.initial fig2 in
  let gp = L.Grouppad.apply ~size:s1 ~line:l1_line fig2 layout in
  check_int "three references exploit group reuse" 3
    (L.Grouppad.preserved_references ~size:s1 fig2 gp)

(* --- MAXPAD / L2MAXPAD ------------------------------------------------------ *)

let test_maxpad_spreads () =
  let layout = Layout.initial fig2 in
  let spread = L.Maxpad.apply ~size:l2_size fig2 layout in
  let positions = List.map snd (L.Maxpad.positions ~size:l2_size spread) in
  let sorted = List.sort compare positions in
  let rec min_gap acc = function
    | a :: (b :: _ as rest) -> min_gap (min acc (b - a)) rest
    | _ -> acc
  in
  let g = min_gap max_int sorted in
  (* three variables on 512K: targets 170K apart; allow slack *)
  check_bool "spread out" true (g > l2_size / 6)

let test_l2maxpad_preserves_l1_layout () =
  let layout = Layout.initial fig2 in
  let gp = L.Grouppad.apply ~size:s1 ~line:l1_line fig2 layout in
  let l2 = L.Maxpad.apply_l2 ~s1 ~l2_size fig2 gp in
  (* positions mod S1 unchanged for every array *)
  List.iter
    (fun v ->
      check_int (v ^ " L1 position kept")
        (Layout.base gp v mod s1)
        (Layout.base l2 v mod s1))
    (Layout.array_names gp);
  (* and group-reuse preservation on L1 is identical *)
  check_int "L1 preserved refs unchanged"
    (L.Grouppad.preserved_references ~size:s1 fig2 gp)
    (L.Grouppad.preserved_references ~size:s1 fig2 l2)

let test_l2maxpad_improves_l2_reuse () =
  let layout = Layout.initial fig2 in
  let gp = L.Grouppad.apply ~size:s1 ~line:l1_line fig2 layout in
  let l2 = L.Maxpad.apply_l2 ~s1 ~l2_size fig2 gp in
  let preserved l = L.Grouppad.preserved_references ~size:l2_size fig2 l in
  check_bool "L2 group reuse not worse" true (preserved l2 >= preserved gp);
  (* on the big L2 every arc should fit after spreading: all 5 arcs *)
  check_int "all arcs preserved on L2" 5 (preserved l2)

let prop_s1_multiple_pads_keep_residues =
  QCheck.Test.make ~name:"pads that are multiples of S1 keep addresses mod S1"
    ~count:200
    QCheck.(pair (int_range 0 31) (int_range 0 31))
    (fun (k1, k2) ->
      let a = Array_decl.make "A" [ 100; 100 ] in
      let b = Array_decl.make "B" [ 100; 100 ] in
      let l = Layout.of_arrays [ a; b ] in
      let l' = Layout.add_pad_before l "A" (k1 * s1) in
      let l' = Layout.add_pad_before l' "B" (k2 * s1) in
      List.for_all
        (fun v -> Layout.base l v mod s1 = Layout.base l' v mod s1)
        [ "A"; "B" ])

(* --- Pipeline ---------------------------------------------------------------- *)

let test_pipeline_strategies_run () =
  let p = K.Livermore.jacobi 128 in
  List.iter
    (fun strategy ->
      let layout = L.Pipeline.layout_for machine strategy p in
      (* the layout must still address everything in bounds *)
      check_bool
        (L.Pipeline.strategy_name strategy ^ " yields layout")
        true
        (Layout.total_bytes layout > 0))
    L.Pipeline.all

let () =
  Alcotest.run "padding"
    [
      ( "pad",
        [
          Alcotest.test_case "eliminates severe conflicts" `Quick test_pad_eliminates_conflicts;
          Alcotest.test_case "few lines of padding" `Quick test_pad_uses_few_lines;
          Alcotest.test_case "idempotent" `Quick test_pad_idempotent;
        ] );
      ( "multilvlpad",
        [
          Alcotest.test_case "config (S1, Lmax)" `Quick test_multilvlpad_config;
          Alcotest.test_case "clean on both levels" `Quick test_multilvlpad_eliminates_both_levels;
          QCheck_alcotest.to_alcotest prop_modular_spacing;
        ] );
      ( "intra",
        [ Alcotest.test_case "ERLE self conflicts" `Quick test_intra_pad_erle ] );
      ( "grouppad",
        [
          Alcotest.test_case "beats PAD on group reuse" `Quick test_grouppad_beats_pad_on_group_reuse;
          Alcotest.test_case "figure 4 counts" `Quick test_grouppad_figure4_counts;
        ] );
      ( "maxpad",
        [
          Alcotest.test_case "spreads variables" `Quick test_maxpad_spreads;
          Alcotest.test_case "L2MAXPAD keeps L1 layout" `Quick test_l2maxpad_preserves_l1_layout;
          Alcotest.test_case "L2MAXPAD improves L2 reuse" `Quick test_l2maxpad_improves_l2_reuse;
          QCheck_alcotest.to_alcotest prop_s1_multiple_pads_keep_residues;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "all strategies run" `Quick test_pipeline_strategies_run ] );
    ]
