(* Cross-cutting property tests: algebraic laws of the expression
   language, layout invariants, the LRU stack property, fusion-model
   bookkeeping invariants, and end-to-end conservation properties of the
   transformations. *)

open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality

(* --- Expr laws ------------------------------------------------------------ *)

let gen_expr =
  let open QCheck.Gen in
  let var = oneofl [ "i"; "j"; "k" ] in
  let* terms = list_size (int_range 0 4) (pair (int_range (-9) 9) var) in
  let* const = int_range (-100) 100 in
  return
    (List.fold_left
       (fun acc (c, v) -> Expr.add acc (Expr.term c v))
       (Expr.const const) terms)

let arb_expr = QCheck.make gen_expr

let env v = match v with "i" -> 3 | "j" -> -7 | "k" -> 11 | _ -> 0

let prop_add_homomorphic =
  QCheck.Test.make ~name:"eval (a+b) = eval a + eval b" ~count:300
    (QCheck.pair arb_expr arb_expr)
    (fun (a, b) -> Expr.eval env (Expr.add a b) = Expr.eval env a + Expr.eval env b)

let prop_sub_inverse =
  QCheck.Test.make ~name:"a - a = 0" ~count:300 arb_expr (fun a ->
      let z = Expr.sub a a in
      Expr.is_const z && Expr.const_part z = 0)

let prop_scale_distributes =
  QCheck.Test.make ~name:"k*(a+b) = k*a + k*b" ~count:300
    QCheck.(triple (int_range (-5) 5) arb_expr arb_expr)
    (fun (k, a, b) ->
      Expr.equal
        (Expr.scale k (Expr.add a b))
        (Expr.add (Expr.scale k a) (Expr.scale k b)))

let prop_subst_eval_coherent =
  QCheck.Test.make ~name:"eval after subst = eval with substituted env" ~count:300
    (QCheck.pair arb_expr arb_expr)
    (fun (a, replacement) ->
      let substituted = Expr.subst "i" replacement a in
      let env' v = if v = "i" then Expr.eval env replacement else env v in
      Expr.eval env substituted = Expr.eval env' a)

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"shift v d then shift v (-d) is identity" ~count:300
    (QCheck.pair arb_expr (QCheck.int_range (-20) 20))
    (fun (a, d) -> Expr.equal (Expr.shift "j" (-d) (Expr.shift "j" d a)) a)

(* --- Layout invariants ------------------------------------------------------ *)

let gen_arrays =
  let open QCheck.Gen in
  let* n = int_range 1 6 in
  let* dims = list_repeat n (int_range 1 40) in
  return
    (List.mapi
       (fun i d -> Array_decl.make (Printf.sprintf "V%d" i) [ d; (d mod 7) + 1 ])
       dims)

let prop_arrays_never_overlap =
  QCheck.Test.make ~name:"arrays never overlap under random pads" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair gen_arrays (list_size (int_range 0 6) (int_range 0 4096))))
    (fun (arrays, pads) ->
      let layout =
        List.fold_left
          (fun (layout, i) pad ->
            let names = Layout.array_names layout in
            match List.nth_opt names (i mod List.length names) with
            | Some v -> (Layout.add_pad_before layout v pad, i + 1)
            | None -> (layout, i + 1))
          (Layout.of_arrays arrays, 0)
          pads
        |> fst
      in
      let spans =
        List.map
          (fun a ->
            let b = Layout.base layout a.Array_decl.name in
            let padded = Layout.padded_decl layout a.Array_decl.name in
            (b, b + Array_decl.size_bytes padded))
          arrays
        |> List.sort compare
      in
      let rec disjoint = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && disjoint rest
        | _ -> true
      in
      disjoint spans)

let prop_address_in_bounds =
  QCheck.Test.make ~name:"element addresses stay inside the array span" ~count:200
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 20) (int_range 1 20) (int_range 0 399)))
    (fun (d1, d2, raw) ->
      let a = Array_decl.make "A" [ d1; d2 ] in
      let layout = Layout.of_arrays [ a ] in
      let i = raw mod d1 and j = raw / d1 mod d2 in
      let addr = Layout.address layout "A" [ i; j ] in
      addr >= Layout.base layout "A"
      && addr + 8 <= Layout.base layout "A" + Array_decl.size_bytes a)

(* --- LRU stack property ------------------------------------------------------ *)

(* With the same set count, every hit in a k-way LRU cache is also a hit
   in a 2k-way LRU cache (inclusion property per set). *)
let prop_lru_stack =
  QCheck.Test.make ~name:"LRU stack property: k-way hits are 2k-way hits" ~count:150
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 8191))
    (fun addrs ->
      let sets = 4 and line = 32 in
      let mk assoc =
        Cs.Level.create { Cs.Level.size = sets * line * assoc; line; assoc }
      in
      let small = mk 2 and big = mk 4 in
      List.for_all
        (fun a ->
          let h1 = Cs.Level.access small a in
          let h2 = Cs.Level.access big a in
          (not h1) || h2)
        addrs)

(* An executable-specification oracle: a set-associative LRU cache as a
   list of per-set MRU-ordered line lists.  The production Level must
   agree with it on every access for random geometries and traces. *)
module Oracle = struct
  type t = {
    line : int;
    sets : int;
    assoc : int;
    contents : int list array;  (* MRU first *)
  }

  let create ~line ~sets ~assoc = { line; sets; assoc; contents = Array.make sets [] }

  let access t addr =
    let l = addr / t.line in
    let s = l mod t.sets in
    let set = t.contents.(s) in
    let hit = List.mem l set in
    let without = List.filter (( <> ) l) set in
    let updated = l :: without in
    let updated =
      if List.length updated > t.assoc then
        List.filteri (fun i _ -> i < t.assoc) updated
      else updated
    in
    t.contents.(s) <- updated;
    hit
end

let prop_level_matches_oracle =
  QCheck.Test.make ~name:"Level agrees with the executable LRU specification"
    ~count:200
    QCheck.(
      triple
        (pair (int_range 0 2) (int_range 0 2)) (* log sets, log assoc *)
        (int_range 0 1)                        (* log line scale *)
        (list_of_size Gen.(int_range 1 300) (int_range 0 4096)))
    (fun ((log_sets, log_assoc), log_line, addrs) ->
      let sets = 1 lsl log_sets and assoc = 1 lsl log_assoc in
      let line = 16 lsl log_line in
      let level =
        Cs.Level.create { Cs.Level.size = sets * assoc * line; line; assoc }
      in
      let oracle = Oracle.create ~line ~sets ~assoc in
      List.for_all
        (fun a -> Cs.Level.access level a = Oracle.access oracle a)
        addrs)

(* --- Fusion model bookkeeping ------------------------------------------------ *)

let prop_fusion_model_totals =
  QCheck.Test.make ~name:"fusion-model classes partition the affine refs" ~count:60
    QCheck.(int_range 50 700)
    (fun n ->
      let p = K.Paper_examples.figure2 n in
      let layout = Layout.initial p in
      let counts =
        An.Fusion_model.count layout ~l1_size:(16 * 1024) p.Program.nests
      in
      let total_refs =
        List.fold_left
          (fun acc nest ->
            acc
            + List.length (List.filter Ref_.is_affine (Nest.refs nest)))
          0 p.Program.nests
      in
      counts.An.Fusion_model.register + counts.An.Fusion_model.l1_hits
      + counts.An.Fusion_model.l2_refs + counts.An.Fusion_model.memory_refs
      = total_refs)

let prop_l2maxpad_keeps_l1_residues =
  QCheck.Test.make ~name:"L2MAXPAD keeps every base's residue mod S1" ~count:30
    QCheck.(int_range 100 600)
    (fun n ->
      let p = K.Livermore.jacobi n in
      let s1 = 16 * 1024 and l2_size = 512 * 1024 in
      let gp = L.Grouppad.apply ~size:s1 ~line:32 p (Layout.initial p) in
      let l2 = L.Maxpad.apply_l2 ~s1 ~l2_size p gp in
      List.for_all
        (fun v -> Layout.base gp v mod s1 = Layout.base l2 v mod s1)
        (Layout.array_names gp))

(* --- Transformation conservation --------------------------------------------- *)

let prop_fusion_preserves_multiset =
  QCheck.Test.make ~name:"fusion preserves the access multiset" ~count:40
    QCheck.(pair (int_range 8 40) (int_range 0 2))
    (fun (n, shift) ->
      let open Build in
      let wa = arr "W" [ n; n ] and x = arr "X" [ n; n ] and y = arr "Y" [ n; n ] in
      let i = v "i" and j = v "j" in
      let hi = n - 3 in
      QCheck.assume (1 + shift <= hi);
      let n1 =
        nest [ loop "j" 1 hi; loop "i" 0 (n - 1) ]
          [ asn (w "W" [ i; j ]) [ r "X" [ i; j ] ] ]
      in
      let n2 =
        nest [ loop "j" 1 hi; loop "i" 0 (n - 1) ]
          [ asn (w "Y" [ i; j ]) [ r "W" [ i; j ] ] ]
      in
      let p = Program.make "fp" [ wa; x; y ] [ n1; n2 ] in
      let layout = Layout.initial p in
      match L.Fusion.fuse ~shift n1 n2 with
      | parts ->
          let p' = { p with Program.nests = parts } in
          let s t = Array.sort compare t; t in
          s (Interp.trace layout p) = s (Interp.trace layout p')
      | exception L.Fusion.Illegal _ -> QCheck.assume_fail ())

let prop_distribution_preserves_multiset =
  QCheck.Test.make ~name:"distribution preserves the access multiset" ~count:40
    QCheck.(int_range 8 64)
    (fun n ->
      let fig6 = K.Paper_examples.figure6_fused n in
      let nest = List.hd fig6.Program.nests in
      let parts = L.Distribution.maximal nest in
      let p' = { fig6 with Program.nests = parts } in
      let layout = Layout.initial fig6 in
      let s t = Array.sort compare t; t in
      s (Interp.trace layout fig6) = s (Interp.trace layout p'))

let prop_pad_never_creates_conflicts =
  QCheck.Test.make ~name:"PAD output has no severe conflicts (random sizes)"
    ~count:25
    QCheck.(int_range 64 600)
    (fun n ->
      let p = K.Livermore.jacobi n in
      let layout = L.Pad.apply ~size:(16 * 1024) ~line:32 p (Layout.initial p) in
      L.Pad.remaining_conflicts ~size:(16 * 1024) ~line:32 p layout = [])

let prop_interp_refs_match_static_count =
  QCheck.Test.make ~name:"simulated refs = static ref count" ~count:25
    QCheck.(int_range 16 128)
    (fun n ->
      let p = K.Livermore.expl n in
      let r = Interp.run Cs.Machine.ultrasparc (Layout.initial p) p in
      r.Interp.total_refs = Program.ref_count p)

let () =
  Alcotest.run "properties"
    [
      ( "expr",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_homomorphic;
            prop_sub_inverse;
            prop_scale_distributes;
            prop_subst_eval_coherent;
            prop_shift_roundtrip;
          ] );
      ( "layout",
        List.map QCheck_alcotest.to_alcotest
          [ prop_arrays_never_overlap; prop_address_in_bounds ] );
      ( "cache",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lru_stack; prop_level_matches_oracle ] );
      ( "models",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fusion_model_totals; prop_l2maxpad_keeps_l1_residues ] );
      ( "transforms",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fusion_preserves_multiset;
            prop_distribution_preserves_multiset;
            prop_pad_never_creates_conflicts;
            prop_interp_refs_match_static_count;
          ] );
    ]
