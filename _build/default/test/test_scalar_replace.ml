(* Scalar replacement: redundant loads disappear from the reference
   stream, writes never do, and the simulated miss counts are unchanged
   in steady state (the dropped references were hits). *)

open Mlc_ir
module Cs = Mlc_cachesim
module K = Mlc_kernels
module L = Locality

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let test_duplicates_dropped () =
  (* the fused Figure 6 body has three duplicate reads *)
  let fig6 = K.Paper_examples.figure6_fused 64 in
  let nest = List.hd fig6.Program.nests in
  let replaced = L.Scalar_replace.apply ~max_distance:0 nest in
  check_int "three registers" 3 (L.Scalar_replace.removed ~before:nest ~after:replaced)

let test_rotation_on_stencil () =
  (* B(i-1,j), B(i+1,j) along inner i: B(i-1) and B(i) rotate out of
     B(i+1)'s loads; the j-direction neighbours have no innermost-loop
     partner and stay. *)
  let p = K.Livermore.jacobi 64 in
  let nest = List.hd p.Program.nests in
  let replaced = L.Scalar_replace.apply ~max_distance:2 nest in
  check_int "one rotated load" 1
    (L.Scalar_replace.removed ~before:nest ~after:replaced);
  let names r = r.Ref_.array in
  let remaining = List.map names (Nest.refs replaced) in
  check_int "write kept" 1
    (List.length (List.filter Ref_.is_write (Nest.refs replaced)));
  check_int "three B reads and the A write" 4 (List.length remaining)

let test_writes_never_removed () =
  let open Build in
  let a = arr "A" [ 32 ] in
  ignore a;
  let i = v "i" in
  let nest_dup =
    nest [ loop "i" 0 31 ]
      [
        asn (w "A" [ i ]) [ r "A" [ i ] ];
        asn (w "A" [ i ]) [ r "A" [ i ] ];
      ]
  in
  let replaced = L.Scalar_replace.apply nest_dup in
  check_int "both writes kept" 2
    (List.length (List.filter Ref_.is_write (Nest.refs replaced)));
  (* the second read is a duplicate; the first read survives *)
  check_int "one read kept" 1
    (List.length (List.filter (fun r -> not (Ref_.is_write r)) (Nest.refs replaced)))

let test_misses_preserved () =
  (* on a conflict-free (padded) layout the removed loads were genuine
     hits, so miss counts with and without scalar replacement agree
     (steady state; small boundary slack allowed).  On a thrashing
     packed layout removal would legitimately reduce misses. *)
  let machine = Cs.Machine.ultrasparc in
  List.iter
    (fun p ->
      let p' = L.Scalar_replace.apply_program p in
      let layout = L.Pipeline.layout_for machine L.Pipeline.Pad_l1 p in
      let r = Interp.run machine layout p in
      let r' = Interp.run machine layout p' in
      check_bool
        (Printf.sprintf "%s: misses %d vs %d" p.Program.name
           (List.hd r.Interp.misses) (List.hd r'.Interp.misses))
        true
        (abs (List.hd r.Interp.misses - List.hd r'.Interp.misses)
        < List.hd r.Interp.misses / 20
          + 64);
      check_bool "fewer refs" true
        (r'.Interp.total_refs <= r.Interp.total_refs))
    [ K.Livermore.jacobi 128; K.Paper_examples.figure6_fused 128 ]

let test_downward_loop_direction () =
  let open Build in
  let a = arr "A" [ 64 ] and b = arr "B" [ 64 ] in
  ignore (a, b);
  let i = v "i" in
  (* downward loop: A(i+1) was touched one iteration earlier *)
  let nest_down =
    Nest.make
      [ Loop.make ~step:(-1) "i" ~lo:(c 62) ~hi:(c 0) ]
      [ asn (w "B" [ i ]) [ r "A" [ i ]; r "A" [ i +! 1 ] ] ]
  in
  let replaced = L.Scalar_replace.apply nest_down in
  (* A(i+1) equals previous iteration's A(i): dropped *)
  check_int "rotated on downward loop" 1
    (L.Scalar_replace.removed ~before:nest_down ~after:replaced)

let () =
  Alcotest.run "scalar_replace"
    [
      ( "pass",
        [
          Alcotest.test_case "duplicates" `Quick test_duplicates_dropped;
          Alcotest.test_case "stencil rotation" `Quick test_rotation_on_stencil;
          Alcotest.test_case "writes kept" `Quick test_writes_never_removed;
          Alcotest.test_case "misses preserved" `Quick test_misses_preserved;
          Alcotest.test_case "downward loops" `Quick test_downward_loop_direction;
        ] );
    ]
