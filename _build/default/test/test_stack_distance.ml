(* Stack-distance analysis: checked against direct simulation of fully
   associative LRU caches — the defining property of the method. *)

module Cs = Mlc_cachesim

let check_int = Alcotest.(check int)

let test_simple_trace () =
  (* lines: a b a c b a  (line = 32 bytes) *)
  let trace = [| 0; 32; 0; 64; 32; 0 |] in
  let sd = Cs.Stack_distance.analyze ~line:32 trace in
  check_int "total" 6 (Cs.Stack_distance.total sd);
  check_int "cold" 3 (Cs.Stack_distance.cold sd);
  (* distances: a@2 -> 1 other (b); b@4 -> 2 others (a, c); a@5 -> 2 (c, b) *)
  Alcotest.(check (list (pair int int)))
    "histogram"
    [ (1, 1); (2, 2) ]
    (Cs.Stack_distance.histogram sd);
  (* capacity 2 lines: hits need d+1 <= 2: only the first reuse hits *)
  check_int "misses at 2 lines" 5 (Cs.Stack_distance.misses_at sd ~lines:2);
  check_int "misses at 3 lines" 3 (Cs.Stack_distance.misses_at sd ~lines:3);
  check_int "misses at 1 line" 6 (Cs.Stack_distance.misses_at sd ~lines:1)

let fully_assoc_misses ~line ~lines trace =
  let level = Cs.Level.create { Cs.Level.size = line * lines; line; assoc = lines } in
  Array.iter (fun a -> ignore (Cs.Level.access level a)) trace;
  (Cs.Level.stats level).Cs.Stats.misses

let prop_matches_lru_simulation =
  QCheck.Test.make
    ~name:"misses_at = fully-associative LRU simulation (all capacities)"
    ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 300) (int_range 0 4000))
        (int_range 1 5))
    (fun (addrs, log_lines) ->
      let trace = Array.of_list addrs in
      let lines = 1 lsl log_lines in
      let sd = Cs.Stack_distance.analyze ~line:32 trace in
      Cs.Stack_distance.misses_at sd ~lines
      = fully_assoc_misses ~line:32 ~lines trace)

let prop_curve_monotone =
  QCheck.Test.make ~name:"miss curve is non-increasing in capacity" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 10_000))
    (fun addrs ->
      let sd = Cs.Stack_distance.analyze (Array.of_list addrs) in
      let curve =
        Cs.Stack_distance.miss_curve sd ~capacities:[ 1; 2; 4; 8; 16; 32; 64 ]
      in
      let rec mono = function
        | (_, m1) :: ((_, m2) :: _ as rest) -> m1 >= m2 && mono rest
        | _ -> true
      in
      mono curve)

let prop_cold_equals_distinct_lines =
  QCheck.Test.make ~name:"cold misses = distinct lines" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 10_000))
    (fun addrs ->
      let sd = Cs.Stack_distance.analyze ~line:32 (Array.of_list addrs) in
      let distinct = List.sort_uniq compare (List.map (fun a -> a / 32) addrs) in
      Cs.Stack_distance.cold sd = List.length distinct)

let test_kernel_curve_brackets_levels () =
  (* EXPL's reuse is bracketed by the two cache levels: a 16K-worth of
     lines holds much less of the reuse than a 512K-worth. *)
  let p = Mlc_kernels.Livermore.expl 128 in
  let layout = Mlc_ir.Layout.initial p in
  let trace = Mlc_ir.Interp.trace layout p in
  let sd = Cs.Stack_distance.analyze ~line:32 trace in
  let m16k = Cs.Stack_distance.misses_at sd ~lines:(16 * 1024 / 32) in
  let m512k = Cs.Stack_distance.misses_at sd ~lines:(512 * 1024 / 32) in
  Alcotest.(check bool) "bigger cache catches more reuse" true (m512k < m16k);
  Alcotest.(check bool) "cold below both" true (Cs.Stack_distance.cold sd <= m512k)

let () =
  Alcotest.run "stack_distance"
    [
      ( "unit",
        [
          Alcotest.test_case "simple trace" `Quick test_simple_trace;
          Alcotest.test_case "kernel curve brackets levels" `Quick
            test_kernel_curve_brackets_levels;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_lru_simulation;
            prop_curve_monotone;
            prop_cold_equals_distinct_lines;
          ] );
    ]
