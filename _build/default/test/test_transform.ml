(* Tests for the loop transformations: permutation, reversal,
   strip-mining, tiling (+ tile-size selection), and fusion. *)

open Mlc_ir
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let sorted_trace layout p =
  let t = Interp.trace layout p in
  Array.sort compare t;
  t

(* --- Permute ------------------------------------------------------------ *)

let test_permute_figure1 () =
  let p = K.Paper_examples.figure1 ~n:8 ~m:8 in
  let nest = List.hd p.Program.nests in
  let permuted = L.Permute.apply nest [ "i"; "j" ] in
  Alcotest.(check (list string)) "order" [ "i"; "j" ] (Nest.vars permuted);
  (* same multiset of addresses *)
  let layout = Layout.initial p in
  let p' = Program.set_nest p 0 permuted in
  Alcotest.(check (array int)) "same accesses"
    (sorted_trace layout p) (sorted_trace layout p')

let test_permute_rejects_non_permutation () =
  let p = K.Paper_examples.figure1 ~n:8 ~m:8 in
  let nest = List.hd p.Program.nests in
  (match L.Permute.apply nest [ "i"; "i" ] with
  | exception L.Permute.Illegal _ -> ()
  | _ -> Alcotest.fail "expected Illegal");
  match L.Permute.apply nest [ "i" ] with
  | exception L.Permute.Illegal _ -> ()
  | _ -> Alcotest.fail "expected Illegal"

let test_permute_rejects_dependence_violation () =
  let open Build in
  let a = arr "A" [ 8; 8 ] in
  let i = v "i" and j = v "j" in
  let nest_skewed =
    nest [ loop "i" 1 7; loop "j" 0 6 ]
      [ asn (w "A" [ i; j ]) [ r "A" [ i -! 1; j +! 1 ] ] ]
  in
  let p = program "skew" [ a ] [ nest_skewed ] in
  ignore p;
  match L.Permute.apply nest_skewed [ "j"; "i" ] with
  | exception L.Permute.Illegal _ -> ()
  | _ -> Alcotest.fail "expected Illegal"

let test_permute_optimize_picks_unit_stride () =
  let p = K.Paper_examples.figure1 ~n:64 ~m:64 in
  let layout = Layout.initial p in
  let nest = List.hd p.Program.nests in
  let best = L.Permute.optimize layout ~line:32 nest in
  Alcotest.(check (list string)) "j innermost" [ "i"; "j" ] (Nest.vars best)

(* --- Reverse ------------------------------------------------------------ *)

let test_reverse_roundtrip () =
  let open Build in
  let a = arr "A" [ 16 ] in
  let i = v "i" in
  let n1 = nest [ loop "i" 0 15 ] [ asn (w "A" [ i ]) [ r "A" [ i ] ] ] in
  let p = program "rev" [ a ] [ n1 ] in
  let layout = Layout.initial p in
  let reversed = L.Reverse.apply n1 "i" in
  let p' = Program.set_nest p 0 reversed in
  let t = Interp.trace layout p and t' = Interp.trace layout p' in
  check_int "same length" (Array.length t) (Array.length t');
  Alcotest.(check (array int)) "reversed order"
    (Array.of_list (List.rev (Array.to_list t)))
    t'

let test_reverse_rejects_carried_dep () =
  let open Build in
  let _a = arr "A" [ 16 ] in
  let i = v "i" in
  let n1 =
    nest [ loop "i" 1 15 ] [ asn (w "A" [ i ]) [ r "A" [ i -! 1 ] ] ]
  in
  match L.Reverse.apply n1 "i" with
  | exception L.Reverse.Illegal _ -> ()
  | _ -> Alcotest.fail "expected Illegal"

(* --- Strip-mine / Tiling -------------------------------------------------- *)

let test_strip_mine_exact_cover () =
  let open Build in
  let a = arr "A" [ 20 ] in
  let i = v "i" in
  let n1 = nest [ loop "i" 0 19 ] [ asn (w "A" [ i ]) [ r "A" [ i ] ] ] in
  let p = program "sm" [ a ] [ n1 ] in
  let layout = Layout.initial p in
  (* width 7 does not divide 20: the clamp matters *)
  let stripped = L.Strip_mine.apply n1 ~var:"i" ~width:7 ~strip_var:"ii" in
  let p' = Program.set_nest p 0 stripped in
  Alcotest.(check (array int)) "identical access sequence"
    (Interp.trace layout p) (Interp.trace layout p')

let prop_tiling_preserves_accesses =
  QCheck.Test.make ~name:"tiled matmul touches the same multiset of addresses"
    ~count:25
    QCheck.(triple (int_range 4 10) (int_range 1 5) (int_range 1 5))
    (fun (n, h, w) ->
      let orig = L.Tiling.matmul n in
      let tiled = L.Tiling.tiled_matmul ~n ~h ~w in
      let layout = Layout.initial orig in
      sorted_trace layout orig = sorted_trace layout tiled)

let test_tiled_matmul_shape () =
  let tiled = L.Tiling.tiled_matmul ~n:16 ~h:4 ~w:2 in
  let nest = List.hd tiled.Program.nests in
  Alcotest.(check (list string)) "figure 8 loop order"
    [ "KK"; "II"; "J"; "K"; "I" ] (Nest.vars nest);
  check_int "same flops as untiled" (Program.flop_count (L.Tiling.matmul 16))
    (Program.flop_count tiled)

(* --- Tile size selection --------------------------------------------------- *)

let test_euclid_chain () =
  (* gcd-style remainder chain *)
  Alcotest.(check (list int)) "chain" [ 100; 30; 10 ]
    (L.Tile_size.euclid_chain ~cache_elems:100 ~col_elems:330);
  Alcotest.(check (list int)) "aligned column" [ 128 ]
    (L.Tile_size.euclid_chain ~cache_elems:128 ~col_elems:256)

let test_conflict_free_width () =
  (* cache 64 elems, columns of 48: positions 0,48,32,16 -> with height 16
     all 4 columns tile the cache exactly *)
  check_int "width at h=16" 4
    (L.Tile_size.max_conflict_free_width ~cache_elems:64 ~col_elems:48 ~height:16
       ~max_width:8);
  (* height 17 cannot even fit two columns *)
  check_int "width at h=17" 1
    (L.Tile_size.max_conflict_free_width ~cache_elems:64 ~col_elems:48 ~height:17
       ~max_width:8)

let prop_selected_tiles_conflict_free =
  QCheck.Test.make ~name:"selected tiles have no self-interference" ~count:200
    QCheck.(pair (int_range 65 2000) (int_range 1 4))
    (fun (col, k) ->
      let cache_bytes = 16 * 1024 * k in
      let tile =
        L.Tile_size.select ~cache_bytes ~elem:8 ~col_elems:col ~rows:col ()
      in
      let cache_elems = cache_bytes / 8 in
      tile.L.Tile_size.height >= 1 && tile.L.Tile_size.width >= 1
      && L.Tile_size.max_conflict_free_width ~cache_elems ~col_elems:col
           ~height:tile.L.Tile_size.height ~max_width:tile.L.Tile_size.width
         >= tile.L.Tile_size.width)

let test_alternative_tile_algorithms () =
  let elem = 8 and cache = 16 * 1024 in
  List.iter
    (fun n ->
      let cache_elems = cache / elem in
      let check_tile label (t : L.Tile_size.tile) =
        check_bool
          (Printf.sprintf "%s %dx%d at n=%d conflict-free" label
             t.L.Tile_size.height t.L.Tile_size.width n)
          true
          (t.L.Tile_size.height >= 1 && t.L.Tile_size.width >= 1
          && L.Tile_size.max_conflict_free_width ~cache_elems ~col_elems:n
               ~height:t.L.Tile_size.height ~max_width:t.L.Tile_size.width
             >= t.L.Tile_size.width
          && L.Tile_size.footprint_bytes ~elem t <= cache)
      in
      let lrw = L.Tile_size.lrw ~cache_bytes:cache ~elem ~col_elems:n ~rows:n in
      let tss = L.Tile_size.tss ~cache_bytes:cache ~elem ~col_elems:n ~rows:n in
      check_tile "LRW" lrw;
      check_tile "TSS" tss;
      check_bool "LRW is square" true
        (lrw.L.Tile_size.height = lrw.L.Tile_size.width);
      (* TSS maximizes area: at least as big as the square *)
      check_bool "TSS area >= LRW area" true
        (tss.L.Tile_size.height * tss.L.Tile_size.width
        >= lrw.L.Tile_size.height * lrw.L.Tile_size.width))
    [ 100; 200; 300; 301; 400; 511 ]

let test_assoc_aware_pad () =
  let p = K.Paper_examples.figure2 256 in
  let layout = Layout.initial p in
  (* with assoc 1 it behaves like PAD: no set holds >= 1 foreign ref *)
  let a1 = L.Pad.apply_assoc ~size:(16 * 1024) ~line:32 ~assoc:1 p layout in
  check_int "assoc-1 leaves no severe conflicts" 0
    (List.length (L.Pad.remaining_conflicts ~size:(16 * 1024) ~line:32 p a1));
  (* higher associativity demands less padding *)
  let a2 = L.Pad.apply_assoc ~size:(16 * 1024) ~line:32 ~assoc:2 p layout in
  let total_pad l =
    List.fold_left (fun acc v -> acc + Layout.pad_before l v) 0 (Layout.array_names l)
  in
  check_bool "2-way needs no more padding than 1-way" true
    (total_pad a2 <= total_pad a1)

let prop_l1_clean_implies_l2_clean =
  (* the paper's Section 5 modular-arithmetic claim *)
  QCheck.Test.make ~name:"no L1 self-interference implies none on k*S1" ~count:200
    QCheck.(pair (int_range 65 4000) (int_range 2 32))
    (fun (col, k) ->
      let s1_elems = 2048 in
      let tile =
        L.Tile_size.select ~cache_bytes:(s1_elems * 8) ~elem:8 ~col_elems:col
          ~rows:col ()
      in
      L.Tile_size.no_l2_interference ~s1_elems ~k ~col_elems:col tile)

(* --- Fusion ------------------------------------------------------------------ *)

let test_fuse_figure2_matches_figure6 () =
  let fig2 = K.Paper_examples.figure2 64 in
  let fig6 = K.Paper_examples.figure6_fused 64 in
  match fig2.Program.nests with
  | [ n1; n2 ] ->
      (match L.Fusion.fuse ~shift:0 n1 n2 with
      | [ core ] ->
          let fused_p = { fig2 with Program.nests = [ core ] } in
          let layout = Layout.initial fig2 in
          Alcotest.(check (array int)) "same trace as figure 6"
            (Interp.trace layout fig6) (Interp.trace layout fused_p)
      | _ -> Alcotest.fail "expected a single fused nest")
  | _ -> Alcotest.fail "figure2 must have two nests"

let test_fuse_with_shift_peels () =
  let open Build in
  let n = 16 in
  let wa = arr "W" [ n; n ] and x = arr "X" [ n; n ] and y = arr "Y" [ n; n ] in
  let i = v "i" and j = v "j" in
  (* nest2 reads W(i,j+1): needs shift 1 *)
  let n1 =
    nest [ loop "j" 1 (n - 3); loop "i" 0 (n - 1) ]
      [ asn (w "W" [ i; j ]) [ r "X" [ i; j ] ] ]
  in
  let n2 =
    nest [ loop "j" 1 (n - 3); loop "i" 0 (n - 1) ]
      [ asn (w "Y" [ i; j ]) [ r "W" [ i; j +! 1 ] ] ]
  in
  let p = program "shifted" [ wa; x; y ] [ n1; n2 ] in
  let layout = Layout.initial p in
  check_bool "shift 0 illegal" false (An.Dependence.fusion_legal ~shift:0 n1 n2);
  let parts = L.Fusion.fuse ~shift:1 n1 n2 in
  check_int "prologue + core + epilogue" 3 (List.length parts);
  let p' = { p with Program.nests = parts } in
  (* every original address count is preserved *)
  Alcotest.(check (array int)) "same multiset of accesses"
    (sorted_trace layout p) (sorted_trace layout p');
  (* and the write of W(i,j+1) now precedes its read in program order *)
  check_bool "fused program validates" true (Validate.check p' = [])

let test_fuse_program_auto_shift () =
  let open Build in
  let n = 12 in
  let wa = arr "W" [ n; n ] and x = arr "X" [ n; n ] and y = arr "Y" [ n; n ] in
  let i = v "i" and j = v "j" in
  let n1 =
    nest [ loop "j" 1 (n - 3); loop "i" 0 (n - 1) ]
      [ asn (w "W" [ i; j ]) [ r "X" [ i; j ] ] ]
  in
  let n2 =
    nest [ loop "j" 1 (n - 3); loop "i" 0 (n - 1) ]
      [ asn (w "Y" [ i; j ]) [ r "W" [ i; j +! 1 ] ] ]
  in
  let p = program "auto" [ wa; x; y ] [ n1; n2 ] in
  let fused = L.Fusion.fuse_program p 0 in
  let layout = Layout.initial p in
  Alcotest.(check (array int)) "accesses preserved"
    (sorted_trace layout p) (sorted_trace layout fused)

let test_fusion_auto_optimizer () =
  let machine = Mlc_cachesim.Machine.ultrasparc in
  (* Figure 2 fuses profitably (the Section 4 example) *)
  let fig2 = K.Paper_examples.figure2 960 in
  let fused, log = L.Fusion.optimize_program machine fig2 in
  check_int "figure 2 collapses to one nest" 1 (List.length fused.Program.nests);
  check_bool "log mentions the fusion" true
    (List.exists
       (fun l ->
         String.length l >= 5
         && List.exists
              (fun i -> i + 5 <= String.length l && String.sub l i 5 = "fused")
              (List.init (String.length l - 4) (fun i -> i)))
       log);
  (* two nests over unrelated arrays: legal but no reuse to gain, so the
     optimizer leaves them alone *)
  let open Build in
  let a = arr "A" [ 64; 64 ] and b = arr "B" [ 64; 64 ] in
  let i = v "i" and j = v "j" in
  let mk name =
    nest [ loop "j" 1 62; loop "i" 0 63 ]
      [ asn (w name [ i; j ]) [ r name [ i; j -! 1 ] ] ]
  in
  let p = program "disjoint" [ a; b ] [ mk "A"; mk "B" ] in
  let fused2, _ = L.Fusion.optimize_program machine p in
  check_int "disjoint nests not fused" 2 (List.length fused2.Program.nests);
  (* the fused figure 2 behaves identically to the hand-fused version *)
  let layout = Layout.initial fig2 in
  Alcotest.(check (array int)) "same accesses as figure 6"
    (sorted_trace layout (K.Paper_examples.figure6_fused 960))
    (sorted_trace layout fused)

let test_fusion_rejects_impossible () =
  let open Build in
  let n = 8 in
  let wa = arr "W" [ n ] in
  let i = v "i" in
  (* nest2 reads W(7 - i): no constant distance -> Unknown -> reject *)
  let n1 = nest [ loop "i" 0 (n - 1) ] [ asn (w "W" [ i ]) [ r "W" [ i ] ] ] in
  let n2 =
    nest [ loop "i" 0 (n - 1) ]
      [ asn (w "W" [ i ]) [ r "W" [ Expr.sub (c (n - 1)) i ] ] ]
  in
  ignore wa;
  match L.Fusion.fuse ~shift:0 n1 n2 with
  | exception L.Fusion.Illegal _ -> ()
  | _ -> Alcotest.fail "expected Illegal"

let () =
  Alcotest.run "transform"
    [
      ( "permute",
        [
          Alcotest.test_case "figure 1" `Quick test_permute_figure1;
          Alcotest.test_case "rejects non-permutation" `Quick test_permute_rejects_non_permutation;
          Alcotest.test_case "rejects dependence violation" `Quick
            test_permute_rejects_dependence_violation;
          Alcotest.test_case "optimize picks unit stride" `Quick
            test_permute_optimize_picks_unit_stride;
        ] );
      ( "reverse",
        [
          Alcotest.test_case "roundtrip" `Quick test_reverse_roundtrip;
          Alcotest.test_case "rejects carried dep" `Quick test_reverse_rejects_carried_dep;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "strip-mine exact cover" `Quick test_strip_mine_exact_cover;
          Alcotest.test_case "figure 8 shape" `Quick test_tiled_matmul_shape;
          QCheck_alcotest.to_alcotest prop_tiling_preserves_accesses;
        ] );
      ( "tile_size",
        [
          Alcotest.test_case "euclid chain" `Quick test_euclid_chain;
          Alcotest.test_case "conflict-free width" `Quick test_conflict_free_width;
          Alcotest.test_case "LRW and TSS" `Quick test_alternative_tile_algorithms;
          Alcotest.test_case "assoc-aware PAD" `Quick test_assoc_aware_pad;
          QCheck_alcotest.to_alcotest prop_selected_tiles_conflict_free;
          QCheck_alcotest.to_alcotest prop_l1_clean_implies_l2_clean;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "figure 2 fuses to figure 6" `Quick test_fuse_figure2_matches_figure6;
          Alcotest.test_case "shift + peel" `Quick test_fuse_with_shift_peels;
          Alcotest.test_case "auto shift" `Quick test_fuse_program_auto_shift;
          Alcotest.test_case "auto optimizer" `Quick test_fusion_auto_optimizer;
          Alcotest.test_case "rejects impossible" `Quick test_fusion_rejects_impossible;
        ] );
    ]
