(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6).

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- figure9   -- one artifact
     dune exec bench/main.exe -- fast      -- reduced sweeps

   Every simulation cell is submitted as a job to the parallel experiment
   engine (lib/engine): jobs fan out over a domain pool and land in a
   content-addressed result cache, so re-runs are nearly free and
   `--jobs N` scales the sweep across cores.  Results are merged in
   submission order, so stdout is byte-identical for any job count; all
   timing and progress output goes to stderr.

     --jobs N     worker domains (default: the machine's core count)
     --no-cache   bypass the on-disk result cache
     --cache-dir D  cache directory (default _mlc_cache, or MLC_CACHE_DIR)

   Sections:
     table1   - the program inventory (Table 1)
     figure9  - PAD vs MULTILVLPAD: miss rates + model-time improvements
     figure10 - GROUPPAD vs GROUPPAD+L2MAXPAD on the group-reuse programs
     figure11 - miss rates over problem sizes 250-520 (EXPL, SHAL)
     figure12 - change in L2/memory refs and miss rates from fusion (EXPL)
     figure13 - MFLOPS of tiled matrix multiply over matrix sizes
     predict  - analytical miss prediction vs the simulator
     ablation - extra studies (associativity, 3-level hierarchy,
                Song-Li time tiling, write policy, footnote-1 prefetch)
     bechamel - real wall-clock timings of the native kernels (opt-in:
                run `bench/main.exe -- bechamel`; excluded from the
                default set because measured times are nondeterministic)

   A machine-readable record of the run (wall time per section, jobs/sec,
   cache hit rate) is written to BENCH_engine.json.

   Simulated "execution time" uses the UltraSparc-flavoured cost model
   (see DESIGN.md): the paper's own conclusion — miss-rate wins rarely
   move wall-clock time — shows up as small percentages here too. *)

open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality
module E = Mlc_engine
module Obs = Mlc_obs.Obs

let machine = Cs.Machine.ultrasparc

let fast = ref false

(* --- engine context ----------------------------------------------------- *)

let jobs = ref (E.Pool.default_jobs ())

(* Simulator backend for every submitted job (--backend).  Fast is the
   default; the differential suite and the fastsim section hold the two
   backends to identical results. *)
let backend = ref `Fast

let use_cache = ref true

let cache_dir = ref None

(* Per-job retry budget (--retries); transient failures back off and
   retry, surfacing in the engine.retries counter. *)
let retries = ref 0

let cache = ref None

let progress = ref None

(* Observability: one buffer for the whole run (--trace/--metrics); the
   engine merges per-job buffers into it deterministically. *)
let obs : Obs.Buf.t option ref = ref None

let trace_path : string option ref = ref None

let want_metrics = ref false

let submit specs =
  E.Engine.run ?cache:!cache ?progress:!progress ?obs:!obs
    ~retry:(E.Fault.policy ~retries:!retries ()) ~jobs:!jobs
    (Array.of_list
       (List.map (fun spec -> { spec with E.Job.backend = !backend }) specs))

(* Adapter: engine results into the reporting helpers' outcome type. *)
let outcome label (r : E.Job.result) =
  { L.Experiment.label; result = r.E.Job.interp }

let mrate (r : E.Job.result) level =
  L.Experiment.miss_rate_pct (outcome "" r) level

let dtime ~baseline r =
  L.Experiment.time_improvement ~baseline:(outcome "" baseline) (outcome "" r)

let strategy s = E.Job.Strategy s

(* ----------------------------------------------------------------- *)
(* Table 1                                                            *)
(* ----------------------------------------------------------------- *)

let table1 () =
  let rows =
    List.map
      (fun (e : K.Registry.entry) ->
        let p = e.K.Registry.build () in
        [
          e.K.Registry.name;
          e.K.Registry.description;
          K.Registry.category_name e.K.Registry.category;
          string_of_int e.K.Registry.paper_lines;
          string_of_int (List.length p.Program.arrays);
          string_of_int (List.length p.Program.nests);
        ])
      K.Registry.all
  in
  L.Report.table ~title:"Table 1: test programs"
    ~columns:[ "Program"; "Description"; "Suite"; "Paper LoC"; "Arrays"; "Nests" ]
    rows

(* ----------------------------------------------------------------- *)
(* Figure 9: PAD and MULTILVLPAD                                      *)
(* ----------------------------------------------------------------- *)

let fig9_size name =
  let shrink n = max 64 (n / 4) in
  if not !fast then None
  else
    match name with
    | "EXPL512" | "JACOBI512" | "SHAL512" | "HYDRO2D" | "SWIM" ->
        Some (shrink 512)
    | "ADI32" -> Some 128
    | "LINPACKD" -> Some 128
    | "IRR500K" -> Some 100_000
    | "BUK" | "EMBAR" -> Some 250_000
    | "CGM" -> Some 20_000
    | "FFTPDE" -> Some 65_536
    | _ -> None

let figure9 () =
  let strategies =
    [ L.Pipeline.Original; L.Pipeline.Pad_l1; L.Pipeline.Pad_multilevel ]
  in
  let programs =
    List.map
      (fun (e : K.Registry.entry) ->
        ( String.lowercase_ascii e.K.Registry.name,
          E.Job.Registry { name = e.K.Registry.name; n = fig9_size e.K.Registry.name } ))
      K.Registry.all
  in
  let results =
    submit
      (List.concat_map
         (fun (_, p) ->
           List.map (fun s -> E.Job.simulate ~layout:(strategy s) p) strategies)
         programs)
  in
  let rows =
    List.mapi
      (fun i (name, _) ->
        let orig = results.(3 * i)
        and l1 = results.((3 * i) + 1)
        and both = results.((3 * i) + 2) in
        [
          name;
          L.Report.pct (mrate orig 0);
          L.Report.pct (mrate l1 0);
          L.Report.pct (mrate both 0);
          L.Report.pct (mrate orig 1);
          L.Report.pct (mrate l1 1);
          L.Report.pct (mrate both 1);
          L.Report.pct (dtime ~baseline:orig l1);
          L.Report.pct (dtime ~baseline:orig both);
        ])
      programs
  in
  L.Report.table
    ~title:
      "Figure 9: PAD (L1 Opt) and MULTILVLPAD (L1&L2 Opt) — miss rates and \
       model-time improvement"
    ~columns:
      [
        "program";
        "L1 Orig"; "L1 w/L1"; "L1 w/L1&L2";
        "L2 Orig"; "L2 w/L1"; "L2 w/L1&L2";
        "dT w/L1"; "dT w/L1&L2";
      ]
    rows;
  print_endline
    "\nExpected shape (paper): L1-only PAD already recovers most of the L2\n\
     miss-rate reduction; MULTILVLPAD is only slightly better on L2 (mostly\n\
     EXPL); L1 rates are unaffected by the L2 pass; time deltas are small."

(* ----------------------------------------------------------------- *)
(* Figure 10: GROUPPAD and L2MAXPAD                                   *)
(* ----------------------------------------------------------------- *)

let figure10 () =
  let size n = if !fast then max 64 (n / 4) else n in
  let programs =
    [
      ("expl512", E.Job.Registry { name = "EXPL512"; n = Some (size 512) });
      ("jacobi512", E.Job.Registry { name = "JACOBI512"; n = Some (size 512) });
      ("shal512", E.Job.Registry { name = "SHAL512"; n = Some (size 512) });
      ("swim", E.Job.Registry { name = "SWIM"; n = Some (size 512) });
      ("tomcatv", E.Job.Registry { name = "TOMCATV"; n = Some (size 257) });
    ]
  in
  let strategies =
    [ L.Pipeline.Original; L.Pipeline.Grouppad_l1; L.Pipeline.Grouppad_l1_l2 ]
  in
  let results =
    submit
      (List.concat_map
         (fun (_, p) ->
           List.map (fun s -> E.Job.simulate ~layout:(strategy s) p) strategies)
         programs)
  in
  let rows =
    List.mapi
      (fun i (name, _) ->
        let orig = results.(3 * i)
        and l1 = results.((3 * i) + 1)
        and both = results.((3 * i) + 2) in
        [
          name;
          L.Report.pct (mrate orig 0);
          L.Report.pct (mrate l1 0);
          L.Report.pct (mrate both 0);
          L.Report.pct (mrate orig 1);
          L.Report.pct (mrate l1 1);
          L.Report.pct (mrate both 1);
          L.Report.pct (dtime ~baseline:orig l1);
          L.Report.pct (dtime ~baseline:orig both);
        ])
      programs
  in
  L.Report.table
    ~title:
      "Figure 10: GROUPPAD (L1 Opt) with and without L2MAXPAD (L1&L2 Opt)"
    ~columns:
      [
        "program";
        "L1 Orig"; "L1 w/L1"; "L1 w/L1&L2";
        "L2 Orig"; "L2 w/L1"; "L2 w/L1&L2";
        "dT w/L1"; "dT w/L1&L2";
      ]
    rows;
  print_endline
    "\nExpected shape (paper): optimizing for the L2 cache in addition to L1\n\
     helps in few programs (EXPL benefits on L2); L1 miss rates are not\n\
     adversely affected; execution-time changes stay small."

(* ----------------------------------------------------------------- *)
(* Figure 11: problem-size sweep                                      *)
(* ----------------------------------------------------------------- *)

let sweep_one ~name ~lo ~hi ~step =
  let rec sizes n = if n > hi then [] else n :: sizes (n + step) in
  let sizes = sizes lo in
  let results =
    submit
      (List.concat_map
         (fun n ->
           let p = E.Job.Registry { name; n = Some n } in
           [
             E.Job.simulate ~layout:(strategy L.Pipeline.Grouppad_l1) p;
             E.Job.simulate ~layout:(strategy L.Pipeline.Grouppad_l1_l2) p;
           ])
         sizes)
  in
  List.mapi
    (fun i n ->
      let l1_opt = results.(2 * i) and both = results.((2 * i) + 1) in
      (n, [ mrate l1_opt 0; mrate l1_opt 1; mrate both 0; mrate both 1 ]))
    sizes

let figure11 () =
  let step = if !fast then 30 else 3 in
  let run label name =
    let points = sweep_one ~name ~lo:250 ~hi:520 ~step in
    L.Report.series
      ~title:(Printf.sprintf "Figure 11 (%s): miss rates over problem sizes" label)
      ~x_label:"N"
      ~labels:
        [ "L1 w/L1Opt"; "L2 w/L1Opt"; "L1 w/L1&L2"; "L2 w/L1&L2" ]
      points
  in
  run "EXPL" "EXPL512";
  run "SHAL" "SHAL512";
  print_endline
    "\nExpected shape (paper): L1 curves of the two versions coincide; the\n\
     L1-only version shows clusters of sizes where the L2 miss rate spikes\n\
     by a few percent; the L1&L2 version's L2 curve stays flat."

(* ----------------------------------------------------------------- *)
(* Figure 12: loop fusion on EXPL                                     *)
(* ----------------------------------------------------------------- *)

let figure12 () =
  let step = if !fast then 50 else 6 in
  let rec sizes n = if n > 700 then [] else n :: sizes (n + step) in
  (* Fusion legality is decided in the submitting domain (it is a static
     dependence test, independent of the sweep's simulation cost); the
     model accounting and both simulations run as jobs.  The paper's
     static counts compare the two original loop bodies against the fused
     body under GROUPPAD, with L2MAXPAD assumed to preserve on L2
     whatever L1 loses; peeled prologue/epilogue iterations are excluded,
     so the fused core is the nest with the largest body. *)
  let legal =
    List.filter
      (fun n ->
        match L.Fusion.fuse_program (K.Livermore.expl n) 1 with
        | exception L.Fusion.Illegal _ -> false
        | _ -> true)
      (sizes 250)
  in
  let count_layout = strategy L.Pipeline.Grouppad_l1 in
  let results =
    submit
      (List.concat_map
         (fun n ->
           let base = E.Job.Registry { name = "EXPL512"; n = Some n } in
           [
             E.Job.simulate
               ~count:(count_layout, E.Job.Nests [ 1; 2 ])
               ~layout:(strategy L.Pipeline.Grouppad_l1_l2) base;
             E.Job.simulate
               ~count:(count_layout, E.Job.Largest_body)
               ~layout:(strategy L.Pipeline.Grouppad_l1_l2)
               (E.Job.Fused { base; at = 1; max_shift = 4 });
           ])
         legal)
  in
  let points =
    List.mapi
      (fun i n ->
        let ro = results.(2 * i) and rf = results.((2 * i) + 1) in
        let co = Option.get ro.E.Job.counts
        and cf = Option.get rf.E.Job.counts in
        let d_l2 = cf.An.Fusion_model.l2_refs - co.An.Fusion_model.l2_refs in
        let d_mem =
          cf.An.Fusion_model.memory_refs - co.An.Fusion_model.memory_refs
        in
        (* Simulated miss-rate change, normalized to the original
           version's reference count as in the paper. *)
        let refs_o = float_of_int ro.E.Job.interp.Interp.total_refs in
        let miss (r : E.Job.result) i =
          float_of_int (List.nth r.E.Job.interp.Interp.misses i)
        in
        let d_l1_rate = 100.0 *. (miss rf 0 -. miss ro 0) /. refs_o in
        let d_l2_rate = 100.0 *. (miss rf 1 -. miss ro 1) /. refs_o in
        (n, [ float_of_int d_l2; float_of_int d_mem; d_l1_rate; d_l2_rate ]))
      legal
  in
  L.Report.series
    ~title:
      "Figure 12: change in L2 refs, memory refs (model) and miss rates \
       (simulated) from fusing EXPL nests 76+77"
    ~x_label:"N"
    ~labels:[ "dL2refs"; "dMemRefs"; "dL1miss%"; "dL2miss%" ]
    points;
  print_endline
    "\nExpected shape (paper): memory references drop by a constant as a\n\
     result of fusion while the change in L2 references oscillates >= 0\n\
     depending on problem size; the simulated L1 miss-rate change tracks\n\
     the L2-reference count and the L2 miss-rate change tracks the memory\n\
     reference count (flat, negative)."

(* ----------------------------------------------------------------- *)
(* Figure 13: tiled matrix multiplication                             *)
(* ----------------------------------------------------------------- *)

let tile_variants n =
  let elem = 8 in
  let l1 = 16 * 1024 and l2 = 512 * 1024 in
  let sel ~cache ~cap =
    L.Tile_size.select ~capacity_bytes:cap ~cache_bytes:cache ~elem ~col_elems:n
      ~rows:n ()
  in
  [
    ("L1", sel ~cache:l1 ~cap:l1);
    ("2xL1", sel ~cache:l2 ~cap:(2 * l1));
    ("4xL1", sel ~cache:l2 ~cap:(4 * l1));
    ("L2", sel ~cache:l2 ~cap:l2);
  ]

let figure13 () =
  let step = if !fast then 72 else 18 in
  let rec sizes n = if n > 400 then [] else n :: sizes (n + step) in
  let sizes = sizes 100 in
  let variants_per_size = 1 + List.length (tile_variants 100) in
  let results =
    submit
      (List.concat_map
         (fun n ->
           E.Job.simulate ~layout:E.Job.Initial (E.Job.Matmul { n })
           :: List.map
                (fun (_, t) ->
                  E.Job.simulate ~layout:E.Job.Initial
                    (E.Job.Tiled_matmul
                       { n; h = t.L.Tile_size.height; w = t.L.Tile_size.width }))
                (tile_variants n))
         sizes)
  in
  let points =
    List.mapi
      (fun i n ->
        ( n,
          List.init variants_per_size (fun j ->
              results.((variants_per_size * i) + j).E.Job.interp.Interp.mflops)
        ))
      sizes
  in
  L.Report.series
    ~title:
      "Figure 13: simulated MFLOPS of matrix multiply under tile-size policies"
    ~x_label:"N"
    ~labels:[ "Orig"; "L1"; "2xL1"; "4xL1"; "L2" ]
    points;
  (* also print the chosen tiles for reference *)
  let tiles_at = [ 100; 200; 300; 400 ] in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun (_, t) ->
               Printf.sprintf "%dx%d" t.L.Tile_size.height t.L.Tile_size.width)
             (tile_variants n))
      tiles_at
  in
  L.Report.table ~title:"Figure 13 (tiles chosen by eucPad-style selection)"
    ~columns:[ "N"; "L1"; "2xL1"; "4xL1"; "L2" ]
    rows;
  print_endline
    "\nExpected shape (paper): L1-sized tiles give the best and steadiest\n\
     performance; L2-sized tiles only help once matrices exceed the L2\n\
     cache and never beat L1 tiles; 2xL1/4xL1 fall in between (most L1\n\
     benefit is lost as soon as tiles exceed the L1 cache)."

(* ----------------------------------------------------------------- *)
(* Ablations beyond the paper's figures                               *)
(* ----------------------------------------------------------------- *)

let ablation () =
  (* (a) associativity: run PAD-optimized layouts on k-way machines, and
     compare the direct-mapped assumption against an explicitly
     associativity-aware PAD.  The paper's claim: treating k-way caches
     as direct-mapped loses almost nothing. *)
  let jacobi_n = if !fast then 128 else 512 in
  let jacobi = E.Job.Registry { name = "JACOBI512"; n = Some jacobi_n } in
  let s1 = Cs.Machine.s1 machine in
  let l1_line = Cs.Machine.level_line machine 0 in
  let ks = [ 1; 2; 4 ] in
  let results =
    submit
      (List.concat_map
         (fun k ->
           let m =
             { (E.Job.machine "ultrasparc") with
               E.Job.assoc = (if k = 1 then None else Some k)
             }
           in
           List.map
             (fun layout -> E.Job.simulate ~machine:m ~layout jacobi)
             [
               E.Job.Initial;
               strategy L.Pipeline.Pad_l1;
               E.Job.Pad_assoc { size = s1; line = l1_line; assoc = k };
             ])
         ks)
  in
  let rows =
    List.mapi
      (fun i k ->
        let r_orig = results.(3 * i)
        and r_pad = results.((3 * i) + 1)
        and r_assoc = results.((3 * i) + 2) in
        let rate (r : E.Job.result) =
          100.0 *. List.nth r.E.Job.interp.Interp.miss_rates 0
        in
        let cycles (r : E.Job.result) = r.E.Job.interp.Interp.cycles in
        [
          string_of_int k;
          L.Report.pct (rate r_orig);
          L.Report.pct (rate r_pad);
          L.Report.pct (rate r_assoc);
          L.Report.pct
            (Cs.Cost_model.improvement ~orig:(cycles r_orig) ~opt:(cycles r_pad));
          L.Report.pct
            (Cs.Cost_model.improvement ~orig:(cycles r_orig)
               ~opt:(cycles r_assoc));
        ])
      ks
  in
  L.Report.table
    ~title:
      "Ablation: direct-mapped PAD vs associativity-aware PAD on k-way \
       caches (JACOBI)"
    ~columns:
      [ "assoc"; "L1 Orig"; "L1 PAD(dm)"; "L1 PAD(assoc)"; "dT dm"; "dT assoc" ]
    rows;
  (* (b) three-level hierarchy: MULTILVLPAD with (S1, Lmax) on an
     Alpha-21164-style machine. *)
  let expl_n = if !fast then 128 else 512 in
  let expl = E.Job.Registry { name = "EXPL512"; n = Some expl_n } in
  let versions =
    [
      ("Orig", L.Pipeline.Original);
      ("PAD(L1)", L.Pipeline.Pad_l1);
      ("MULTILVLPAD", L.Pipeline.Pad_multilevel);
    ]
  in
  let results =
    submit
      (List.map
         (fun (_, s) ->
           E.Job.simulate ~machine:(E.Job.machine "alpha") ~layout:(strategy s)
             expl)
         versions)
  in
  let rows =
    List.mapi
      (fun i (label, _) ->
        label
        :: List.map (fun l -> L.Report.pct (mrate results.(i) l)) [ 0; 1; 2 ])
      versions
  in
  L.Report.table
    ~title:"Ablation: three-level hierarchy (8K/128K/2M), EXPL"
    ~columns:[ "version"; "L1"; "L2"; "L3" ]
    rows;
  (* (c) the Section 5 exception (Song & Li): tiling across time steps.
     The tile's working set is block+steps columns — too big for L1 at
     any block size — so the tile targets the L2 cache. *)
  let n = if !fast then 256 else 512 in
  let steps = 8 in
  let col_bytes = n * 8 in
  let l2_cols = Cs.Machine.level_size machine 1 / col_bytes in
  let blocks =
    [
      ("tiny block (L1-ish)", 1);
      ("half-L2 block", max 1 ((l2_cols / 2) - steps));
      ("over-L2 block", 2 * l2_cols);
    ]
  in
  let results =
    submit
      (E.Job.simulate ~layout:E.Job.Initial (E.Job.Time_sweep { n; steps })
      :: List.map
           (fun (_, block) ->
             E.Job.simulate ~layout:E.Job.Initial
               (E.Job.Time_tiled { n; steps; block }))
           blocks)
  in
  let per_ref (r : E.Job.result) =
    r.E.Job.interp.Interp.cycles
    /. float_of_int r.E.Job.interp.Interp.total_refs
  in
  let rows =
    [ [ "untiled sweeps"; "-"; Printf.sprintf "%.3f" (per_ref results.(0)) ] ]
    @ List.mapi
        (fun i (label, block) ->
          let cols = K.Time_kernels.tile_columns ~steps ~block in
          [
            label;
            Printf.sprintf "%d cols = %dK" cols (cols * col_bytes / 1024);
            Printf.sprintf "%.3f" (per_ref results.(i + 1));
          ])
        blocks
  in
  L.Report.table
    ~title:
      (Printf.sprintf
         "Ablation (Song & Li exception): time-step tiling of a %dx%d sweep, \
          %d steps — tile working set vs cycles/ref"
         n n steps)
    ~columns:[ "version"; "tile working set"; "cycles/ref" ]
    rows;
  print_endline
    "\nExpected shape (paper, Section 5): no time-step tile fits the L1\n\
     cache, so the tiling targets L2; blocks sized for the L2 beat both\n\
     the untiled sweeps and over-L2 blocks.";
  (* (d) write policy: the paper's simulator allocates on writes; check
     how much the policy choice moves the reported miss rates. *)
  let results =
    submit
      (List.map
         (fun write_allocate ->
           E.Job.simulate
             ~machine:
               { (E.Job.machine "ultrasparc") with
                 E.Job.write_allocate = Some write_allocate
               }
             ~layout:(strategy L.Pipeline.Pad_l1) jacobi)
         [ true; false ])
  in
  let row label (r : E.Job.result) =
    [
      label;
      L.Report.pct (100.0 *. List.nth r.E.Job.interp.Interp.miss_rates 0);
      L.Report.pct (100.0 *. List.nth r.E.Job.interp.Interp.miss_rates 1);
      string_of_int r.E.Job.interp.Interp.writebacks;
    ]
  in
  L.Report.table
    ~title:"Ablation: write policy on padded JACOBI (miss rates + writebacks)"
    ~columns:[ "policy"; "L1"; "L2"; "writebacks" ]
    [
      row "write-allocate (paper)" results.(0);
      row "no-allocate" results.(1);
    ];
  (* (e) hardware next-line prefetching — the paper's footnote 1: DOT
     improved "due to the differences in the ability of the underlying
     memory system to handle multiple outstanding cache misses, since the
     two input vectors were padded 64 instead of 32 bytes due to the
     longer L2 cache lines".  With a sequential prefetcher the mechanism
     is visible: PAD's one-line (32B) separation puts each vector's
     prefetch stream on top of the other vector's demand stream, while
     MULTILVLPAD's Lmax = 64B separation keeps the streams disjoint. *)
  let dot =
    E.Job.Registry
      { name = "DOT256"; n = Some (if !fast then 65_536 else 262_144) }
  in
  let layouts =
    [
      ("packed", E.Job.Initial);
      ("PAD (32B pads)", strategy L.Pipeline.Pad_l1);
      ("MULTILVLPAD (64B pads)", strategy L.Pipeline.Pad_multilevel);
    ]
  in
  let pf_configs = [ ("no prefetch", []); ("next-line prefetch", [ 0; 1 ]) ] in
  let results =
    submit
      (List.concat_map
         (fun (_, layout) ->
           List.map
             (fun (_, pf) ->
               E.Job.simulate
                 ~machine:
                   { (E.Job.machine "ultrasparc") with E.Job.prefetch_levels = pf }
                 ~layout dot)
             pf_configs)
         layouts)
  in
  let rows =
    List.concat
      (List.mapi
         (fun i (label, _) ->
           List.mapi
             (fun j (pf_label, _) ->
               let r = results.((2 * i) + j) in
               [
                 label ^ ", " ^ pf_label;
                 L.Report.pct
                   (100.0 *. List.nth r.E.Job.interp.Interp.miss_rates 0);
                 L.Report.pct
                   (100.0 *. List.nth r.E.Job.interp.Interp.miss_rates 1);
               ])
             pf_configs)
         layouts)
  in
  L.Report.table
    ~title:
      "Ablation (footnote 1): next-line prefetching on DOT under the three \
       layouts"
    ~columns:[ "configuration"; "L1"; "L2" ]
    rows;
  print_endline
    "\nExpected shape (paper footnote 1): prefetching cannot rescue the\n\
     packed ping-pong; under PAD's minimal 32B pads the two vectors'\n\
     prefetch and demand streams collide and prefetching helps nothing;\n\
     under MULTILVLPAD's 64B (Lmax) pads the streams are disjoint and\n\
     prefetching removes essentially every miss — the mechanism behind\n\
     the paper's DOT256 timing anomaly."

(* ----------------------------------------------------------------- *)
(* Tiling-algorithm comparison (the paper's CC'99 companion study)    *)
(* ----------------------------------------------------------------- *)

let tiles () =
  let step = if !fast then 100 else 25 in
  let rec sizes n = if n > 400 then [] else n :: sizes (n + step) in
  let sizes = sizes 100 in
  let elem = 8 and l1 = 16 * 1024 in
  let tiles_for n =
    [
      L.Tile_size.select ~cache_bytes:l1 ~elem ~col_elems:n ~rows:n ();
      L.Tile_size.lrw ~cache_bytes:l1 ~elem ~col_elems:n ~rows:n;
      L.Tile_size.tss ~cache_bytes:l1 ~elem ~col_elems:n ~rows:n;
    ]
  in
  let results =
    submit
      (List.concat_map
         (fun n ->
           List.map
             (fun (t : L.Tile_size.tile) ->
               E.Job.simulate ~layout:E.Job.Initial
                 (E.Job.Tiled_matmul { n; h = t.L.Tile_size.height; w = t.L.Tile_size.width }))
             (tiles_for n))
         sizes)
  in
  let points =
    List.mapi
      (fun i n ->
        ( n,
          List.init 3 (fun j ->
              results.((3 * i) + j).E.Job.interp.Interp.mflops) ))
      sizes
  in
  L.Report.series
    ~title:
      "Tile-size selection algorithms on L1-targeted matmul (simulated \
       MFLOPS) — euc (miss-fraction score) vs LRW (largest square) vs TSS \
       (largest area)"
    ~x_label:"N"
    ~labels:[ "euc"; "LRW"; "TSS" ]
    points;
  print_endline
    "\nExpected shape (Rivera & Tseng CC'99): all three stay within a few\n\
     MFLOPS of each other at most sizes — conflict-free tile selection\n\
     matters much more than the exact objective — with the rectangular\n\
     algorithms (euc/TSS) pulling ahead at sizes where non-conflicting\n\
     squares are forced to be tiny."

(* ----------------------------------------------------------------- *)
(* Analytical predictor vs simulator                                  *)
(* ----------------------------------------------------------------- *)

let predict () =
  let size n = if !fast then max 64 (n / 4) else n in
  let programs =
    [
      ("jacobi", E.Job.Registry { name = "JACOBI512"; n = Some (size 512) });
      ("expl", E.Job.Registry { name = "EXPL512"; n = Some (size 512) });
      ("adi", E.Job.Registry { name = "ADI32"; n = Some (size 256) });
      ("dot", E.Job.Registry { name = "DOT256"; n = Some (size 262_144) });
      ("shal", E.Job.Registry { name = "SHAL512"; n = Some (size 256) });
      ("figure2", E.Job.Paper { name = "figure2"; n = size 512 });
    ]
  in
  let versions =
    [ ("packed", L.Pipeline.Original); ("padded", L.Pipeline.Pad_l1) ]
  in
  let results =
    submit
      (List.concat_map
         (fun (_, p) ->
           List.map
             (fun (_, s) -> E.Job.simulate ~predict:true ~layout:(strategy s) p)
             versions)
         programs)
  in
  let rows =
    List.concat
      (List.mapi
         (fun i (name, _) ->
           List.mapi
             (fun j (vlabel, _) ->
               let r = results.((2 * i) + j) in
               let sim = r.E.Job.interp in
               let predicted = Option.get r.E.Job.predicted in
               let refs = float_of_int sim.Interp.total_refs in
               [
                 name ^ " " ^ vlabel;
                 L.Report.pct (100.0 *. List.hd sim.Interp.miss_rates);
                 L.Report.pct (100.0 *. List.hd predicted /. refs);
                 L.Report.f2
                   (List.hd predicted
                   /. float_of_int (max 1 (List.hd sim.Interp.misses)));
               ])
             versions)
         programs)
  in
  L.Report.table
    ~title:
      "Analytical miss prediction vs simulation (L1): the static model the \
       compiler decides with"
    ~columns:[ "program"; "L1 simulated"; "L1 predicted"; "ratio" ]
    rows;
  print_endline
    "\nThe predictor exists to rank choices the way the paper's compiler\n\
     does; ratios within a small factor of 1 and consistent orderings\n\
     (padded < packed on both columns) are the success criterion."

(* ----------------------------------------------------------------- *)
(* Bechamel: real wall-clock timings of the native kernels            *)
(* ----------------------------------------------------------------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  L.Report.section "Bechamel: native-kernel wall-clock timings";
  let run_group name tests =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows =
      Hashtbl.fold
        (fun test_name ols acc ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (x :: _) -> x
            | _ -> nan
          in
          (test_name, ns) :: acc)
        results []
      |> List.sort compare
      |> List.map (fun (test_name, ns) ->
             [ test_name; Printf.sprintf "%.3f ms/run" (ns /. 1e6) ])
    in
    L.Report.table ~title:name ~columns:[ "test"; "time" ] rows
  in
  (* Figure 13 analogue: tiling policies, really executed. *)
  let n = if !fast then 160 else 320 in
  let a = Mlc_native.Nat_matmul.create n and b = Mlc_native.Nat_matmul.create n in
  Mlc_native.Nat_matmul.random_fill ~seed:1 a;
  Mlc_native.Nat_matmul.random_fill ~seed:2 b;
  let c = Mlc_native.Nat_matmul.create n in
  let mat_test label f = Test.make ~name:label (Staged.stage f) in
  let tiles = tile_variants n in
  run_group
    (Printf.sprintf "matmul %dx%d (real time)" n n)
    (mat_test "orig" (fun () -> Mlc_native.Nat_matmul.multiply ~c ~a ~b)
    :: mat_test "orig unrolled+scalar (footnote 2)" (fun () ->
           Mlc_native.Nat_matmul.multiply_unrolled ~c ~a ~b)
    :: List.map
         (fun (label, t) ->
           mat_test
             (Printf.sprintf "%s tile %dx%d" label t.L.Tile_size.height
                t.L.Tile_size.width)
             (fun () ->
               Mlc_native.Nat_matmul.multiply_tiled ~h:t.L.Tile_size.height
                 ~w:t.L.Tile_size.width ~c ~a ~b))
         tiles);
  (* Figure 12 analogue: fused vs separate EXPL updates. *)
  let n2 = if !fast then 256 else 512 in
  let mk seed =
    let g = Mlc_native.Nat_stencil.create n2 in
    Mlc_native.Nat_stencil.random_fill ~seed g;
    g
  in
  let za = mk 1 and zb = mk 2 and zu = mk 3 and zv = mk 4 and zr = mk 5 and zz = mk 6 in
  run_group
    (Printf.sprintf "EXPL updates %dx%d (real time)" n2 n2)
    [
      mat_test "separate nests" (fun () ->
          Mlc_native.Nat_stencil.expl_separate ~za ~zb ~zu ~zv ~zr ~zz);
      mat_test "fused (shifted)" (fun () ->
          Mlc_native.Nat_stencil.expl_fused ~za ~zb ~zu ~zv ~zr ~zz);
    ];
  (* Figure 9 analogue: padded vs unpadded Jacobi columns. *)
  let n3 = if !fast then 256 else 512 in
  let mk_pair ld =
    let a = Mlc_native.Nat_stencil.create ?ld n3 in
    let b = Mlc_native.Nat_stencil.create ?ld n3 in
    Mlc_native.Nat_stencil.random_fill ~seed:3 b;
    (a, b)
  in
  let a0, b0 = mk_pair None in
  let a1, b1 = mk_pair (Some (n3 + 8)) in
  run_group
    (Printf.sprintf "jacobi %dx%d (real time)" n3 n3)
    [
      mat_test "packed columns" (fun () ->
          Mlc_native.Nat_stencil.jacobi ~steps:1 ~a:a0 ~b:b0);
      mat_test "padded columns" (fun () ->
          Mlc_native.Nat_stencil.jacobi ~steps:1 ~a:a1 ~b:b1);
    ]

(* ----------------------------------------------------------------- *)
(* fastsim: reference vs fast backend, cold, single worker            *)
(* ----------------------------------------------------------------- *)

(* Times the same cold job set on both backends (no cache, one domain,
   both hierarchy levels in play), checks the results agree exactly, and
   records the wall-clock ratio in BENCH_fastsim.json.  Wall-clock output
   is nondeterministic, so like bechamel this section only runs when
   asked for by name. *)
let fastsim_json_path = "BENCH_fastsim.json"

let fastsim () =
  let n = if !fast then 256 else 512 in
  let cases =
    [
      ("JACOBI512", L.Pipeline.Original);
      ("JACOBI512", L.Pipeline.Grouppad_l1);
      ("EXPL512", L.Pipeline.Original);
      ("EXPL512", L.Pipeline.Grouppad_l1_l2);
      ("SHAL512", L.Pipeline.Original);
    ]
  in
  let specs be =
    Array.of_list
      (List.map
         (fun (name, strat) ->
           E.Job.simulate ~backend:be
             ~machine:(E.Job.machine "ultrasparc")
             ~layout:(strategy strat)
             (E.Job.Registry { name; n = Some n }))
         cases)
  in
  let time be =
    let t0 = Unix.gettimeofday () in
    let results = E.Engine.run ~jobs:1 (specs be) in
    (Unix.gettimeofday () -. t0, results)
  in
  let t_ref, r_ref = time `Reference in
  let t_fast, r_fast = time `Fast in
  Array.iteri
    (fun i (a : E.Job.result) ->
      let b = r_fast.(i) in
      if
        not
          (a.E.Job.interp = b.E.Job.interp
          && List.for_all2 Cs.Stats.equal a.E.Job.level_stats
               b.E.Job.level_stats)
      then failwith ("fastsim: backend results differ on " ^ a.E.Job.key))
    r_ref;
  let speedup = if t_fast > 0.0 then t_ref /. t_fast else 0.0 in
  L.Report.table
    ~title:
      (Printf.sprintf
         "Fast backend vs reference (cold, 1 worker, ultrasparc, n=%d)" n)
    ~columns:[ "backend"; "wall (s)"; "speedup" ]
    [
      [ "reference"; Printf.sprintf "%.2f" t_ref; "1.00x" ];
      [ "fast"; Printf.sprintf "%.2f" t_fast; Printf.sprintf "%.2fx" speedup ];
    ];
  let total_refs =
    Array.fold_left
      (fun acc (r : E.Job.result) ->
        acc + r.E.Job.interp.Mlc_ir.Interp.total_refs)
      0 r_fast
  in
  let oc = open_out fastsim_json_path in
  Printf.fprintf oc
    "{\n  \"machine\": \"ultrasparc\",\n  \"jobs\": 1,\n  \"n\": %d,\n\
    \  \"programs\": [%s],\n  \"total_refs\": %d,\n\
    \  \"reference_wall_s\": %.3f,\n  \"fast_wall_s\": %.3f,\n\
    \  \"speedup\": %.2f\n}\n"
    n
    (String.concat ", "
       (List.map
          (fun (name, strat) ->
            Printf.sprintf "\"%s/%s\"" name (E.Job.strategy_tag strat))
          cases))
    total_refs t_ref t_fast speedup;
  close_out oc;
  Printf.eprintf "[fastsim: reference %.2fs, fast %.2fs, %.2fx -> %s]\n%!"
    t_ref t_fast speedup fastsim_json_path

let sections =
  [
    ("table1", table1);
    ("figure9", figure9);
    ("figure10", figure10);
    ("figure11", figure11);
    ("figure12", figure12);
    ("figure13", figure13);
    ("tiles", tiles);
    ("predict", predict);
    ("ablation", ablation);
    ("bechamel", bechamel);
    ("fastsim", fastsim);
  ]

(* Bechamel and fastsim measure real wall-clock time, so their output can
   never be byte-identical across runs; they only run when asked for by
   name. *)
let default_sections =
  List.filter
    (fun (name, _) -> name <> "bechamel" && name <> "fastsim")
    sections

let usage () =
  Printf.eprintf
    "usage: main.exe [fast] [--jobs N] [--retries N] [--no-cache] \
     [--cache-dir DIR] [--backend fast|reference] [--trace FILE] \
     [--metrics] [SECTION...]\n\
     sections: %s\n"
    (String.concat ", " (List.map fst sections))

let parse_args args =
  let wanted = ref [] in
  let parse_jobs n =
    match int_of_string_opt n with
    | Some n -> max 1 n
    | None ->
        Printf.eprintf "--jobs expects a number, got %S\n" n;
        usage ();
        exit 2
  in
  let rec go = function
    | [] -> ()
    | "--" :: rest -> go rest
    | "fast" :: rest ->
        fast := true;
        go rest
    | "--jobs" :: n :: rest ->
        jobs := parse_jobs n;
        go rest
    | "--retries" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> retries := n
        | _ ->
            Printf.eprintf "--retries expects a non-negative number, got %S\n" n;
            usage ();
            exit 2);
        go rest
    | "--no-cache" :: rest ->
        use_cache := false;
        go rest
    | "--cache-dir" :: d :: rest ->
        cache_dir := Some d;
        go rest
    | "--trace" :: f :: rest ->
        trace_path := Some f;
        go rest
    | "--metrics" :: rest ->
        want_metrics := true;
        go rest
    | "--backend" :: b :: rest ->
        (match Mlc_ir.Interp.backend_of_string b with
        | Some be -> backend := be
        | None ->
            Printf.eprintf "--backend expects fast or reference, got %S\n" b;
            usage ();
            exit 2);
        go rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
        jobs := parse_jobs (String.sub arg 7 (String.length arg - 7));
        go rest
    | arg :: rest ->
        (match List.assoc_opt arg sections with
        | Some f -> wanted := (arg, f) :: !wanted
        | None ->
            Printf.eprintf "unknown section %s (known: %s)\n" arg
              (String.concat ", " (List.map fst sections));
            usage ();
            exit 2);
        go rest
  in
  go args;
  List.rev !wanted

let json_path = "BENCH_engine.json"

let dump_json section_times =
  match !progress with
  | None -> ()
  | Some p ->
      let sections_json =
        Printf.sprintf "[%s]"
          (String.concat ", "
             (List.map
                (fun (name, wall) ->
                  Printf.sprintf "{\"name\": \"%s\", \"wall_s\": %.3f}"
                    (E.Progress.json_escape name)
                    wall)
                section_times))
      in
      let metrics_json =
        match !obs with
        | None -> []
        | Some buf ->
            [
              ( "metrics",
                Printf.sprintf "{%s}"
                  (String.concat ", "
                     (List.map
                        (fun (k, v) ->
                          Printf.sprintf "\"%s\": %d" (E.Progress.json_escape k)
                            v)
                        (Obs.Buf.counters buf))) );
            ]
      in
      let extra =
        metrics_json
        @ [
          ("mode", if !fast then "\"fast\"" else "\"full\"");
          ( "backend",
            Printf.sprintf "\"%s\"" (Mlc_ir.Interp.backend_name !backend) );
          ("jobs", string_of_int !jobs);
          ("cache", string_of_bool !use_cache);
          ( "models_version",
            Printf.sprintf "\"%s\""
              (E.Progress.json_escape
                 (match !cache with
                 | Some c -> E.Cache.version c
                 | None -> E.Cache.git_describe ())) );
          ("sections", sections_json);
        ]
      in
      let oc = open_out json_path in
      output_string oc (E.Progress.to_json ~extra p);
      close_out oc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let wanted = parse_args args in
  fast := !fast || Sys.getenv_opt "MLC_FAST" <> None;
  let to_run = if wanted = [] then default_sections else wanted in
  if !use_cache then cache := Some (E.Cache.open_ ?dir:!cache_dir ());
  progress := Some (E.Progress.create ~jobs:!jobs ());
  if !trace_path <> None || !want_metrics then
    obs := Some (Obs.Buf.create ~tid:0 ());
  Printf.printf "mlcache bench harness — %s mode\n"
    (if !fast then "fast" else "full");
  Printf.eprintf "engine: %d worker domain%s, cache %s\n%!" !jobs
    (if !jobs = 1 then "" else "s")
    (match !cache with
    | Some c ->
        Printf.sprintf "%s (models %s)" (E.Cache.dir c) (E.Cache.version c)
    | None -> "disabled");
  let run_section name f =
    (* With observability on, the section runs inside the shared buffer
       under a "section:NAME" span; the engine's per-job buffers merge
       into the same buffer, so one trace covers the whole run. *)
    match !obs with
    | None -> f ()
    | Some buf ->
        Obs.with_buf buf (fun () ->
            Obs.with_span ~cat:"bench" ("section:" ^ name) f)
  in
  let section_times =
    List.map
      (fun (name, f) ->
        let t0 = Unix.gettimeofday () in
        run_section name f;
        let wall = Unix.gettimeofday () -. t0 in
        Option.iter E.Progress.finish !progress;
        Printf.eprintf "[%s done in %.1fs]\n%!" name wall;
        (name, wall))
      to_run
  in
  Option.iter E.Progress.finish !progress;
  (match !progress with
  | Some p ->
      Printf.eprintf
        "engine totals: %d jobs, %d cache hits (%.0f%%), %.2e refs streamed, \
         %.1f jobs/s\n%!"
        (E.Progress.jobs_done p) (E.Progress.cache_hits p)
        (100.0 *. E.Progress.hit_rate p)
        (float_of_int (E.Progress.refs_streamed p))
        (E.Progress.jobs_per_sec p)
  | None -> ());
  dump_json section_times;
  match !obs with
  | None -> ()
  | Some buf ->
      (match !trace_path with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Obs.Sink.write (Obs.Sink.chrome oc) buf;
          close_out oc;
          Printf.eprintf "trace: %d events -> %s\n%!" (Obs.Buf.n_events buf)
            path);
      if !want_metrics then begin
        print_string "metrics:\n";
        List.iter
          (fun (name, v) -> Printf.printf "  %-36s %d\n" name v)
          (Obs.Buf.counters buf)
      end
