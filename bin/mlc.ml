(* mlc — command-line driver for the multi-level cache locality toolkit.

   Subcommands:
     list                           show the benchmark inventory (Table 1)
     simulate PROG                  run a program under a strategy, print metrics
     sweep PROG                     parallel size x strategy sweep on the engine
     layout PROG                    print the layout a strategy produces
     arcs PROG                      text rendering of the paper's layout diagrams
     fuse PROG                      fuse two nests, print the two-level accounting
     tile N                         tile-size policies for NxN matmul + simulation *)

open Cmdliner
open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality
module Obs = Mlc_obs.Obs

(* --- shared args -------------------------------------------------------- *)

let machine_of = function
  | "ultrasparc" -> Cs.Machine.ultrasparc
  | "alpha" -> Cs.Machine.alpha21164
  | other -> failwith (Printf.sprintf "unknown machine %s (ultrasparc|alpha)" other)

let machine_arg =
  let doc = "Cache machine: ultrasparc (16K/512K) or alpha (8K/128K/2M)." in
  Arg.(value & opt string "ultrasparc" & info [ "machine" ] ~docv:"M" ~doc)

let strategy_of = function
  | "orig" -> L.Pipeline.Original
  | "pad" -> L.Pipeline.Pad_l1
  | "multilvlpad" -> L.Pipeline.Pad_multilevel
  | "grouppad" -> L.Pipeline.Grouppad_l1
  | "l2maxpad" -> L.Pipeline.Grouppad_l1_l2
  | other ->
      failwith
        (Printf.sprintf
           "unknown strategy %s (orig|pad|multilvlpad|grouppad|l2maxpad)" other)

let strategy_arg =
  let doc = "Layout strategy: orig, pad, multilvlpad, grouppad, l2maxpad." in
  Arg.(value & opt string "pad" & info [ "strategy"; "s" ] ~docv:"S" ~doc)

let prog_arg =
  let doc = "Benchmark program name from Table 1 (see `mlc list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROG" ~doc)

let size_arg =
  let doc = "Override the problem size." in
  Arg.(value & opt (some int) None & info [ "n"; "size" ] ~docv:"N" ~doc)

let build_program name size =
  let entry = K.Registry.find name in
  match (size, entry.K.Registry.build_sized) with
  | Some n, Some f -> f n
  | Some _, None ->
      failwith (Printf.sprintf "%s has no size parameter" entry.K.Registry.name)
  | None, _ -> entry.K.Registry.build ()

(* --- observability flags -------------------------------------------------- *)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON file of the run (spans, decision \
     events, counters); load it in perfetto or chrome://tracing, or \
     validate it with $(b,mlc trace-check)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Print the observability counters after the run." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Run [body] with an observability buffer installed when --trace or
   --metrics asked for one, then write the trace file and/or print the
   counters.  The metrics block goes to stdout (it is part of the
   command's result); everything incidental stays on stderr. *)
let with_obs ~span ~trace ~metrics body =
  if trace = None && not metrics then body None
  else begin
    let buf = Obs.Buf.create ~tid:0 () in
    let result =
      Obs.with_buf buf (fun () ->
          Obs.with_span ~cat:"cli" span (fun () -> body (Some buf)))
    in
    (match trace with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Obs.Sink.write (Obs.Sink.chrome oc) buf;
        close_out oc;
        Printf.eprintf "trace: %d events -> %s\n%!" (Obs.Buf.n_events buf) path);
    if metrics then begin
      print_string "metrics:\n";
      List.iter
        (fun (name, v) -> Printf.printf "  %-36s %d\n" name v)
        (Obs.Buf.counters buf)
    end;
    result
  end

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : K.Registry.entry) ->
        Printf.printf "%-10s %-10s %s\n" e.K.Registry.name
          (K.Registry.category_name e.K.Registry.category)
          e.K.Registry.description)
      K.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark programs (Table 1).")
    Term.(const run $ const ())

(* --- simulate ------------------------------------------------------------- *)

let simulate_cmd =
  let run prog size strategy machine_name trace metrics =
    with_obs ~span:("mlc:simulate " ^ prog) ~trace ~metrics @@ fun _obs ->
    let machine = machine_of machine_name in
    let p = build_program prog size in
    Validate.check_exn p;
    let orig = L.Experiment.run_strategy machine L.Pipeline.Original p in
    let opt = L.Experiment.run_strategy machine (strategy_of strategy) p in
    Format.printf "%s on %s@." p.Program.name machine.Cs.Machine.name;
    Format.printf "  %a@." L.Experiment.pp_outcome orig;
    Format.printf "  %a@." L.Experiment.pp_outcome opt;
    Format.printf "  model-time improvement: %.2f%%@."
      (L.Experiment.time_improvement ~baseline:orig opt)
  in
  let term =
    Term.(
      const run $ prog_arg $ size_arg $ strategy_arg $ machine_arg $ trace_arg
      $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate a program under a layout strategy and print miss rates.")
    term

(* --- sweep ----------------------------------------------------------------- *)

let sweep_cmd =
  let module E = Mlc_engine in
  let lo_arg =
    Arg.(value & opt int 250 & info [ "lo" ] ~docv:"N" ~doc:"Smallest size.")
  in
  let hi_arg =
    Arg.(value & opt int 520 & info [ "hi" ] ~docv:"N" ~doc:"Largest size.")
  in
  let step_arg =
    Arg.(value & opt int 10 & info [ "step" ] ~docv:"S" ~doc:"Size step.")
  in
  let strategies_arg =
    let doc =
      "Comma-separated strategies (orig,pad,multilvlpad,grouppad,l2maxpad)."
    in
    Arg.(value & opt string "grouppad,l2maxpad"
         & info [ "strategies" ] ~docv:"S,S" ~doc)
  in
  let jobs_arg =
    let doc = "Worker domains (default: the machine's core count)." in
    Arg.(value & opt int (E.Pool.default_jobs ()) & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Bypass the on-disk result cache.")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Cache directory (default _mlc_cache, or MLC_CACHE_DIR).")
  in
  let backend_arg =
    Arg.(value & opt string "fast"
         & info [ "backend" ] ~docv:"B"
             ~doc:"Simulator backend: $(b,fast) (default) or $(b,reference). \
                   Both produce identical results; fast bulk-accounts \
                   steady runs of L1 hits.")
  in
  let error_policy_arg =
    Arg.(value & opt string "fail-fast"
         & info [ "error-policy" ] ~docv:"P"
             ~doc:"$(b,fail-fast) (default): the first failing cell aborts \
                   the sweep.  $(b,collect): every cell runs, failed cells \
                   are reported at the end and the exit status is non-zero.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume an interrupted sweep: re-run only the cells the \
                   result cache does not already hold (requires the cache).")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failing cell up to N times with exponential \
                   backoff before recording it as failed.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Per-cell wall-clock budget; an overrunning cell counts a \
                   timeout and fails (detected after the attempt, not \
                   preempted).")
  in
  let run prog lo hi step strategies machine_name jobs no_cache cache_dir
      backend_name error_policy resume retries deadline trace metrics =
    with_obs
      ~span:(Printf.sprintf "mlc:sweep %s %d..%d" prog lo hi)
      ~trace ~metrics
    @@ fun obs ->
    let machine = machine_of machine_name in
    let strategies =
      String.split_on_char ',' strategies
      |> List.filter (fun s -> s <> "")
      |> List.map E.Job.strategy_of_tag
    in
    if strategies = [] then failwith "sweep: no strategies given";
    let fail_fast =
      match error_policy with
      | "fail-fast" -> true
      | "collect" -> false
      | other ->
          failwith
            (Printf.sprintf "unknown error policy %s (fail-fast|collect)" other)
    in
    if resume && no_cache then
      failwith "sweep: --resume needs the result cache (drop --no-cache)";
    let rec sizes n = if n > hi then [] else n :: sizes (n + max 1 step) in
    let sizes = sizes lo in
    let entry =
      match K.Registry.find_opt prog with
      | Some e -> e
      | None ->
          failwith (Printf.sprintf "unknown program %s (see `mlc list`)" prog)
    in
    if entry.K.Registry.build_sized = None then
      failwith (Printf.sprintf "%s has no size parameter" entry.K.Registry.name);
    let backend =
      match Mlc_ir.Interp.backend_of_string backend_name with
      | Some b -> b
      | None ->
          failwith
            (Printf.sprintf "unknown backend %s (fast|reference)" backend_name)
    in
    let cache = if no_cache then None else Some (E.Cache.open_ ?dir:cache_dir ()) in
    let progress = E.Progress.create ~jobs () in
    let specs =
      List.concat_map
        (fun n ->
          List.map
            (fun s ->
              E.Job.simulate
                ~machine:(E.Job.machine machine_name)
                ~backend
                ~layout:(E.Job.Strategy s)
                (E.Job.Registry { name = entry.K.Registry.name; n = Some n }))
            strategies)
        sizes
      |> Array.of_list
    in
    (* The journal next to the cache is what --resume verifies against;
       the results themselves resume from the content-addressed cache. *)
    let manifest =
      Option.map (fun c -> E.Manifest.create ~cache:c ~resume specs) cache
    in
    (match manifest with
    | Some m when resume ->
        if E.Manifest.completed m > 0 then
          Format.eprintf "resume: %d/%d cells recorded done by a previous run@."
            (E.Manifest.completed m) (E.Manifest.cells m)
        else
          Format.eprintf
            "resume: no matching sweep journal; cached cells still replay@."
    | _ -> ());
    let retry = E.Fault.policy ~retries ?deadline () in
    let cancel = Atomic.make false in
    let previous_sigint =
      (* First Ctrl-C checkpoints at the next job boundary; a second one
         gives up immediately. *)
      try
        Some
          (Sys.signal Sys.sigint
             (Sys.Signal_handle
                (fun _ -> if Atomic.get cancel then exit 130 else Atomic.set cancel true)))
      with Invalid_argument _ | Sys_error _ -> None
    in
    let t0 = Unix.gettimeofday () in
    let slots =
      E.Engine.run_collect ?cache ~progress ?obs ~retry ~cancel
        ~stop_on_failure:fail_fast ~jobs specs
    in
    Option.iter (fun h -> try Sys.set_signal Sys.sigint h with _ -> ()) previous_sigint;
    E.Progress.finish progress;
    let done_ = Array.map (function Some (Ok _) -> true | _ -> false) slots in
    let completed = Array.fold_left (fun n d -> if d then n + 1 else n) 0 done_ in
    let failures =
      Array.to_list
        (Array.mapi (fun i slot -> (i, slot)) slots)
      |> List.filter_map (function
           | i, Some (Error f) -> Some (i, f)
           | _ -> None)
    in
    if Atomic.get cancel then begin
      Option.iter (fun m -> E.Manifest.checkpoint m ~done_) manifest;
      Format.eprintf "interrupted: %d/%d cells completed%s@." completed
        (Array.length specs)
        (if cache = None then ""
         else "; finish with `mlc sweep ... --resume`");
      exit 130
    end;
    if fail_fast && failures <> [] then begin
      (* Preserve the historical fail-fast contract: checkpoint, then
         re-raise the first failure as if Engine.run had thrown it. *)
      Option.iter (fun m -> E.Manifest.checkpoint m ~done_) manifest;
      let _, f = List.hd failures in
      Printexc.raise_with_backtrace f.E.Fault.exn f.E.Fault.backtrace
    end;
    let per_size = List.length strategies in
    let n_levels = Cs.Machine.n_levels machine in
    let columns =
      "N"
      :: List.concat_map
           (fun s ->
             let tag = E.Job.strategy_tag s in
             List.init n_levels (fun l -> Printf.sprintf "%s L%d" tag (l + 1))
             @ [ tag ^ " cycles" ])
           strategies
    in
    let rows =
      List.mapi
        (fun i n ->
          string_of_int n
          :: List.concat
               (List.init per_size (fun j ->
                    match slots.((per_size * i) + j) with
                    | Some (Ok r) ->
                        List.init n_levels (fun l ->
                            L.Report.pct
                              (100.0
                              *. List.nth r.E.Job.interp.Mlc_ir.Interp.miss_rates l))
                        @ [
                            Printf.sprintf "%.3e"
                              r.E.Job.interp.Mlc_ir.Interp.cycles;
                          ]
                    | Some (Error _) | None ->
                        List.init n_levels (fun _ -> "-") @ [ "FAILED" ])))
        sizes
    in
    L.Report.table
      ~title:
        (Printf.sprintf "Sweep: %s over N=%d..%d step %d on %s"
           entry.K.Registry.name lo hi step machine.Cs.Machine.name)
      ~columns rows;
    let ok_results =
      Array.of_list
        (Array.to_list slots
        |> List.filter_map (function Some (Ok r) -> Some r | _ -> None))
    in
    let merged = E.Engine.merged_stats ok_results in
    if failures = [] then Format.printf "@.totals:@."
    else
      Format.printf "@.totals (%d/%d completed cells):@." completed
        (Array.length specs);
    List.iteri
      (fun l s -> Format.printf "  L%d %a@." (l + 1) Cs.Stats.pp s)
      merged;
    (* timing is nondeterministic; keep stdout byte-stable for a given
       sweep (the golden test diffs it across jobs/cache/backend) *)
    Format.eprintf
      "%d jobs (%d cache hits) in %.1fs, %.1f jobs/s, %d refs streamed@."
      (E.Progress.jobs_done progress)
      (E.Progress.cache_hits progress)
      (Unix.gettimeofday () -. t0)
      (E.Progress.jobs_per_sec progress)
      (E.Progress.refs_streamed progress);
    if failures = [] then Option.iter E.Manifest.finish manifest
    else begin
      Option.iter (fun m -> E.Manifest.checkpoint m ~done_) manifest;
      List.iter
        (fun (i, f) ->
          Format.eprintf "failed: %s: %a@."
            (E.Job.describe specs.(i))
            E.Fault.pp_failure f)
        failures;
      Format.eprintf "%d/%d cells failed%s@." (List.length failures)
        (Array.length specs)
        (if cache = None then ""
         else "; re-run (or --resume) to retry just those cells");
      Format.pp_print_flush Format.std_formatter ();
      exit 1
    end
  in
  let term =
    Term.(
      const run $ prog_arg $ lo_arg $ hi_arg $ step_arg $ strategies_arg
      $ machine_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg $ backend_arg
      $ error_policy_arg $ resume_arg $ retries_arg $ deadline_arg
      $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep a benchmark over problem sizes and strategies on the \
          parallel experiment engine (domain pool + content-addressed \
          result cache).")
    term

(* --- layout ---------------------------------------------------------------- *)

let layout_cmd =
  let run prog size strategy machine_name =
    let machine = machine_of machine_name in
    let p = build_program prog size in
    let layout = L.Pipeline.layout_for machine (strategy_of strategy) p in
    Format.printf "%s, strategy %s:@.%a" p.Program.name strategy Layout.pp layout;
    let s1 = Cs.Machine.s1 machine in
    Format.printf "bases mod S1 (%d):@." s1;
    List.iter
      (fun v -> Format.printf "  %-10s %d@." v (Layout.base layout v mod s1))
      (Layout.array_names layout)
  in
  let term = Term.(const run $ prog_arg $ size_arg $ strategy_arg $ machine_arg) in
  Cmd.v
    (Cmd.info "layout" ~doc:"Print the memory layout a strategy produces.")
    term

(* --- arcs ------------------------------------------------------------------ *)

let arcs_cmd =
  let diagram_arg =
    Arg.(value & flag & info [ "diagram" ] ~doc:"Render ASCII layout diagrams.")
  in
  let run prog size strategy machine_name diagram =
    let machine = machine_of machine_name in
    let p = build_program prog size in
    let layout = L.Pipeline.layout_for machine (strategy_of strategy) p in
    let s1 = Cs.Machine.s1 machine in
    let line = Cs.Machine.level_line machine 0 in
    if diagram then
      print_string (An.Diagram.render_program layout ~size:s1 ~line p)
    else
    List.iteri
      (fun i nest ->
        Format.printf "nest %d:@." i;
        let dots = An.Arcs.dots layout ~size:s1 nest in
        List.iter
          (fun d ->
            Format.printf "  dot %-2d %-18s pos %6d@." d.An.Arcs.ref_index
              (Ref_.to_string d.An.Arcs.ref_)
              d.An.Arcs.position)
          dots;
        List.iter
          (fun a ->
            Format.printf "  arc %s: %d -> %d (span %d) %s@." a.An.Arcs.array
              a.An.Arcs.trailing a.An.Arcs.leading a.An.Arcs.span
              (if An.Arcs.arc_preserved dots ~size:s1 a then "PRESERVED"
               else "lost"))
          (An.Arcs.arcs layout nest);
        let conflicts = An.Arcs.severe_conflicts layout ~size:s1 ~line nest in
        Format.printf "  severe conflicts: %d@." (List.length conflicts))
      p.Program.nests
  in
  let term =
    Term.(const run $ prog_arg $ size_arg $ strategy_arg $ machine_arg $ diagram_arg)
  in
  Cmd.v
    (Cmd.info "arcs"
       ~doc:
         "Render the layout-diagram model: dot positions, group-reuse arcs \
          and severe conflicts per nest.")
    term

(* --- fuse ------------------------------------------------------------------ *)

let fuse_cmd =
  let nest_arg =
    Arg.(value & opt int 0 & info [ "nest" ] ~docv:"I" ~doc:"Fuse nests I and I+1.")
  in
  let run prog size nest_idx machine_name =
    let machine = machine_of machine_name in
    let p = build_program prog size in
    let fused = L.Fusion.fuse_program p nest_idx in
    let s1 = Cs.Machine.s1 machine in
    let layout_o = L.Pipeline.layout_for machine L.Pipeline.Grouppad_l1 p in
    let layout_f = L.Pipeline.layout_for machine L.Pipeline.Grouppad_l1 fused in
    let n1 = List.nth p.Program.nests nest_idx in
    let n2 = List.nth p.Program.nests (nest_idx + 1) in
    let core =
      List.fold_left
        (fun best nest ->
          if List.length (Nest.refs nest) > List.length (Nest.refs best) then nest
          else best)
        (List.hd fused.Program.nests)
        fused.Program.nests
    in
    let co = An.Fusion_model.count layout_o ~l1_size:s1 [ n1; n2 ] in
    let cf = An.Fusion_model.count layout_f ~l1_size:s1 [ core ] in
    Format.printf "original nests %d,%d: %a@." nest_idx (nest_idx + 1)
      An.Fusion_model.pp_counts co;
    Format.printf "fused:              %a@." An.Fusion_model.pp_counts cf;
    let ro = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1_l2 p in
    let rf = L.Experiment.run_strategy machine L.Pipeline.Grouppad_l1_l2 fused in
    Format.printf "simulated: %a@.           %a@." L.Experiment.pp_outcome
      { ro with L.Experiment.label = "original" }
      L.Experiment.pp_outcome
      { rf with L.Experiment.label = "fused" }
  in
  let term = Term.(const run $ prog_arg $ size_arg $ nest_arg $ machine_arg) in
  Cmd.v
    (Cmd.info "fuse"
       ~doc:"Fuse two adjacent nests and print the Section 4 accounting.")
    term

(* --- tile ------------------------------------------------------------------ *)

let tile_cmd =
  let n_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Matrix size.")
  in
  let run n machine_name =
    let machine = machine_of machine_name in
    let elem = 8 in
    let l1 = Cs.Machine.s1 machine in
    let l2 = try Cs.Machine.level_size machine 1 with _ -> l1 in
    let policies =
      [
        ("L1", l1, l1);
        ("2xL1", l2, 2 * l1);
        ("4xL1", l2, 4 * l1);
        ("L2", l2, l2);
      ]
    in
    Format.printf "matmul %dx%d:@." n n;
    let orig = L.Tiling.matmul n in
    let r = Interp.run machine (Layout.initial orig) orig in
    Format.printf "  %-6s               %8.2f MFLOPS (model)@." "orig"
      r.Interp.mflops;
    List.iter
      (fun (label, cache, cap) ->
        let t =
          L.Tile_size.select ~capacity_bytes:cap ~cache_bytes:cache ~elem
            ~col_elems:n ~rows:n ()
        in
        let p =
          L.Tiling.tiled_matmul ~n ~h:t.L.Tile_size.height ~w:t.L.Tile_size.width
        in
        let r = Interp.run machine (Layout.initial p) p in
        Format.printf "  %-6s tile %4dx%-4d %8.2f MFLOPS (model)@." label
          t.L.Tile_size.height t.L.Tile_size.width r.Interp.mflops)
      policies
  in
  let term = Term.(const run $ n_arg $ machine_arg) in
  Cmd.v
    (Cmd.info "tile"
       ~doc:"Compare tile-size policies on NxN matrix multiplication.")
    term

(* --- compile (full pipeline) --------------------------------------------------- *)

let compile_cmd =
  let scalar_arg =
    Arg.(value & flag & info [ "scalar-replace" ]
           ~doc:"Also remove register-carried loads from the stream.")
  in
  let run prog size machine_name scalar trace metrics =
    with_obs ~span:("mlc:compile " ^ prog) ~trace ~metrics @@ fun _obs ->
    let machine = machine_of machine_name in
    let p = build_program prog size in
    let options =
      { L.Compiler.default_options with L.Compiler.scalar_replace = scalar }
    in
    print_string (L.Compiler.report ~options machine p)
  in
  let term =
    Term.(
      const run $ prog_arg $ size_arg $ machine_arg $ scalar_arg $ trace_arg
      $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Run the whole pipeline (permute, fuse, pad) on a program and \
          report original vs optimized metrics.")
    term

(* --- emit (code generation) --------------------------------------------------- *)

let emit_cmd =
  let lang_arg =
    let doc =
      "Output language: c (standalone C program), f77 (Fortran with the \
       layout realized in a COMMON block) or mlc (kernel language)."
    in
    Arg.(value & opt string "c" & info [ "lang" ] ~docv:"L" ~doc)
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"R" ~doc:"Repetitions in the emitted main.")
  in
  let run prog size strategy machine_name lang repeat =
    let machine = machine_of machine_name in
    let p = build_program prog size in
    match lang with
    | "mlc" -> print_string (Pretty.program p)
    | "c" ->
        let layout = L.Pipeline.layout_for machine (strategy_of strategy) p in
        print_string (Mlc_codegen.Codegen_c.emit ~repeat layout p)
    | "f77" ->
        let layout = L.Pipeline.layout_for machine (strategy_of strategy) p in
        print_string (Mlc_codegen.Codegen_f77.emit layout p)
    | other -> failwith (Printf.sprintf "unknown language %s (c|f77|mlc)" other)
  in
  let term =
    Term.(const run $ prog_arg $ size_arg $ strategy_arg $ machine_arg $ lang_arg
          $ repeat_arg)
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Emit a benchmark program as compilable C (with the strategy's \
          pads physically realized) or as kernel-language source.")
    term

(* --- curve (stack-distance analysis) ----------------------------------------- *)

let curve_cmd =
  let run prog size =
    let p = build_program prog size in
    let layout = Layout.initial p in
    let trace = Interp.trace layout p in
    let sd = Cs.Stack_distance.analyze ~line:32 trace in
    let total = float_of_int (Cs.Stack_distance.total sd) in
    Format.printf
      "%s: %d references, %d distinct lines (cold)@." p.Program.name
      (Cs.Stack_distance.total sd) (Cs.Stack_distance.cold sd);
    Format.printf "fully-associative LRU miss rates by capacity:@.";
    List.iter
      (fun kb ->
        let lines = kb * 1024 / 32 in
        let misses = Cs.Stack_distance.misses_at sd ~lines in
        Format.printf "  %5dK (%6d lines): %6.2f%%%s@." kb lines
          (100.0 *. float_of_int misses /. total)
          (match kb with
          | 16 -> "   <- L1 capacity"
          | 512 -> "   <- L2 capacity"
          | _ -> ""))
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]
  in
  let term = Term.(const run $ prog_arg $ size_arg) in
  Cmd.v
    (Cmd.info "curve"
       ~doc:
         "Stack-distance analysis: the program's miss-rate-vs-capacity \
          curve, independent of conflicts.  Note: builds the full trace \
          in memory, prefer small sizes.")
    term

(* --- run (source files) ------------------------------------------------------ *)

let run_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Kernel-language source file.")
  in
  let run file strategy machine_name =
    let machine = machine_of machine_name in
    match Mlc_frontend.Parser.parse_file file with
    | exception Mlc_frontend.Parser.Error (msg, line, col) ->
        Printf.eprintf "%s:%d:%d: %s\n" file line col msg;
        exit 1
    | p ->
        let orig = L.Experiment.run_strategy machine L.Pipeline.Original p in
        let opt = L.Experiment.run_strategy machine (strategy_of strategy) p in
        Format.printf "%s on %s@." p.Program.name machine.Cs.Machine.name;
        Format.printf "  %a@." L.Experiment.pp_outcome orig;
        Format.printf "  %a@." L.Experiment.pp_outcome opt;
        Format.printf "  model-time improvement: %.2f%%@."
          (L.Experiment.time_improvement ~baseline:orig opt)
  in
  let term = Term.(const run $ file_arg $ strategy_arg $ machine_arg) in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Parse a kernel-language source file, optimize its layout and \
          simulate it.")
    term

(* --- trace-check (validate exported traces) ---------------------------------- *)

let trace_check_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace_event JSON file.")
  in
  let run file =
    match Mlc_obs.Trace_check.validate_file file with
    | Ok s ->
        Printf.printf
          "%s: OK (%d events: %d spans, %d counter samples, %d instants, %d \
           lanes)\n"
          file s.Mlc_obs.Trace_check.events s.Mlc_obs.Trace_check.spans
          s.Mlc_obs.Trace_check.counters s.Mlc_obs.Trace_check.instants
          s.Mlc_obs.Trace_check.tids
    | Error errs ->
        List.iter (fun e -> Printf.eprintf "%s: %s\n" file e) errs;
        exit 1
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a Chrome trace_event JSON file (as emitted by --trace): \
          well-formed JSON, known phases, monotone timestamps, matched B/E \
          span pairs per lane.")
    Term.(const run $ file_arg)

(* --- cache (maintenance) ------------------------------------------------------ *)

let cache_cmd =
  let module E = Mlc_engine in
  let cache_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Cache directory (default _mlc_cache, or MLC_CACHE_DIR).")
  in
  let stats_cmd =
    let run dir =
      let c = E.Cache.open_ ?dir () in
      let s = E.Cache.disk_stats c in
      Printf.printf "cache %s (version %s)\n" (E.Cache.dir c) (E.Cache.version c);
      Printf.printf "  entries      %6d  (%d bytes)\n" s.E.Cache.entries
        s.E.Cache.entry_bytes;
      Printf.printf "  quarantined  %6d  (%d bytes)\n" s.E.Cache.quarantined_files
        s.E.Cache.quarantined_bytes;
      Printf.printf "  stale tmp    %6d\n" s.E.Cache.tmp_files
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Entry, quarantine and stale-temp-file counts for the cache.")
      Term.(const run $ cache_dir_arg)
  in
  let verify_cmd =
    let run dir =
      let c = E.Cache.open_ ?dir () in
      let r = E.Cache.verify c in
      Printf.printf "checked %d entries: %d intact, %d damaged%s\n"
        r.E.Cache.checked r.E.Cache.intact r.E.Cache.damaged
        (if r.E.Cache.damaged = 0 then "" else " (moved to quarantine)");
      if r.E.Cache.damaged > 0 then exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Read every cache entry and quarantine the damaged ones; exits \
            non-zero when any entry was damaged.")
      Term.(const run $ cache_dir_arg)
  in
  let gc_cmd =
    let all_arg =
      Arg.(value & flag
           & info [ "all" ]
               ~doc:"Also remove every entry, not just quarantine and temp \
                     litter.")
    in
    let run dir all =
      let c = E.Cache.open_ ?dir () in
      let r = E.Cache.gc ~all c in
      Printf.printf "removed %d files (%d bytes)\n" r.E.Cache.removed_files
        r.E.Cache.removed_bytes
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Remove stale temp files and quarantined entries; with $(b,--all), \
            empty the cache.")
      Term.(const run $ cache_dir_arg $ all_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Inspect and maintain the on-disk result cache (stats/verify/gc).")
    [ stats_cmd; verify_cmd; gc_cmd ]

(* --------------------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "mlc" ~version:"1.0.0"
      ~doc:"Locality optimizations for multi-level caches (SC '99 reproduction)."
  in
  let group =
    Cmd.group info
      [ list_cmd; simulate_cmd; sweep_cmd; layout_cmd; arcs_cmd; fuse_cmd; tile_cmd; run_cmd; curve_cmd; emit_cmd; compile_cmd; trace_check_cmd; cache_cmd ]
  in
  exit (Cmd.eval group)
