type t = {
  hit_cycles : float array;
  memory_cycles : float;
  clock_hz : float;
}

let ultrasparc =
  { hit_cycles = [| 1.0; 6.0 |]; memory_cycles = 50.0; clock_hz = 143.0e6 }

let alpha21164 =
  { hit_cycles = [| 1.0; 5.0; 20.0 |]; memory_cycles = 80.0; clock_hz = 300.0e6 }

let cycles t hierarchy =
  let levels = Array.of_list (Hierarchy.levels hierarchy) in
  let n = Array.length levels in
  if Array.length t.hit_cycles < n then
    invalid_arg "Cost_model.cycles: model has fewer levels than hierarchy";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let stats = Level.stats levels.(i) in
    (* Every access that reached level i pays level i's hit latency;
       the portion that missed pays deeper levels via their own access
       counts, and the last level's misses pay memory latency. *)
    total := !total +. (float_of_int stats.Stats.accesses *. t.hit_cycles.(i))
  done;
  let last = Level.stats levels.(n - 1) in
  total := !total +. (float_of_int last.Stats.misses *. t.memory_cycles);
  !total

let breakdown t hierarchy =
  let levels = Array.of_list (Hierarchy.levels hierarchy) in
  let n = Array.length levels in
  if Array.length t.hit_cycles < n then
    invalid_arg "Cost_model.breakdown: model has fewer levels than hierarchy";
  let per_level =
    List.init n (fun i ->
        let stats = Level.stats levels.(i) in
        ( Printf.sprintf "L%d" (i + 1),
          float_of_int stats.Stats.accesses *. t.hit_cycles.(i) ))
  in
  let last = Level.stats levels.(n - 1) in
  per_level
  @ [ ("memory", float_of_int last.Stats.misses *. t.memory_cycles) ]

let seconds t hierarchy = cycles t hierarchy /. t.clock_hz

let mflops t ~flops hierarchy =
  let s = seconds t hierarchy in
  if s <= 0.0 then 0.0 else float_of_int flops /. s /. 1.0e6

let improvement ~orig ~opt =
  if orig = 0.0 then 0.0 else 100.0 *. (orig -. opt) /. orig
