type t = {
  hit_cycles : float array;
  memory_cycles : float;
  clock_hz : float;
}

let ultrasparc =
  { hit_cycles = [| 1.0; 6.0 |]; memory_cycles = 50.0; clock_hz = 143.0e6 }

let alpha21164 =
  { hit_cycles = [| 1.0; 5.0; 20.0 |]; memory_cycles = 80.0; clock_hz = 300.0e6 }

let cycles_of_stats t stats_list =
  let stats = Array.of_list stats_list in
  let n = Array.length stats in
  if n = 0 then invalid_arg "Cost_model.cycles_of_stats: no levels";
  if Array.length t.hit_cycles < n then
    invalid_arg "Cost_model.cycles_of_stats: model has fewer levels than hierarchy";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    (* Every access that reached level i pays level i's hit latency;
       the portion that missed pays deeper levels via their own access
       counts, and the last level's misses pay memory latency. *)
    total := !total +. (float_of_int stats.(i).Stats.accesses *. t.hit_cycles.(i))
  done;
  total := !total +. (float_of_int stats.(n - 1).Stats.misses *. t.memory_cycles);
  !total

let breakdown_of_stats t stats_list =
  let stats = Array.of_list stats_list in
  let n = Array.length stats in
  if n = 0 then invalid_arg "Cost_model.breakdown_of_stats: no levels";
  if Array.length t.hit_cycles < n then
    invalid_arg "Cost_model.breakdown_of_stats: model has fewer levels than hierarchy";
  let per_level =
    List.init n (fun i ->
        ( Printf.sprintf "L%d" (i + 1),
          float_of_int stats.(i).Stats.accesses *. t.hit_cycles.(i) ))
  in
  per_level
  @ [ ("memory", float_of_int stats.(n - 1).Stats.misses *. t.memory_cycles) ]

let level_stats_of hierarchy = List.map Level.stats (Hierarchy.levels hierarchy)

let cycles t hierarchy = cycles_of_stats t (level_stats_of hierarchy)

let breakdown t hierarchy = breakdown_of_stats t (level_stats_of hierarchy)

let seconds_of_stats t stats_list = cycles_of_stats t stats_list /. t.clock_hz

let seconds t hierarchy = seconds_of_stats t (level_stats_of hierarchy)

let mflops_of_stats t ~flops stats_list =
  let s = seconds_of_stats t stats_list in
  if s <= 0.0 then 0.0 else float_of_int flops /. s /. 1.0e6

let mflops t ~flops hierarchy = mflops_of_stats t ~flops (level_stats_of hierarchy)

let improvement ~orig ~opt =
  if orig = 0.0 then 0.0 else 100.0 *. (orig -. opt) /. orig
