(** Latency-weighted execution-time model.

    The paper times programs on a Sun UltraSparc I.  We cannot, so we
    convert simulated per-level miss counts to cycles with an additive
    latency model and report improvements from that (see DESIGN.md's
    substitution table).  The point the paper makes — L2 miss-rate
    reductions are diluted into small wall-clock changes because the
    L1-hit term dominates — falls out of the same arithmetic. *)

type t = {
  hit_cycles : float array;
      (** [hit_cycles.(i)] is the cost of a hit at level [i] (L1 = 0). *)
  memory_cycles : float;  (** cost of going to main memory *)
  clock_hz : float;       (** for MFLOPS conversion *)
}

(** UltraSparc-I-flavoured defaults: 1-cycle L1 hit, 6-cycle L2 hit,
    50-cycle memory, 143 MHz clock. *)
val ultrasparc : t

(** Alpha-21164-flavoured three-level defaults. *)
val alpha21164 : t

(** [cycles_of_stats t stats] prices per-level counters directly (L1
    first): each access recorded at level [i] pays [hit_cycles.(i)], and
    the last level's misses pay [memory_cycles].  The hierarchy variants
    below delegate here, so a [Fast_sim] backend handing over its
    {!Stats.t} list prices identically to the reference path. *)
val cycles_of_stats : t -> Stats.t list -> float

val breakdown_of_stats : t -> Stats.t list -> (string * float) list

val seconds_of_stats : t -> Stats.t list -> float

val mflops_of_stats : t -> flops:int -> Stats.t list -> float

(** [cycles t h] prices every access recorded in hierarchy [h]:
    each reference pays the L1 hit cost, each L1 miss additionally pays
    the L2 cost, and so on; last-level misses pay [memory_cycles]. *)
val cycles : t -> Hierarchy.t -> float

(** [breakdown t h] splits {!cycles} into its additive terms: one
    [("L<i>", cycles)] pair per level plus a final [("memory", cycles)]
    term.  The pairs sum to [cycles t h]. *)
val breakdown : t -> Hierarchy.t -> (string * float) list

(** [seconds t h] is [cycles] over the clock. *)
val seconds : t -> Hierarchy.t -> float

(** [mflops t ~flops h] is simulated MFLOPS given a floating-point
    operation count. *)
val mflops : t -> flops:int -> Hierarchy.t -> float

(** [improvement ~orig ~opt] is the paper's "execution time improvement":
    (orig − opt) / orig, in percent. *)
val improvement : orig:float -> opt:float -> float
