(* Fast simulation backend.

   Two pieces live here:

   - an optimized replica of the reference cascade ([Hierarchy] over
     [Level]): same filtered semantics (level i+1 only sees level i's
     misses), same LRU tie-breaking, same write-allocate and dirty-line
     accounting, so the per-level [Stats.t] match the reference path
     exactly.  Speed comes from [block], which consumes a whole
     innermost-loop iteration segment at once: as long as no reference
     crosses an L1 line boundary and every referenced line is L1-resident,
     the iterations are guaranteed hits that touch no lower level, so they
     can be accounted in bulk with a single recency/dirty refresh.

   - [Assoc_sweep], a single-pass per-set stack-distance analyzer: one
     scan of a trace yields the LRU depth histogram for every set, from
     which the full [Stats.t] of a w-way cache (same line size, same set
     count) follows for every w at once.

   Hardware prefetch is not modelled here; callers gate on it and fall
   back to the reference path. *)

type level = {
  line_bits : int;
  set_mask : int;
  assoc : int;
  (* tags.(set * assoc + way), -1 = empty; mirrors Level. *)
  tags : int array;
  last_use : int array;
  dirty : bool array;
  mutable clock : int;
  stats : Stats.t;
}

type t = {
  geoms : Level.geometry array;
  write_allocate : bool;
  levels : level array;
  (* scratch for [block], grown on demand to the widest ref group seen *)
  mutable cur : int array;
  mutable slot : int array;
  mutable rem : int array;
  (* fast-path accounting: how [block] consumed its iterations *)
  mutable bulk_segments : int;
  mutable bulk_iterations : int;
  mutable seq_iterations : int;
}

type metrics = {
  bulk_segments : int;
  bulk_iterations : int;
  seq_iterations : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let make_level (geom : Level.geometry) =
  if not (is_pow2 geom.size) then invalid_arg "Fast_sim.create: size not a power of two";
  if not (is_pow2 geom.line) then invalid_arg "Fast_sim.create: line not a power of two";
  if geom.line > geom.size then invalid_arg "Fast_sim.create: line larger than cache";
  if geom.assoc < 1 then invalid_arg "Fast_sim.create: associativity < 1";
  let n_lines = geom.size / geom.line in
  if n_lines mod geom.assoc <> 0 then
    invalid_arg "Fast_sim.create: associativity does not divide line count";
  let n_sets = n_lines / geom.assoc in
  if not (is_pow2 n_sets) then invalid_arg "Fast_sim.create: set count not a power of two";
  {
    line_bits = log2 geom.line;
    set_mask = n_sets - 1;
    assoc = geom.assoc;
    tags = Array.make n_lines (-1);
    last_use = Array.make n_lines 0;
    dirty = Array.make n_lines false;
    clock = 0;
    stats = Stats.create ();
  }

let create ?(write_allocate = true) geoms =
  if geoms = [] then invalid_arg "Fast_sim.create: no levels";
  {
    geoms = Array.of_list geoms;
    write_allocate;
    levels = Array.of_list (List.map make_level geoms);
    cur = [||];
    slot = [||];
    rem = [||];
    bulk_segments = 0;
    bulk_iterations = 0;
    seq_iterations = 0;
  }

let n_levels t = Array.length t.levels

let geometries t = Array.to_list t.geoms

let level_stats t = Array.to_list (Array.map (fun l -> l.stats) t.levels)

let total_refs t = t.levels.(0).stats.Stats.accesses

let memory_accesses t = t.levels.(Array.length t.levels - 1).stats.Stats.misses

let writebacks t =
  Array.fold_left (fun acc l -> acc + l.stats.Stats.writebacks) 0 t.levels

let miss_rates t =
  let total = total_refs t in
  Array.to_list
    (Array.map (fun l -> Stats.miss_rate_vs ~total_refs:total l.stats) t.levels)

let clear t =
  Array.iter
    (fun l ->
      Array.fill l.tags 0 (Array.length l.tags) (-1);
      Array.fill l.last_use 0 (Array.length l.last_use) 0;
      Array.fill l.dirty 0 (Array.length l.dirty) false;
      l.clock <- 0;
      Stats.reset l.stats)
    t.levels;
  t.bulk_segments <- 0;
  t.bulk_iterations <- 0;
  t.seq_iterations <- 0

let metrics (t : t) : metrics =
  {
    bulk_segments = t.bulk_segments;
    bulk_iterations = t.bulk_iterations;
    seq_iterations = t.seq_iterations;
  }

(* One access at one level; mirrors Level.access minus prefetch.
   Returns whether it hit.  All indices below are masked (set <=
   set_mask) or bounded by assoc, so unchecked array accesses are safe;
   stats are bumped inline to keep this path allocation-free. *)
let access_level ~write_allocate ~write l addr =
  let line_addr = addr lsr l.line_bits in
  let set = line_addr land l.set_mask in
  let st = l.stats in
  st.Stats.accesses <- st.Stats.accesses + 1;
  if write then st.Stats.writes <- st.Stats.writes + 1;
  if l.assoc = 1 then begin
    (* Direct-mapped: no LRU state, so the clock can be skipped. *)
    if Array.unsafe_get l.tags set = line_addr then begin
      if write then Array.unsafe_set l.dirty set true;
      st.Stats.hits <- st.Stats.hits + 1;
      true
    end
    else begin
      if (not write) || write_allocate then begin
        if Array.unsafe_get l.tags set >= 0 && Array.unsafe_get l.dirty set then
          st.Stats.writebacks <- st.Stats.writebacks + 1;
        Array.unsafe_set l.tags set line_addr;
        Array.unsafe_set l.dirty set write
      end;
      st.Stats.misses <- st.Stats.misses + 1;
      false
    end
  end
  else begin
    l.clock <- l.clock + 1;
    let assoc = l.assoc in
    let base = set * assoc in
    let rec find way =
      if way = assoc then -1
      else if Array.unsafe_get l.tags (base + way) = line_addr then way
      else find (way + 1)
    in
    let way = find 0 in
    if way >= 0 then begin
      Array.unsafe_set l.last_use (base + way) l.clock;
      if write then Array.unsafe_set l.dirty (base + way) true;
      st.Stats.hits <- st.Stats.hits + 1;
      true
    end
    else begin
      if (not write) || write_allocate then begin
        let victim = ref 0 in
        for w = 1 to assoc - 1 do
          if Array.unsafe_get l.last_use (base + w)
             < Array.unsafe_get l.last_use (base + !victim)
          then victim := w
        done;
        let slot = base + !victim in
        if Array.unsafe_get l.tags slot >= 0 && Array.unsafe_get l.dirty slot then
          st.Stats.writebacks <- st.Stats.writebacks + 1;
        Array.unsafe_set l.tags slot line_addr;
        Array.unsafe_set l.dirty slot write;
        Array.unsafe_set l.last_use slot l.clock
      end;
      st.Stats.misses <- st.Stats.misses + 1;
      false
    end
  end

(* Closure-free cascade: level [i] only sees the miss stream of [i-1]. *)
let rec cascade t write i n addr =
  if i = n then n
  else if access_level ~write_allocate:t.write_allocate ~write t.levels.(i) addr
  then i
  else cascade t write (i + 1) n addr

let access t ?(write = false) addr = cascade t write 0 (Array.length t.levels) addr

(* Slot of [addr]'s line at level [l], or -1 when not resident. *)
let find_slot l addr =
  let line_addr = addr lsr l.line_bits in
  let set = line_addr land l.set_mask in
  if l.assoc = 1 then (if l.tags.(set) = line_addr then set else -1)
  else begin
    let base = set * l.assoc in
    let rec go way =
      if way = l.assoc then -1
      else if l.tags.(base + way) = line_addr then base + way
      else go (way + 1)
    in
    go 0
  end

let ensure_scratch t n =
  if Array.length t.cur < n then begin
    t.cur <- Array.make n 0;
    t.slot <- Array.make n 0;
    t.rem <- Array.make n 0
  end

(* [block] pushes [count] iterations of an innermost loop through the
   hierarchy: iteration j issues, for each ref r in order,
   [bases.(r) + j * strides.(r)] (a write iff [writes.(r)]).

   The exactness argument both variants rely on: while every reference
   hits L1, lower levels see nothing and no line is installed or evicted,
   so such iterations change no tag state — only counters, dirty bits
   (idempotent: any write during the run leaves the line dirty before the
   next possible eviction) and, for associative L1s, LRU recency. *)

(* Direct-mapped L1 (the paper's machines): no recency state at all, so a
   steady all-hit phase needs nothing but counting.  Per reference we
   track [rem], the number of iterations (current included) it stays on
   its current line — pure address geometry; the phase advances by the
   minimum and re-probes only the references that crossed a line
   boundary, since nothing was installed, so the others cannot have been
   evicted.  Crossed refs are committed in two phases (check residency of
   all, then update), so a miss exits the phase before any dirty bit of
   an unsimulated iteration is set.  Iterations with a missing line run
   sequentially in reference order with the L1 hit check inlined; only
   actually-missing refs enter the cascade (whose installs can evict a
   later ref's line, hence the per-ref re-check at its turn).  Inline
   hits carry no per-access counter updates at all: they are recovered at
   the end as (iterations * nrefs) - (cascaded accesses).

   Unchecked array accesses: sets are masked by [set_mask]; scratch
   indices are < nrefs, and [block] validated the input array lengths. *)
let block_dm t l1 ~bases ~strides ~writes ~count =
  let nrefs = Array.length bases in
  ensure_scratch t nrefs;
  let cur = t.cur and rem = t.rem and slot = t.slot in
  Array.blit bases 0 cur 0 nrefs;
  let line_bits = l1.line_bits and set_mask = l1.set_mask in
  let tags = l1.tags and dirty = l1.dirty in
  let line_mask = (1 lsl line_bits) - 1 in
  let line = line_mask + 1 in
  let cross_dist a s =
    if s = 0 then max_int
    else if s >= line || -s >= line then 1
    else if s > 0 then (line - (a land line_mask) + s - 1) / s
    else ((a land line_mask) / -s) + 1
  in
  let nwrites = ref 0 in
  for r = 0 to nrefs - 1 do
    if writes.(r) then incr nwrites
  done;
  let nwrites = !nwrites in
  let n = Array.length t.levels in
  let bulk_iters = ref 0 in
  let seq_iters = ref 0 in
  let ncasc = ref 0 in
  let ncasc_w = ref 0 in
  let i = ref 0 in
  while !i < count do
    (* is iteration !i an all-hit iteration? *)
    let all = ref true in
    for r = 0 to nrefs - 1 do
      let la = Array.unsafe_get cur r lsr line_bits in
      if Array.unsafe_get tags (la land set_mask) <> la then all := false
    done;
    if !all then begin
      (* steady all-hit phase *)
      for r = 0 to nrefs - 1 do
        let a = Array.unsafe_get cur r in
        if Array.unsafe_get writes r then begin
          let la = a lsr line_bits in
          Array.unsafe_set dirty (la land set_mask) true
        end;
        Array.unsafe_set rem r (cross_dist a (Array.unsafe_get strides r))
      done;
      let steady = ref true in
      while !steady && !i < count do
        let k = ref (count - !i) in
        for r = 0 to nrefs - 1 do
          let rr = Array.unsafe_get rem r in
          if rr < !k then k := rr
        done;
        let k = !k in
        bulk_iters := !bulk_iters + k;
        t.bulk_segments <- t.bulk_segments + 1;
        i := !i + k;
        for r = 0 to nrefs - 1 do
          Array.unsafe_set rem r (Array.unsafe_get rem r - k);
          Array.unsafe_set cur r
            (Array.unsafe_get cur r + (k * Array.unsafe_get strides r))
        done;
        if !i < count then begin
          (* crossed refs (rem = 0) moved onto unverified lines *)
          let ok = ref true in
          let nc = ref 0 in
          for r = 0 to nrefs - 1 do
            if Array.unsafe_get rem r = 0 then begin
              let la = Array.unsafe_get cur r lsr line_bits in
              if Array.unsafe_get tags (la land set_mask) <> la then ok := false;
              Array.unsafe_set slot !nc r;
              incr nc
            end
          done;
          let ok = !ok in
          for j = 0 to !nc - 1 do
            let r = Array.unsafe_get slot j in
            let a = Array.unsafe_get cur r in
            if ok && Array.unsafe_get writes r then begin
              let la = a lsr line_bits in
              Array.unsafe_set dirty (la land set_mask) true
            end;
            Array.unsafe_set rem r (cross_dist a (Array.unsafe_get strides r))
          done;
          if not ok then steady := false
        end
      done
    end
    else begin
      (* sequential phase: whole iterations until one is all-hit again *)
      let had_miss = ref true in
      while !had_miss && !i < count do
        had_miss := false;
        for r = 0 to nrefs - 1 do
          let a = Array.unsafe_get cur r in
          let la = a lsr line_bits in
          let set = la land set_mask in
          let w = Array.unsafe_get writes r in
          if Array.unsafe_get tags set = la then begin
            if w then Array.unsafe_set dirty set true
          end
          else begin
            had_miss := true;
            incr ncasc;
            if w then incr ncasc_w;
            ignore (cascade t w 0 n a)
          end;
          Array.unsafe_set cur r (a + Array.unsafe_get strides r)
        done;
        incr seq_iters;
        incr i
      done
    end
  done;
  let st = l1.stats in
  let inline_hits = ((!bulk_iters + !seq_iters) * nrefs) - !ncasc in
  let inline_writes = ((!bulk_iters + !seq_iters) * nwrites) - !ncasc_w in
  st.Stats.accesses <- st.Stats.accesses + inline_hits;
  st.Stats.hits <- st.Stats.hits + inline_hits;
  st.Stats.writes <- st.Stats.writes + inline_writes;
  t.bulk_iterations <- t.bulk_iterations + !bulk_iters;
  t.seq_iterations <- t.seq_iterations + !seq_iters

(* Associative L1: segments bounded by the next line crossing of any ref.
   If every ref's line is resident the whole segment is hits and is
   accounted in bulk; recency then needs one refresh — touching each
   ref's line once, in ref order, with fresh clock values reproduces the
   relative last-use order the per-access path would leave, and only the
   relative order feeds LRU victim selection. *)
let block_assoc t l1 ~bases ~strides ~writes ~count =
  let nrefs = Array.length bases in
  ensure_scratch t nrefs;
  let line_mask = (1 lsl l1.line_bits) - 1 in
  let line = line_mask + 1 in
  let cur = t.cur and slot = t.slot in
  Array.blit bases 0 cur 0 nrefs;
  let probe () =
    let ok = ref true in
    let r = ref 0 in
    while !ok && !r < nrefs do
      let s = find_slot l1 cur.(!r) in
      slot.(!r) <- s;
      if s < 0 then ok := false else incr r
    done;
    !ok
  in
  let bulk k =
    t.bulk_segments <- t.bulk_segments + 1;
    t.bulk_iterations <- t.bulk_iterations + k;
    let st = l1.stats in
    st.Stats.accesses <- st.Stats.accesses + (k * nrefs);
    st.Stats.hits <- st.Stats.hits + (k * nrefs);
    for r = 0 to nrefs - 1 do
      if writes.(r) then begin
        st.Stats.writes <- st.Stats.writes + k;
        l1.dirty.(slot.(r)) <- true
      end;
      l1.clock <- l1.clock + 1;
      l1.last_use.(slot.(r)) <- l1.clock
    done
  in
  let n = Array.length t.levels in
  let one_iteration () =
    t.seq_iterations <- t.seq_iterations + 1;
    for r = 0 to nrefs - 1 do
      ignore (cascade t writes.(r) 0 n cur.(r))
    done
  in
  let advance k =
    for r = 0 to nrefs - 1 do
      cur.(r) <- cur.(r) + (k * strides.(r))
    done
  in
  let i = ref 0 in
  while !i < count do
    let left = count - !i in
    (* iterations until some ref leaves its current L1 line *)
    let k = ref left in
    for r = 0 to nrefs - 1 do
      let s = strides.(r) in
      if s > 0 then begin
        let c = (line - (cur.(r) land line_mask) + s - 1) / s in
        if c < !k then k := c
      end
      else if s < 0 then begin
        let c = ((cur.(r) land line_mask) / -s) + 1 in
        if c < !k then k := c
      end
    done;
    let k = !k in
    if probe () then begin
      bulk k;
      advance k;
      i := !i + k
    end
    else begin
      one_iteration ();
      advance 1;
      incr i;
      if k > 1 then begin
        if probe () then begin
          bulk (k - 1);
          advance (k - 1);
          i := !i + (k - 1)
        end
        else
          (* conflicting or non-allocated lines: no steady state within
             this segment, replay it access by access *)
          for _ = 2 to k do
            one_iteration ();
            advance 1;
            incr i
          done
      end
    end
  done

let block t ~bases ~strides ~writes ~count =
  let nrefs = Array.length bases in
  if Array.length strides <> nrefs || Array.length writes <> nrefs then
    invalid_arg "Fast_sim.block: bases/strides/writes length mismatch";
  if nrefs > 0 && count > 0 then begin
    let l1 = t.levels.(0) in
    if l1.assoc = 1 then block_dm t l1 ~bases ~strides ~writes ~count
    else block_assoc t l1 ~bases ~strides ~writes ~count
  end

let replay t trace = Array.iter (fun addr -> ignore (access t addr)) trace

let replay_compact t (runs : Trace.compact) =
  let bases = [| 0 |] and strides = [| 0 |] and writes = [| false |] in
  Array.iter
    (fun (r : Trace.run) ->
      bases.(0) <- r.Trace.base;
      strides.(0) <- r.Trace.stride;
      block t ~bases ~strides ~writes ~count:r.Trace.count)
    runs

(* --- single-pass per-set stack distances ------------------------------- *)

module Assoc_sweep = struct
  type sweep = {
    line : int;
    n_sets : int;
    line_bits : int;
    set_mask : int;
    mutable total : int;
    mutable write_total : int;
    mutable cold : int;
    (* per-set recency list, most recent first; scanning for a line's
       position yields its per-set LRU stack distance.  Amortized cost is
       bounded by the depth distribution, which caches of interest keep
       shallow. *)
    recency : int list array;
    mutable hist : int array;
  }

  let create ~line ~n_sets =
    if not (is_pow2 line) then invalid_arg "Assoc_sweep.create: line not a power of two";
    if not (is_pow2 n_sets) then
      invalid_arg "Assoc_sweep.create: set count not a power of two";
    {
      line;
      n_sets;
      line_bits = log2 line;
      set_mask = n_sets - 1;
      total = 0;
      write_total = 0;
      cold = 0;
      recency = Array.make n_sets [];
      hist = Array.make 16 0;
    }

  let grow_hist t depth =
    if depth >= Array.length t.hist then begin
      let bigger = Array.make (max (depth + 1) (2 * Array.length t.hist)) 0 in
      Array.blit t.hist 0 bigger 0 (Array.length t.hist);
      t.hist <- bigger
    end

  let touch ?(write = false) t addr =
    let line_addr = addr lsr t.line_bits in
    let set = line_addr land t.set_mask in
    t.total <- t.total + 1;
    if write then t.write_total <- t.write_total + 1;
    let rec split acc depth = function
      | [] -> None
      | x :: rest when x = line_addr -> Some (depth, List.rev_append acc rest)
      | x :: rest -> split (x :: acc) (depth + 1) rest
    in
    match split [] 0 t.recency.(set) with
    | Some (depth, rest) ->
        t.recency.(set) <- line_addr :: rest;
        grow_hist t depth;
        t.hist.(depth) <- t.hist.(depth) + 1
    | None ->
        t.cold <- t.cold + 1;
        t.recency.(set) <- line_addr :: t.recency.(set)

  let analyze ?writes ~line ~n_sets trace =
    let t = create ~line ~n_sets in
    (match writes with
    | None -> Array.iter (fun addr -> touch t addr) trace
    | Some w ->
        if Array.length w <> Array.length trace then
          invalid_arg "Assoc_sweep.analyze: writes length mismatch";
        Array.iteri (fun i addr -> touch ~write:w.(i) t addr) trace);
    t

  let total t = t.total

  let cold t = t.cold

  let histogram t = Array.copy t.hist

  let hits_at t ~assoc =
    let n = min assoc (Array.length t.hist) in
    let sum = ref 0 in
    for d = 0 to n - 1 do
      sum := !sum + t.hist.(d)
    done;
    !sum

  let misses_at t ~assoc = t.total - hits_at t ~assoc

  (* Stats of a write-allocate LRU cache with [assoc] ways over the same
     line size and set count, fed the full stream: an access hits iff its
     per-set depth is < assoc.  Writebacks are not derivable from depths
     alone (they depend on which victim was dirty) and are reported as 0. *)
  let stats_at t ~assoc : Stats.t =
    let hits = hits_at t ~assoc in
    {
      Stats.accesses = t.total;
      hits;
      misses = t.total - hits;
      writes = t.write_total;
      writebacks = 0;
    }

  let geometry_at t ~assoc : Level.geometry =
    { Level.size = t.line * t.n_sets * assoc; line = t.line; assoc }
end
