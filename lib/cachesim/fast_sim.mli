(** Fast simulation backend.

    A drop-in replacement for the reference {!Hierarchy}/{!Level} cascade
    that produces {e identical} per-level {!Stats.t} (including writes and
    writebacks) for any hierarchy without hardware prefetch: same filtered
    semantics (a level only sees the misses of the level above), same LRU
    tie-breaking, same write-allocate behaviour.  The speed comes from
    {!block}, which accounts whole runs of guaranteed L1 hits in bulk
    instead of walking the cascade per access, and from a leaner per-access
    path (no prefetch bookkeeping).

    {!Assoc_sweep} is the single-pass stack-distance half: one scan of a
    trace yields per-set LRU depth histograms from which the stats of
    {e every} associativity (at fixed line size and set count) can be read
    off — the classic Mattson one-pass/many-configurations trick, applied
    per set.

    Not modelled: next-line prefetching.  Callers must fall back to the
    reference path when [prefetch_levels] is non-empty (see
    [Machine.hierarchy]). *)

type t

(** [create ?write_allocate geoms] builds a simulator for the given levels,
    L1 first, with the same geometry validation as {!Level.create}.
    @raise Invalid_argument on an empty list or invalid geometry. *)
val create : ?write_allocate:bool -> Level.geometry list -> t

val n_levels : t -> int

val geometries : t -> Level.geometry list

(** [access t ?write addr] sends one reference down the cascade and
    returns the index of the level that hit (0 = L1), or [n_levels t] for
    a main-memory access — the same contract as [Hierarchy.access]. *)
val access : t -> ?write:bool -> int -> int

(** [block t ~bases ~strides ~writes ~count] issues [count] iterations of
    an innermost loop body: iteration [j] accesses, for each reference
    [r] in order, address [bases.(r) + j * strides.(r)], as a write iff
    [writes.(r)].  Exactly equivalent to issuing every access through
    {!access}, but segments in which every reference stays within an
    L1-resident line are accounted in bulk. *)
val block :
  t -> bases:int array -> strides:int array -> writes:bool array -> count:int -> unit

(** Replay a full trace (reads). *)
val replay : t -> Trace.t -> unit

(** Replay a run-length trace (reads); each run is consumed via {!block}. *)
val replay_compact : t -> Trace.compact -> unit

(** Live per-level counters, L1 first (not copies). *)
val level_stats : t -> Stats.t list

val total_refs : t -> int

val memory_accesses : t -> int

(** Total dirty-line evictions across all levels. *)
val writebacks : t -> int

(** Per-level misses / total refs, the paper's reporting convention. *)
val miss_rates : t -> float list

(** Fast-path accounting: how {!block} consumed its iterations.
    [bulk_iterations + seq_iterations] is the total iteration count seen;
    a high bulk share is what makes this backend fast. *)
type metrics = {
  bulk_segments : int;  (** all-hit segments accounted in bulk *)
  bulk_iterations : int;  (** iterations covered by those segments *)
  seq_iterations : int;  (** iterations replayed access by access *)
}

val metrics : t -> metrics

val clear : t -> unit

(** Single-pass per-set stack-distance analysis.

    For a write-allocate LRU cache the set holds, at any time, the [w]
    most recently used lines mapping to it, so an access hits a [w]-way
    cache iff its per-set recency depth is below [w].  One pass therefore
    determines hit/miss counts for every associativity at once (line size
    and set count fixed).  Writebacks depend on which victim was dirty and
    are {e not} derivable from depths; {!stats_at} reports them as 0. *)
module Assoc_sweep : sig
  type sweep

  (** @raise Invalid_argument unless [line] and [n_sets] are powers of two. *)
  val create : line:int -> n_sets:int -> sweep

  (** Feed one access. *)
  val touch : ?write:bool -> sweep -> int -> unit

  (** One-shot: feed a whole trace ([writes], when given, must have the
      trace's length). *)
  val analyze : ?writes:bool array -> line:int -> n_sets:int -> Trace.t -> sweep

  (** Accesses fed so far. *)
  val total : sweep -> int

  (** Accesses whose line had never been seen in its set (compulsory
      misses at any associativity). *)
  val cold : sweep -> int

  (** [histogram s].(d) counts accesses observed at per-set depth [d];
      [cold] accesses appear in no bucket, so
      [cold s + sum (histogram s) = total s]. *)
  val histogram : sweep -> int array

  val hits_at : sweep -> assoc:int -> int

  val misses_at : sweep -> assoc:int -> int

  (** Full-stream stats of a [assoc]-way write-allocate LRU cache with
      this line size and set count (writebacks reported as 0). *)
  val stats_at : sweep -> assoc:int -> Stats.t

  (** The geometry [stats_at ~assoc] describes. *)
  val geometry_at : sweep -> assoc:int -> Level.geometry
end
