type geometry = {
  size : int;
  line : int;
  assoc : int;
}

type t = {
  geom : geometry;
  write_allocate : bool;
  prefetch_next_line : bool;
  n_sets : int;
  line_bits : int;
  set_mask : int;
  (* tags.(set * assoc + way) holds the line-granule address resident in
     that way, or -1 when the way is empty. *)
  tags : int array;
  (* last_use.(set * assoc + way) is the logical time of the last access,
     used for LRU victim selection in associative configurations. *)
  last_use : int array;
  dirty : bool array;
  (* tagged prefetch: set on lines installed by the prefetcher; the first
     demand hit re-arms the next-line prefetch *)
  prefetched : bool array;
  mutable clock : int;
  stats : Stats.t;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(write_allocate = true) ?(prefetch_next_line = false) geom =
  if not (is_pow2 geom.size) then invalid_arg "Level.create: size not a power of two";
  if not (is_pow2 geom.line) then invalid_arg "Level.create: line not a power of two";
  if geom.line > geom.size then invalid_arg "Level.create: line larger than cache";
  if geom.assoc < 1 then invalid_arg "Level.create: associativity < 1";
  let n_lines = geom.size / geom.line in
  if n_lines mod geom.assoc <> 0 then
    invalid_arg "Level.create: associativity does not divide line count";
  let n_sets = n_lines / geom.assoc in
  if not (is_pow2 n_sets) then invalid_arg "Level.create: set count not a power of two";
  {
    geom;
    write_allocate;
    prefetch_next_line;
    n_sets;
    line_bits = log2 geom.line;
    set_mask = n_sets - 1;
    tags = Array.make n_lines (-1);
    last_use = Array.make n_lines 0;
    dirty = Array.make n_lines false;
    prefetched = Array.make n_lines false;
    clock = 0;
    stats = Stats.create ();
  }

let geometry t = t.geom

let stats t = t.stats

let writebacks t = t.stats.Stats.writebacks

let n_sets t = t.n_sets

let install ?(prefetch = false) t slot line_addr ~write =
  if t.tags.(slot) >= 0 && t.dirty.(slot) then Stats.record_writeback t.stats;
  t.tags.(slot) <- line_addr;
  t.dirty.(slot) <- write;
  t.prefetched.(slot) <- prefetch;
  t.last_use.(slot) <- t.clock

(* Install a line without touching the stats (prefetch path). *)
let install_line t line_addr =
  let set = line_addr land t.set_mask in
  let assoc = t.geom.assoc in
  if assoc = 1 then begin
    if t.tags.(set) <> line_addr then
      install ~prefetch:true t set line_addr ~write:false
  end
  else begin
    let base = set * assoc in
    let rec find way =
      if way = assoc then -1
      else if t.tags.(base + way) = line_addr then way
      else find (way + 1)
    in
    if find 0 < 0 then begin
      let victim = ref 0 in
      for w = 1 to assoc - 1 do
        if t.last_use.(base + w) < t.last_use.(base + !victim) then victim := w
      done;
      install ~prefetch:true t (base + !victim) line_addr ~write:false
    end
  end

let access t ?(write = false) addr =
  let line_addr = addr lsr t.line_bits in
  let set = line_addr land t.set_mask in
  let assoc = t.geom.assoc in
  t.clock <- t.clock + 1;
  if assoc = 1 then begin
    (* Direct-mapped fast path: one candidate way. *)
    let hit = t.tags.(set) = line_addr in
    if hit then begin
      if write then t.dirty.(set) <- true;
      if t.prefetched.(set) then begin
        t.prefetched.(set) <- false;
        install_line t (line_addr + 1)
      end
    end
    else begin
      if (not write) || t.write_allocate then install t set line_addr ~write;
      if t.prefetch_next_line then install_line t (line_addr + 1)
    end;
    Stats.record ~write t.stats ~hit;
    hit
  end
  else begin
    let base = set * assoc in
    let rec find way = if way = assoc then -1
      else if t.tags.(base + way) = line_addr then way
      else find (way + 1)
    in
    let way = find 0 in
    if way >= 0 then begin
      t.last_use.(base + way) <- t.clock;
      if write then t.dirty.(base + way) <- true;
      if t.prefetched.(base + way) then begin
        t.prefetched.(base + way) <- false;
        install_line t (line_addr + 1)
      end;
      Stats.record ~write t.stats ~hit:true;
      true
    end
    else begin
      if (not write) || t.write_allocate then begin
        (* LRU victim: the way with the smallest last-use time; empty
           ways (last_use 0, tag -1) are naturally chosen first. *)
        let victim = ref 0 in
        for w = 1 to assoc - 1 do
          if t.last_use.(base + w) < t.last_use.(base + !victim) then victim := w
        done;
        install t (base + !victim) line_addr ~write
      end;
      if t.prefetch_next_line then install_line t (line_addr + 1);
      Stats.record ~write t.stats ~hit:false;
      false
    end
  end

let resident_lines t =
  Array.to_list t.tags
  |> List.filter (fun tag -> tag >= 0)
  |> List.map (fun tag -> tag lsl t.line_bits)

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.last_use 0 (Array.length t.last_use) 0;
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.prefetched 0 (Array.length t.prefetched) false;
  t.clock <- 0;
  Stats.reset t.stats
