(** A single level of cache: set-associative with LRU replacement.

    Geometry is given in bytes.  [assoc = 1] is a direct-mapped cache, the
    configuration the paper's optimizations assume.  Sizes and line sizes
    must be powers of two, and [assoc] must divide [size / line]. *)

type geometry = {
  size : int;   (** capacity in bytes *)
  line : int;   (** line size in bytes *)
  assoc : int;  (** ways; 1 = direct-mapped *)
}

type t

(** [create ?write_allocate ?prefetch_next_line geom] — [write_allocate]
    (default true) installs lines on write misses; with it off, write
    misses bypass the level (no-allocate / write-around).  Lines written
    while resident are marked dirty; evicting a dirty line counts a
    write-back.  [prefetch_next_line] (default false) models a simple
    sequential hardware prefetcher: every demand miss also installs the
    next line (untimed, no stats impact beyond the hits it creates).
    @raise Invalid_argument on non-power-of-two size/line, [line > size],
    or an associativity that does not divide the number of lines. *)
val create : ?write_allocate:bool -> ?prefetch_next_line:bool -> geometry -> t

val geometry : t -> geometry

val stats : t -> Stats.t

(** Dirty evictions so far (write-back traffic to the next level).
    Equal to [(stats t).Stats.writebacks]; kept distinct from write
    misses, which land in [Stats.misses]/[Stats.writes]. *)
val writebacks : t -> int

(** [access t ?write addr] touches the line containing byte [addr],
    updates LRU state and counters, and reports whether it hit.  A miss
    installs the line unless it is a write under no-allocate. *)
val access : t -> ?write:bool -> int -> bool

(** Lines currently resident, as line-granule addresses (byte address of
    each line start), in no particular order.  Intended for tests. *)
val resident_lines : t -> int list

(** Forget all contents and reset counters. *)
val clear : t -> unit

(** Number of sets ([size / (line * assoc)]). *)
val n_sets : t -> int
