type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable writebacks : int;
}

let create () = { accesses = 0; hits = 0; misses = 0; writes = 0; writebacks = 0 }

let reset t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.writes <- 0;
  t.writebacks <- 0

let record ?(write = false) t ~hit =
  t.accesses <- t.accesses + 1;
  if write then t.writes <- t.writes + 1;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1

let record_writeback t = t.writebacks <- t.writebacks + 1

let zero () = create ()

let add a b =
  {
    accesses = a.accesses + b.accesses;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    writes = a.writes + b.writes;
    writebacks = a.writebacks + b.writebacks;
  }

let equal a b =
  a.accesses = b.accesses && a.hits = b.hits && a.misses = b.misses
  && a.writes = b.writes && a.writebacks = b.writebacks

let miss_rate_vs ~total_refs t =
  if total_refs = 0 then 0.0 else float_of_int t.misses /. float_of_int total_refs

let local_miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses

let pp ppf t =
  Format.fprintf ppf
    "accesses=%d hits=%d misses=%d writes=%d writebacks=%d (local miss rate %.2f%%)"
    t.accesses t.hits t.misses t.writes t.writebacks
    (100.0 *. local_miss_rate t)
