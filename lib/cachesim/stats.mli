(** Access counters for one cache level.

    The paper reports miss rates for every level relative to the {e total}
    number of memory references issued by the program ("L2 misses are
    normalized to L1 misses"), not relative to the number of accesses that
    reached that level.  [miss_rate_vs ~total_refs] implements that
    convention; [local_miss_rate] is the conventional per-level rate.

    Write traffic is tracked on two distinct axes that earlier versions
    conflated: [writes] counts write {e accesses} that reached the level
    (hits and misses alike), while [writebacks] counts dirty-line
    {e evictions} — the write-back traffic the level sends toward the next
    level.  A write miss is not a writeback and vice versa. *)

type t = {
  mutable accesses : int;  (** references that reached this level *)
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;      (** write accesses that reached this level *)
  mutable writebacks : int;  (** dirty-line evictions at this level *)
}

val create : unit -> t

(** A fresh all-zero counter — the identity of {!add}. *)
val zero : unit -> t

(** [add a b] is a new counter holding the component-wise sums.  [add] is
    associative and commutative with {!zero} as identity, so merging
    per-worker counters is order-independent — the property the parallel
    experiment engine's deterministic result merging relies on. *)
val add : t -> t -> t

val equal : t -> t -> bool

val reset : t -> unit

(** [record ?write t ~hit] counts one access; [write] (default false)
    additionally bumps the write counter. *)
val record : ?write:bool -> t -> hit:bool -> unit

(** Count one dirty-line eviction. *)
val record_writeback : t -> unit

(** [miss_rate_vs ~total_refs t] is misses / total_refs (in [0, 1]);
    0 when [total_refs] is 0. *)
val miss_rate_vs : total_refs:int -> t -> float

(** Misses relative to accesses that reached this level. *)
val local_miss_rate : t -> float

val pp : Format.formatter -> t -> unit
