type t = int array

let replay hierarchy trace =
  Array.iter (fun addr -> ignore (Hierarchy.access hierarchy addr)) trace

let strided ~base ~stride ~count =
  Array.init count (fun i -> base + (i * stride))

let interleave traces =
  let traces = Array.of_list traces in
  let lengths = Array.map Array.length traces in
  let longest = Array.fold_left max 0 lengths in
  let out = ref [] in
  for step = 0 to longest - 1 do
    Array.iteri
      (fun i trace -> if step < lengths.(i) then out := trace.(step) :: !out)
      traces
  done;
  Array.of_list (List.rev !out)

let concat traces = Array.concat traces

let repeat n trace = Array.concat (List.init n (fun _ -> trace))

let lines_touched ~line trace =
  let seen = Hashtbl.create 64 in
  Array.iter (fun addr -> Hashtbl.replace seen (addr / line) ()) trace;
  Hashtbl.length seen

(* --- run-length representation ----------------------------------------- *)

type run = { base : int; stride : int; count : int }

type compact = run array

let length runs = Array.fold_left (fun acc r -> acc + r.count) 0 runs

let iter_compact f runs =
  Array.iter
    (fun r ->
      let addr = ref r.base in
      for _ = 1 to r.count do
        f !addr;
        addr := !addr + r.stride
      done)
    runs

(* Streaming compressor: addresses are folded into the pending arithmetic
   run and flushed when the progression breaks, so a strided loop of any
   length costs one run.  Expansion reproduces the input exactly, in
   order. *)
type builder = {
  mutable b_base : int;
  mutable b_stride : int;
  mutable b_count : int;  (* 0 = empty *)
  mutable b_runs : run list;  (* reversed *)
}

let builder () = { b_base = 0; b_stride = 0; b_count = 0; b_runs = [] }

let flush b =
  if b.b_count > 0 then begin
    b.b_runs <- { base = b.b_base; stride = b.b_stride; count = b.b_count } :: b.b_runs;
    b.b_count <- 0
  end

let push b addr =
  if b.b_count = 0 then begin
    b.b_base <- addr;
    b.b_stride <- 0;
    b.b_count <- 1
  end
  else if b.b_count = 1 then begin
    b.b_stride <- addr - b.b_base;
    b.b_count <- 2
  end
  else if addr = b.b_base + (b.b_count * b.b_stride) then
    b.b_count <- b.b_count + 1
  else begin
    flush b;
    b.b_base <- addr;
    b.b_stride <- 0;
    b.b_count <- 1
  end

let finish b =
  flush b;
  Array.of_list (List.rev b.b_runs)

let compress trace =
  let b = builder () in
  Array.iter (push b) trace;
  finish b

let expand runs =
  let out = Array.make (length runs) 0 in
  let i = ref 0 in
  iter_compact
    (fun addr ->
      out.(!i) <- addr;
      incr i)
    runs;
  out

let replay_compact hierarchy runs =
  iter_compact (fun addr -> ignore (Hierarchy.access hierarchy addr)) runs
