(** Address-trace utilities.

    A trace is a sequence of byte addresses.  The interpreter feeds the
    hierarchy directly for speed, but traces are convenient in tests and
    for replaying canned access patterns (e.g. tile footprints when
    checking self-interference). *)

type t = int array

(** [replay hierarchy trace] pushes every address through the hierarchy. *)
val replay : Hierarchy.t -> t -> unit

(** [strided ~base ~stride ~count] is [base, base+stride, ...]. *)
val strided : base:int -> stride:int -> count:int -> t

(** [interleave traces] round-robins the given traces: one element of
    each per step, skipping exhausted traces, preserving order — the
    access pattern of references progressing together in a loop body. *)
val interleave : t list -> t

(** [concat] glues traces back to back (loop nests in sequence). *)
val concat : t list -> t

(** [repeat n trace] repeats a trace [n] times (an outer loop). *)
val repeat : int -> t -> t

(** Distinct cache lines touched by the trace for a given line size. *)
val lines_touched : line:int -> t -> int

(** {1 Run-length representation}

    Loop-generated traces are long arithmetic progressions; storing them
    as [(base, stride, count)] runs makes them cheap to keep around and
    lets simulators consume whole runs at a time.  Compression is exact:
    [expand (compress t) = t] for every trace. *)

type run = { base : int; stride : int; count : int }

type compact = run array

(** Total number of addresses the runs expand to. *)
val length : compact -> int

(** [iter_compact f runs] applies [f] to every address, in trace order,
    without materialising the expansion. *)
val iter_compact : (int -> unit) -> compact -> unit

(** Greedy streaming compressor: consecutive addresses forming an
    arithmetic progression fold into one run. *)
val compress : t -> compact

val expand : compact -> t

(** Streaming interface to the compressor, for producers that generate
    addresses one at a time: [push] addresses into a [builder], then
    [finish] it (at most one partial run is buffered). *)
type builder

val builder : unit -> builder

val push : builder -> int -> unit

val finish : builder -> compact

(** [replay_compact hierarchy runs] pushes every address through the
    hierarchy, like {!replay} on the expansion. *)
val replay_compact : Hierarchy.t -> compact -> unit
