open Mlc_ir
module Cs = Mlc_cachesim

type result = {
  program : Program.t;
  layout : Layout.t;
  log : string list;
}

type options = {
  permute : bool;
  fuse : bool;
  pad_strategy : Pipeline.strategy;
  scalar_replace : bool;
}

let default_options =
  {
    permute = true;
    fuse = true;
    pad_strategy = Pipeline.Grouppad_l1_l2;
    scalar_replace = false;
  }

let program_passes_of_options o =
  (if o.permute then [ Pass.permute ] else [])
  @ (if o.fuse then [ Pass.fusion ] else [])
  @ if o.scalar_replace then [ Pass.scalar_replace ] else []

let passes_of_options o =
  program_passes_of_options o @ Pipeline.passes o.pad_strategy

let default_passes = passes_of_options default_options

let optimize ?(options = default_options) ?passes machine program =
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  let layout_summary layout =
    List.iter
      (fun v ->
        let pad = Layout.pad_before layout v in
        let intra = Layout.intra_pad layout v in
        if pad > 0 || intra > 0 then
          say "  %s: pad_before %dB%s" v pad
            (if intra > 0 then Printf.sprintf ", column +%d elems" intra else ""))
      (Layout.array_names layout)
  in
  match passes with
  | Some ps ->
      (* Explicit pipeline: one threaded (program, layout) fold. *)
      let program, layout, events =
        Pass.run_all machine ps (program, Layout.initial program)
      in
      say "passes: %s"
        (String.concat " -> " (List.map (fun p -> p.Pass.name) ps));
      List.iter (fun e -> log := e.Pass.detail :: !log) events;
      layout_summary layout;
      { program; layout; log = List.rev !log }
  | None ->
      (* Legacy options shim: program passes, then the strategy's layout
         passes via Pipeline.layout_for, logged in the historical
         format. *)
      let program, _, events =
        Pass.run_all machine
          (program_passes_of_options options)
          (program, Layout.initial program)
      in
      List.iter (fun e -> log := e.Pass.detail :: !log) events;
      let layout = Pipeline.layout_for machine options.pad_strategy program in
      say "layout: %s" (Pipeline.strategy_name options.pad_strategy);
      layout_summary layout;
      { program; layout; log = List.rev !log }

let report ?options ?passes machine program =
  let optimized = optimize ?options ?passes machine program in
  let orig_layout = Layout.initial program in
  let r0 = Interp.run machine orig_layout program in
  let r1 = Interp.run machine optimized.layout optimized.program in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program %s on %s\n" program.Program.name
                           machine.Cs.Machine.name);
  List.iter (fun l -> Buffer.add_string buf ("  " ^ l ^ "\n")) optimized.log;
  let rates label r =
    Buffer.add_string buf (Printf.sprintf "  %-10s" label);
    List.iteri
      (fun i rate ->
        Buffer.add_string buf (Printf.sprintf " L%d %5.2f%%" (i + 1) (100.0 *. rate)))
      r.Interp.miss_rates;
    Buffer.add_string buf (Printf.sprintf "  cycles %.3e\n" r.Interp.cycles)
  in
  rates "original" r0;
  rates "optimized" r1;
  Buffer.add_string buf
    (Printf.sprintf "  model-time improvement: %.2f%%\n"
       (Cs.Cost_model.improvement ~orig:r0.Interp.cycles ~opt:r1.Interp.cycles));
  Buffer.contents buf
