(** The full optimization pipeline, combining every pass in the order the
    paper's infrastructure applies them:

    + loop permutation per nest toward memory order (miss-model ranked,
      dependence-checked);
    + profitable loop fusion of adjacent nests (two-level model);
    + intra-variable padding where a variable conflicts with itself;
    + inter-variable padding / group-reuse padding for the L1 cache,
      then L2MAXPAD when a second level exists;
    + optionally scalar replacement of register-carried loads.

    The pipeline is a composition of {!Pass.t} values: pass
    [~passes:[...]] to run an arbitrary sequence, or use the legacy
    {!options} record, which is translated to the equivalent pass list
    ({!passes_of_options}).  Tiling is not applied blindly — it is
    profitable for reduction-style nests like matrix multiplication, not
    for the stencils that dominate the suite — so it stays an explicit
    tool ({!Tiling}).

    Every decision is logged; [optimize] never changes what the program
    computes (each pass is legality-checked). *)

open Mlc_ir

type result = {
  program : Program.t;
  layout : Layout.t;
  log : string list;
}

(** Deprecated in favour of [~passes]; kept so existing callers
    compile.  [optimize ~options] behaves exactly as it always did. *)
type options = {
  permute : bool;
  fuse : bool;
  pad_strategy : Pipeline.strategy;
  scalar_replace : bool;
}

val default_options : options

(** The {!Pass.t} list an {!options} record denotes: enabled program
    passes in paper order, then [Pipeline.passes options.pad_strategy]. *)
val passes_of_options : options -> Pass.t list

(** [passes_of_options default_options] — the paper's default pipeline:
    permute, fusion, intra-pad, GROUPPAD, L2MAXPAD. *)
val default_passes : Pass.t list

(** [optimize ?options ?passes machine program].  When [passes] is given
    it wins over [options]: the list is folded over
    [(program, Layout.initial program)] via {!Pass.run_all}. *)
val optimize :
  ?options:options ->
  ?passes:Pass.t list ->
  Mlc_cachesim.Machine.t ->
  Program.t ->
  result

(** Convenience: simulate original vs optimized and report the paper's
    metrics (per-level miss rates and model-time improvement). *)
val report :
  ?options:options ->
  ?passes:Pass.t list ->
  Mlc_cachesim.Machine.t ->
  Program.t ->
  string
