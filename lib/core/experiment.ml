open Mlc_ir
module Cs = Mlc_cachesim

type outcome = {
  label : string;
  result : Interp.result;
}

let run ?backend machine ~label layout program =
  { label; result = Interp.run ?backend machine layout program }

let run_strategy ?backend machine strategy program =
  let layout = Pipeline.layout_for machine strategy program in
  run ?backend machine ~label:(Pipeline.strategy_name strategy) layout program

let time_improvement ~baseline outcome =
  Cs.Cost_model.improvement ~orig:baseline.result.Interp.cycles
    ~opt:outcome.result.Interp.cycles

let miss_rate_pct outcome level =
  match List.nth_opt outcome.result.Interp.miss_rates level with
  | Some r -> 100.0 *. r
  | None -> 0.0

let pp_outcome ppf o =
  Format.fprintf ppf "%-28s refs=%-10d" o.label o.result.Interp.total_refs;
  List.iteri
    (fun i r -> Format.fprintf ppf " L%d=%5.2f%%" (i + 1) (100.0 *. r))
    o.result.Interp.miss_rates;
  Format.fprintf ppf " cycles=%.3e mflops=%.1f" o.result.Interp.cycles
    o.result.Interp.mflops
