(** Running program versions and reporting the paper's metrics. *)

open Mlc_ir
module Cs = Mlc_cachesim

type outcome = {
  label : string;
  result : Interp.result;
}

(** Simulate one (layout, program) version ([backend] defaults to the
    reference cascade; see {!Interp.backend}). *)
val run :
  ?backend:Interp.backend ->
  Cs.Machine.t ->
  label:string ->
  Layout.t ->
  Program.t ->
  outcome

(** Simulate a pipeline strategy. *)
val run_strategy :
  ?backend:Interp.backend ->
  Cs.Machine.t ->
  Pipeline.strategy ->
  Program.t ->
  outcome

(** Execution-time improvement (percent, positive = faster) of [opt]
    over [baseline] under the machine's cost model. *)
val time_improvement : baseline:outcome -> outcome -> float

(** Per-level miss rate in percent (level 0 = L1). *)
val miss_rate_pct : outcome -> int -> float

val pp_outcome : Format.formatter -> outcome -> unit
