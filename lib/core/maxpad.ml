open Mlc_ir

let positions ~size layout =
  List.map
    (fun v -> (v, Layout.base layout v mod size))
    (Layout.array_names layout)

let circular_distance size a b =
  let d = (b - a) mod size in
  let d = if d < 0 then d + size else d in
  min d (size - d)

(* Spread variables toward targets k·size/n by choosing, for each variable
   in order, the pad increment from [increments] whose resulting position
   is closest to the target. *)
let spread ~size ~increments _program layout =
  let names = Layout.array_names layout in
  let n = List.length names in
  if n = 0 then layout
  else
    (* More arrays than cache bytes degenerates to spacing 0 — every
       target collapses onto position 0 and the division of the cache is
       meaningless; clamp so targets still advance. *)
    let spacing = max 1 (size / n) in
    List.fold_left
      (fun (layout, k) v ->
        let target = k * spacing mod size in
        let best = ref None in
        List.iter
          (fun inc ->
            let candidate = Layout.add_pad_before layout v inc in
            let pos = Layout.base candidate v mod size in
            let dist = circular_distance size pos target in
            match !best with
            | Some (d, _) when d <= dist -> ()
            | _ -> best := Some (dist, candidate))
          increments;
        let layout = match !best with Some (_, l) -> l | None -> layout in
        (layout, k + 1))
      (layout, 0) names
    |> fst

let apply ?(grain = 8) ~size program layout =
  (* Cap the candidate count so huge caches do not explode the search:
     position precision of size/4096 is far below a cache line.  The
     subsampled increments are generated directly — every [step]'th
     multiple of [grain] below [size] — instead of materializing the
     full size/grain-element list (≈1M entries for an 8 MB L2) only to
     filter it down to ≤4096. *)
  let increments =
    let count = (size + grain - 1) / grain in
    let step = max 1 (count / 4096) in
    let kept = (count + step - 1) / step in
    List.init kept (fun i -> i * step * grain)
  in
  spread ~size ~increments program layout

let apply_l2 ~s1 ~l2_size program layout =
  if l2_size mod s1 <> 0 then
    invalid_arg "Maxpad.apply_l2: L2 size not a multiple of S1";
  let increments =
    List.init (l2_size / s1) (fun k -> k * s1)
  in
  spread ~size:l2_size ~increments program layout
