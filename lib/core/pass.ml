open Mlc_ir
module Cs = Mlc_cachesim
module Obs = Mlc_obs.Obs

type event = { pass : string; detail : string }

type t = {
  name : string;
  applies : Cs.Machine.t -> Program.t -> bool;
  run :
    Cs.Machine.t ->
    Program.t * Layout.t ->
    Program.t * Layout.t * event list;
}

let always _ _ = true

let make ?(applies = always) name run = { name; applies; run }

let l1_geometry machine =
  match machine.Cs.Machine.geometries with
  | g :: _ -> g
  | [] -> invalid_arg "Pass: machine without cache levels"

(* --- program passes ------------------------------------------------------ *)

let permute =
  make "permute" (fun machine (program, layout) ->
      let line = Cs.Machine.level_line machine 0 in
      let events = ref [] in
      let program =
        Program.map_nests
          (fun nest ->
            let best = Permute.optimize layout ~line nest in
            if Nest.vars best <> Nest.vars nest then
              events :=
                {
                  pass = "permute";
                  detail =
                    Printf.sprintf "permuted (%s) -> (%s)"
                      (String.concat "," (Nest.vars nest))
                      (String.concat "," (Nest.vars best));
                }
                :: !events;
            best)
          program
      in
      (program, layout, List.rev !events))

let fusion =
  make "fusion"
    ~applies:(fun _ p -> List.length p.Program.nests > 1)
    (fun machine (program, layout) ->
      let fused, log = Fusion.optimize_program machine program in
      ( fused,
        layout,
        List.map (fun l -> { pass = "fusion"; detail = "fusion: " ^ l }) log ))

let scalar_replace =
  make "scalar-replace" (fun _machine (program, layout) ->
      let before = Program.ref_count program in
      let replaced = Scalar_replace.apply_program program in
      ( replaced,
        layout,
        [
          {
            pass = "scalar-replace";
            detail =
              Printf.sprintf "scalar replacement removed %d references per run"
                (before - Program.ref_count replaced);
          };
        ] ))

(* --- layout passes ------------------------------------------------------- *)

(* Decision events for a layout pass: the per-array pad deltas it chose. *)
let layout_events ~pass before after =
  List.filter_map
    (fun v ->
      let d_base = Layout.pad_before after v - Layout.pad_before before v in
      let d_intra = Layout.intra_pad after v - Layout.intra_pad before v in
      if d_base = 0 && d_intra = 0 then None
      else
        Some
          {
            pass;
            detail =
              Printf.sprintf "%s: %s %+dB%s" pass v d_base
                (if d_intra <> 0 then
                   Printf.sprintf ", column %+d elems" d_intra
                 else "");
          })
    (Layout.array_names after)

let layout_pass name f =
  make name (fun machine (program, layout) ->
      let after = f machine program layout in
      (program, after, layout_events ~pass:name layout after))

let intra_pad =
  layout_pass "intra-pad" (fun machine program layout ->
      let g = l1_geometry machine in
      Intra_pad.apply ~size:g.Cs.Level.size ~line:g.Cs.Level.line program layout)

let pad_l1 =
  layout_pass "pad" (fun machine program layout ->
      let g = l1_geometry machine in
      Pad.apply ~size:g.Cs.Level.size ~line:g.Cs.Level.line program layout)

let multilvlpad =
  layout_pass "multilvlpad" (fun machine program layout ->
      Multilvlpad.apply machine program layout)

let grouppad_l1 =
  layout_pass "grouppad" (fun machine program layout ->
      let g = l1_geometry machine in
      Grouppad.apply ~size:g.Cs.Level.size ~line:g.Cs.Level.line program layout)

let maxpad =
  layout_pass "maxpad" (fun machine program layout ->
      Maxpad.apply ~size:(Cs.Machine.s1 machine) program layout)

let l2maxpad =
  make "l2maxpad"
    ~applies:(fun machine _ -> List.length machine.Cs.Machine.geometries >= 1)
    (fun machine (program, layout) ->
      let s1 = Cs.Machine.s1 machine in
      let l2_size =
        match machine.Cs.Machine.geometries with
        | _ :: g2 :: _ -> g2.Cs.Level.size
        | _ -> s1
      in
      let after = Maxpad.apply_l2 ~s1 ~l2_size program layout in
      (program, after, layout_events ~pass:"l2maxpad" layout after))

(* --- execution ----------------------------------------------------------- *)

let instrument pass =
  {
    pass with
    run =
      (fun machine pl ->
        Obs.with_span ~cat:"pass" ("pass:" ^ pass.name) (fun () ->
            let program, layout, events = pass.run machine pl in
            List.iter
              (fun e ->
                Obs.instant ~cat:"decision"
                  ~args:[ ("pass", `Str e.pass) ]
                  e.detail)
              events;
            if events <> [] then
              Obs.count ~n:(List.length events)
                ("pass." ^ pass.name ^ ".decisions");
            (program, layout, events)));
  }

let run_one machine pass (program, layout) =
  if pass.applies machine program then pass.run machine (program, layout)
  else (program, layout, [])

(* [instrument] is shadowed by run_all's optional argument below. *)
let instrumented = instrument

let run_all ?(instrument = true) machine passes (program, layout) =
  let wrap = if instrument then instrumented else Fun.id in
  List.fold_left
    (fun (p, l, acc) pass ->
      let p', l', events = run_one machine (wrap pass) (p, l) in
      (p', l', acc @ events))
    (program, layout, []) passes
