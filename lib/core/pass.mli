(** The unified optimization-pass API.

    Every transformation of the pipeline — loop permutation, fusion,
    scalar replacement, and the five padding passes — is exposed as a
    {!t}: a named function from a [(program, layout)] pair to a new pair
    plus a list of {!event}s describing the decisions taken.  Program
    passes leave the layout untouched; layout passes leave the program
    untouched; both shapes compose freely.

    {!Pipeline.layout_for} and {!Compiler.optimize} are compositions of
    [t] lists run through {!run_all}, so observability instrumentation
    (a span per pass, an instant event per decision, a decision counter)
    lives in exactly one place — {!instrument} — instead of being
    replicated at every call site. *)

open Mlc_ir
module Cs = Mlc_cachesim

(** A decision taken by a pass, e.g. ["permuted (i,j) -> (j,i)"].
    [detail] is the human-readable log line; [pass] the emitting pass. *)
type event = { pass : string; detail : string }

type t = {
  name : string;
  applies : Cs.Machine.t -> Program.t -> bool;
      (** cheap gate; a pass that does not apply is skipped entirely *)
  run :
    Cs.Machine.t ->
    Program.t * Layout.t ->
    Program.t * Layout.t * event list;
}

(** [make ?applies name run] (default [applies]: always). *)
val make :
  ?applies:(Cs.Machine.t -> Program.t -> bool) ->
  string ->
  (Cs.Machine.t -> Program.t * Layout.t -> Program.t * Layout.t * event list) ->
  t

(** {2 The pass library} *)

(** Loop permutation toward memory order (miss-model ranked,
    dependence-checked), per nest. *)
val permute : t

(** Profitable loop fusion of adjacent nests (Section 4 two-level model). *)
val fusion : t

(** Scalar replacement of register-carried loads (changes the reference
    stream). *)
val scalar_replace : t

(** Intra-variable (column) padding against self-conflicts on L1. *)
val intra_pad : t

(** PAD against the L1 cache (Section 3.1.1). *)
val pad_l1 : t

(** MULTILVLPAD on the synthetic (S1, Lmax) configuration (Section 3.1.2). *)
val multilvlpad : t

(** GROUPPAD on the L1 cache (Section 3.2.1). *)
val grouppad_l1 : t

(** MAXPAD on the L1 cache (Section 3.2.2, single level). *)
val maxpad : t

(** L2MAXPAD: spread on the L2 cache with pads that are multiples of S1;
    applies only when the machine has a second level. *)
val l2maxpad : t

(** {2 Execution} *)

(** [instrument pass] wraps [pass.run] in an [Obs] span
    (["pass:<name>"], category ["pass"]), emits one instant event per
    decision and bumps the ["pass.<name>.decisions"] counter.  A no-op
    when observability is disabled. *)
val instrument : t -> t

(** [run_one machine pass (p, l)] — applies the gate, then the pass. *)
val run_one :
  Cs.Machine.t -> t -> Program.t * Layout.t -> Program.t * Layout.t * event list

(** [run_all machine passes (p, l)] folds the passes left to right,
    concatenating events.  Each pass is wrapped in {!instrument} unless
    [instrument:false]. *)
val run_all :
  ?instrument:bool ->
  Cs.Machine.t ->
  t list ->
  Program.t * Layout.t ->
  Program.t * Layout.t * event list
