open Mlc_ir
module Cs = Mlc_cachesim

type strategy =
  | Original
  | Pad_l1
  | Pad_multilevel
  | Grouppad_l1
  | Grouppad_l1_l2

let strategy_name = function
  | Original -> "Orig"
  | Pad_l1 -> "L1 Opt (PAD)"
  | Pad_multilevel -> "L1&L2 Opt (MULTILVLPAD)"
  | Grouppad_l1 -> "L1 Opt (GROUPPAD)"
  | Grouppad_l1_l2 -> "L1&L2 Opt (GROUPPAD+L2MAXPAD)"

let all = [ Original; Pad_l1; Pad_multilevel; Grouppad_l1; Grouppad_l1_l2 ]

let passes = function
  | Original -> []
  | Pad_l1 -> [ Pass.intra_pad; Pass.pad_l1 ]
  | Pad_multilevel -> [ Pass.intra_pad; Pass.multilvlpad ]
  | Grouppad_l1 -> [ Pass.intra_pad; Pass.grouppad_l1 ]
  | Grouppad_l1_l2 -> [ Pass.intra_pad; Pass.grouppad_l1; Pass.l2maxpad ]

let layout_for machine strategy program =
  let _, layout, _ =
    Pass.run_all machine (passes strategy) (program, Layout.initial program)
  in
  layout
