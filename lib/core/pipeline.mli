(** End-to-end optimization recipes — the "versions" the paper compares.

    Each strategy takes a program and returns the layout its passes
    produce (the program text itself is unchanged by the data
    transformations; fusion/tiling variants return transformed programs
    separately via {!Fusion} / {!Tiling}). *)

open Mlc_ir
module Cs = Mlc_cachesim

type strategy =
  | Original        (** packed layout, no padding *)
  | Pad_l1          (** intra-pad (when needed) + PAD on the L1 cache *)
  | Pad_multilevel  (** intra-pad + MULTILVLPAD (S1, Lmax) *)
  | Grouppad_l1     (** intra-pad + GROUPPAD on the L1 cache *)
  | Grouppad_l1_l2  (** intra-pad + GROUPPAD + L2MAXPAD *)

val strategy_name : strategy -> string

(** The {!Pass.t} composition a strategy denotes; [layout_for] is
    [Pass.run_all] over this list.  [Original] is the empty list. *)
val passes : strategy -> Pass.t list

(** [layout_for machine strategy program] runs the passes. *)
val layout_for : Cs.Machine.t -> strategy -> Program.t -> Layout.t

(** All five strategies in presentation order. *)
val all : strategy list
