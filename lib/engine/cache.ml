module Obs = Mlc_obs.Obs

type t = {
  dir : string;
  version : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  quarantined : int Atomic.t;
}

let default_dir () =
  match Sys.getenv_opt "MLC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_mlc_cache"

(* The models' identity: a change to any simulator/optimizer source means
   old results may be wrong, so it participates in every key.  Old entries
   are simply never addressed again — keys invalidate, mtimes never do.

   The version must describe the *mlc build*, not whatever directory the
   user happens to run from: `git describe` is anchored at the directory
   of [Sys.executable_name] (inside the source tree for any dune-built
   binary), and an installed binary outside any repository falls back to
   a digest of the executable itself.  Either way, running `mlc` from an
   unrelated checkout can no longer key results against the wrong
   repository's version. *)
let git_describe_memo = ref None

let git_describe () =
  match !git_describe_memo with
  | Some v -> v
  | None ->
      let v =
        match Sys.getenv_opt "MLC_MODELS_VERSION" with
        | Some v when v <> "" -> v
        | _ -> (
            let from_git =
              try
                let cmd =
                  Printf.sprintf "git -C %s describe --always --dirty 2>/dev/null"
                    (Filename.quote (Filename.dirname Sys.executable_name))
                in
                let ic = Unix.open_process_in cmd in
                let line = try input_line ic with End_of_file -> "" in
                match (Unix.close_process_in ic, line) with
                | Unix.WEXITED 0, line when line <> "" -> Some line
                | _ -> None
              with _ -> None
            in
            match from_git with
            | Some v -> v
            | None -> (
                match Digest.file Sys.executable_name with
                | d -> "exe-" ^ String.sub (Digest.to_hex d) 0 12
                | exception _ -> "unversioned"))
      in
      git_describe_memo := Some v;
      v

let create_dir_p dir =
  (* mkdir -p, tolerant of races with sibling workers *)
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_ ?dir ?version () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let version = match version with Some v -> v | None -> git_describe () in
  create_dir_p dir;
  {
    dir;
    version;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    quarantined = Atomic.make 0;
  }

let dir t = t.dir

let version t = t.version

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let quarantined t = Atomic.get t.quarantined

let key t spec =
  Digest.to_hex (Digest.string (t.version ^ "\x00" ^ Job.canonical spec))

let path_of_key t k =
  Filename.concat (Filename.concat t.dir (String.sub k 0 2)) (k ^ ".bin")

let quarantine_dir_name = "quarantine"

let quarantine_dir t = Filename.concat t.dir quarantine_dir_name

(* A damaged entry is evidence of a problem (torn write, disk fault,
   version of mlc with a different result layout) — silently treating it
   as a miss forever would recompute and re-store over it on every run
   without anyone noticing.  Instead the file is moved aside under
   quarantine/, where `mlc cache stats` surfaces it, and the slot is
   recomputed cleanly. *)
let quarantine t path =
  let dst = Filename.concat (quarantine_dir t) (Filename.basename path) in
  (try
     create_dir_p (quarantine_dir t);
     Sys.rename path dst
   with Sys_error _ | Unix.Unix_error _ -> (
     (* Fall back to deleting: the entry must not stay addressable. *)
     try Sys.remove path with Sys_error _ -> ()));
  Atomic.incr t.quarantined;
  Obs.count "engine.cache.quarantined"

(* Entries carry the canonical spec string so a (vanishingly unlikely)
   digest collision or a truncated file degrades to a miss, never to a
   wrong result. *)
type entry_read = Entry of Job.result | Damaged | Absent

let read_entry path wanted_canonical =
  if not (Sys.file_exists path) then Absent
  else
    match open_in_bin path with
    | exception Sys_error _ -> Damaged (* exists but unreadable *)
    | ic ->
        let entry =
          try
            let (stored_canonical, result) : string * Job.result =
              Marshal.from_channel ic
            in
            if stored_canonical = wanted_canonical then Entry result else Damaged
          with _ -> Damaged
        in
        close_in_noerr ic;
        entry

let find t spec =
  let canon = Job.canonical spec in
  let path = path_of_key t (key t spec) in
  match read_entry path canon with
  | Entry r ->
      Atomic.incr t.hits;
      Some r
  | Absent ->
      Atomic.incr t.misses;
      None
  | Damaged ->
      quarantine t path;
      Atomic.incr t.misses;
      None

let store t spec (result : Job.result) =
  let k = key t spec in
  let path = path_of_key t k in
  create_dir_p (Filename.dirname path);
  (* Write-to-temp + rename: concurrent workers storing the same key race
     benignly (last rename wins, both files are identical). *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  let remove_tmp () = try Sys.remove tmp with Sys_error _ -> () in
  (try
     let oc = open_out_bin tmp in
     (* Always close the channel and reclaim the temp file, whatever
        Marshal or the filesystem throws mid-write — IO errors degrade
        to "not cached" below, anything else propagates cleaned-up. *)
     (try
        Marshal.to_channel oc (Job.canonical spec, result) [];
        close_out oc
      with e ->
        close_out_noerr oc;
        remove_tmp ();
        raise e);
     Sys.rename tmp path;
     Atomic.incr t.stores
   with Sys_error _ | Unix.Unix_error _ ->
     (* A read-only or vanished cache directory degrades to no caching. *)
     remove_tmp ());
  ()

(* Deterministic damage for the fault-injection tests: truncate the entry
   mid-payload so the next lookup must quarantine and recompute it. *)
let corrupt t spec =
  let path = path_of_key t (key t spec) in
  try
    let len = (Unix.stat path).Unix.st_size in
    Unix.truncate path (max 1 (len / 2))
  with Unix.Unix_error _ | Sys_error _ -> ()

let invalidate t spec =
  match Sys.remove (path_of_key t (key t spec)) with
  | () -> ()
  | exception Sys_error _ -> ()

(* ----------------------------------------------------------------- *)
(* Maintenance: stats / verify / gc                                   *)
(* ----------------------------------------------------------------- *)

type disk_stats = {
  entries : int;
  entry_bytes : int;
  quarantined_files : int;
  quarantined_bytes : int;
  tmp_files : int;
}

let is_bin name = Filename.check_suffix name ".bin"

let is_tmp name =
  (* "<key>.bin.tmp.<pid>.<domain>" — anything with ".tmp." in it *)
  let rec has i =
    i + 5 <= String.length name && (String.sub name i 5 = ".tmp." || has (i + 1))
  in
  has 0

let file_size path = try (Unix.stat path).Unix.st_size with _ -> 0

(* The cache's two-hex-digit shard directories, excluding quarantine/ and
   any sweep manifests living next to them. *)
let shard_dirs t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             String.length n = 2
             && Sys.is_directory (Filename.concat t.dir n))
      |> List.sort compare

let iter_shard_files t f =
  List.iter
    (fun shard ->
      let d = Filename.concat t.dir shard in
      match Sys.readdir d with
      | exception Sys_error _ -> ()
      | names ->
          Array.sort compare names;
          Array.iter (fun n -> f (Filename.concat d n)) names)
    (shard_dirs t)

let disk_stats t =
  let entries = ref 0 and entry_bytes = ref 0 and tmp_files = ref 0 in
  iter_shard_files t (fun path ->
      if is_tmp (Filename.basename path) then incr tmp_files
      else if is_bin (Filename.basename path) then begin
        incr entries;
        entry_bytes := !entry_bytes + file_size path
      end);
  let qd = quarantine_dir t in
  let quarantined_files = ref 0 and quarantined_bytes = ref 0 in
  (match Sys.readdir qd with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun n ->
          incr quarantined_files;
          quarantined_bytes := !quarantined_bytes + file_size (Filename.concat qd n))
        names);
  {
    entries = !entries;
    entry_bytes = !entry_bytes;
    quarantined_files = !quarantined_files;
    quarantined_bytes = !quarantined_bytes;
    tmp_files = !tmp_files;
  }

type verify_report = { checked : int; intact : int; damaged : int }

(* An entry is intact when it unmarshals to a (canonical, result) pair.
   Entries written under other versions of the models hash to different
   file names, so they are unreadable-by-key but still verifiable here;
   damage means bytes, not staleness. *)
let verify t =
  let checked = ref 0 and intact = ref 0 and damaged = ref 0 in
  iter_shard_files t (fun path ->
      if is_bin (Filename.basename path) && not (is_tmp (Filename.basename path))
      then begin
        incr checked;
        let ok =
          match open_in_bin path with
          | exception Sys_error _ -> false
          | ic ->
              let ok =
                match (Marshal.from_channel ic : string * Job.result) with
                | stored_canonical, _ -> String.length stored_canonical > 0
                | exception _ -> false
              in
              close_in_noerr ic;
              ok
        in
        if ok then incr intact
        else begin
          incr damaged;
          quarantine t path
        end
      end);
  { checked = !checked; intact = !intact; damaged = !damaged }

type gc_report = { removed_files : int; removed_bytes : int }

let gc ?(all = false) t =
  let removed_files = ref 0 and removed_bytes = ref 0 in
  let remove path =
    let sz = file_size path in
    match Sys.remove path with
    | () ->
        incr removed_files;
        removed_bytes := !removed_bytes + sz
    | exception Sys_error _ -> ()
  in
  (* Stale temp files are litter from interrupted stores; quarantined
     entries have served their diagnostic purpose once gc is invoked. *)
  iter_shard_files t (fun path ->
      if is_tmp (Filename.basename path) then remove path
      else if all && is_bin (Filename.basename path) then remove path);
  let qd = quarantine_dir t in
  (match Sys.readdir qd with
  | exception Sys_error _ -> ()
  | names -> Array.iter (fun n -> remove (Filename.concat qd n)) names);
  { removed_files = !removed_files; removed_bytes = !removed_bytes }
