type t = {
  dir : string;
  version : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
}

let default_dir () =
  match Sys.getenv_opt "MLC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_mlc_cache"

(* The models' identity: a change to any simulator/optimizer source means
   old results may be wrong, so it participates in every key.  Old entries
   are simply never addressed again — keys invalidate, mtimes never do. *)
let git_describe_memo = ref None

let git_describe () =
  match !git_describe_memo with
  | Some v -> v
  | None ->
      let v =
        match Sys.getenv_opt "MLC_MODELS_VERSION" with
        | Some v when v <> "" -> v
        | _ -> (
            try
              let ic =
                Unix.open_process_in "git describe --always --dirty 2>/dev/null"
              in
              let line = try input_line ic with End_of_file -> "" in
              match (Unix.close_process_in ic, line) with
              | Unix.WEXITED 0, line when line <> "" -> line
              | _ -> "unversioned"
            with _ -> "unversioned")
      in
      git_describe_memo := Some v;
      v

let create_dir_p dir =
  (* mkdir -p, tolerant of races with sibling workers *)
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_ ?dir ?version () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let version = match version with Some v -> v | None -> git_describe () in
  create_dir_p dir;
  {
    dir;
    version;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
  }

let dir t = t.dir

let version t = t.version

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let key t spec =
  Digest.to_hex (Digest.string (t.version ^ "\x00" ^ Job.canonical spec))

let path_of_key t k =
  Filename.concat (Filename.concat t.dir (String.sub k 0 2)) (k ^ ".bin")

(* Entries carry the canonical spec string so a (vanishingly unlikely)
   digest collision or a truncated file degrades to a miss, never to a
   wrong result. *)
let read_entry path wanted_key =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let entry =
        try
          let (stored_key, result) : string * Job.result =
            Marshal.from_channel ic
          in
          if stored_key = wanted_key then Some result else None
        with _ -> None
      in
      close_in_noerr ic;
      entry

let find t spec =
  let canon = Job.canonical spec in
  match read_entry (path_of_key t (key t spec)) canon with
  | Some r ->
      Atomic.incr t.hits;
      Some r
  | None ->
      Atomic.incr t.misses;
      None

let store t spec (result : Job.result) =
  let k = key t spec in
  let path = path_of_key t k in
  create_dir_p (Filename.dirname path);
  (* Write-to-temp + rename: concurrent workers storing the same key race
     benignly (last rename wins, both files are identical). *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  (try
     let oc = open_out_bin tmp in
     Marshal.to_channel oc (Job.canonical spec, result) [];
     close_out oc;
     Sys.rename tmp path;
     Atomic.incr t.stores
   with Sys_error _ | Unix.Unix_error _ ->
     (* A read-only or vanished cache directory degrades to no caching. *)
     (try Sys.remove tmp with Sys_error _ -> ()));
  ()

let invalidate t spec =
  match Sys.remove (path_of_key t (key t spec)) with
  | () -> ()
  | exception Sys_error _ -> ()
