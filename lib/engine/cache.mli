(** Content-addressed on-disk result cache.

    Key = MD5 digest of the job's canonical spec string (kernel, size,
    strategy, machine, attached models) salted with the {e models
    version} — [git describe --always --dirty] of this repository, or
    [MLC_MODELS_VERSION] when set.  Changing any model source changes the
    version, so every old key silently stops being addressed: entries are
    invalidated {e by key}, never by mtime.

    Value = [Marshal] of (canonical spec, {!Job.result}) — the per-level
    counters and the cost breakdown.  Entries are written to a temp file
    and renamed into place, so concurrent workers and concurrent
    processes can share one cache directory. *)

type t

(** [MLC_CACHE_DIR] or ["_mlc_cache"]. *)
val default_dir : unit -> string

(** The models version used by default keys (memoized per process). *)
val git_describe : unit -> string

(** [open_ ?dir ?version ()] creates the directory if needed.
    [version] defaults to {!git_describe}. *)
val open_ : ?dir:string -> ?version:string -> unit -> t

val dir : t -> string

val version : t -> string

(** The hex key a spec is filed under (version-salted digest). *)
val key : t -> Job.spec -> string

(** Lookup; counts a hit or a miss.  Corrupt or mismatching entries read
    as misses. *)
val find : t -> Job.spec -> Job.result option

(** Store a result; errors (read-only dir, …) degrade to not caching. *)
val store : t -> Job.spec -> Job.result -> unit

(** Drop one key's entry, if present. *)
val invalidate : t -> Job.spec -> unit

(** Lifetime lookup counters for this handle. *)
val hits : t -> int

val misses : t -> int
