(** Content-addressed on-disk result cache.

    Key = MD5 digest of the job's canonical spec string (kernel, size,
    strategy, machine, attached models) salted with the {e models
    version} — [git describe --always --dirty] anchored at the mlc
    binary's own source tree, or [MLC_MODELS_VERSION] when set.
    Changing any model source changes the version, so every old key
    silently stops being addressed: entries are invalidated {e by key},
    never by mtime.

    Value = [Marshal] of (canonical spec, {!Job.result}) — the per-level
    counters and the cost breakdown.  Entries are written to a temp file
    and renamed into place, so concurrent workers and concurrent
    processes can share one cache directory.

    Damaged entries (torn writes, disk faults, truncation) are moved to
    [<dir>/quarantine/] on first contact instead of silently reading as
    misses forever; [mlc cache stats] surfaces them, [mlc cache gc]
    reclaims them, and the [engine.cache.quarantined] counter records
    every quarantine. *)

type t

(** [MLC_CACHE_DIR] or ["_mlc_cache"]. *)
val default_dir : unit -> string

(** The models version used by default keys (memoized per process):
    [MLC_MODELS_VERSION] if set, else [git describe] of the source tree
    containing the running executable, else a digest of the executable
    itself ([exe-<hex>]) — never of whatever directory the process was
    started from. *)
val git_describe : unit -> string

(** [open_ ?dir ?version ()] creates the directory if needed.
    [version] defaults to {!git_describe}. *)
val open_ : ?dir:string -> ?version:string -> unit -> t

val dir : t -> string

val version : t -> string

(** The hex key a spec is filed under (version-salted digest). *)
val key : t -> Job.spec -> string

(** Where damaged entries are moved: [<dir>/quarantine]. *)
val quarantine_dir : t -> string

(** Lookup; counts a hit or a miss.  A damaged or key-mismatched entry
    is quarantined and reads as a miss, so the caller recomputes. *)
val find : t -> Job.spec -> Job.result option

(** Store a result; IO errors (read-only dir, …) degrade to not caching.
    The temp file is always closed and removed when anything goes wrong
    mid-write — no stranded channels, no [.tmp] litter. *)
val store : t -> Job.spec -> Job.result -> unit

(** Truncate a stored entry in place (deterministic damage for the
    fault-injection tests; see {!Fault.kind}). *)
val corrupt : t -> Job.spec -> unit

(** Drop one key's entry, if present. *)
val invalidate : t -> Job.spec -> unit

(** Lifetime lookup counters for this handle. *)
val hits : t -> int

val misses : t -> int

(** Entries quarantined through this handle. *)
val quarantined : t -> int

(** {2 Maintenance (the [mlc cache] subcommand)} *)

type disk_stats = {
  entries : int;  (** readable-named [.bin] entries across all shards *)
  entry_bytes : int;
  quarantined_files : int;
  quarantined_bytes : int;
  tmp_files : int;  (** stale temp files from interrupted stores *)
}

(** Walk the cache directory (deterministic shard order). *)
val disk_stats : t -> disk_stats

type verify_report = { checked : int; intact : int; damaged : int }

(** Read every entry; quarantine the ones that do not unmarshal.
    Entries written under other model versions are still verifiable —
    damage means bytes, not staleness. *)
val verify : t -> verify_report

type gc_report = { removed_files : int; removed_bytes : int }

(** Remove stale temp files and everything in quarantine; with [~all],
    also remove every entry. *)
val gc : ?all:bool -> t -> gc_report
