module Cs = Mlc_cachesim
module Obs = Mlc_obs.Obs

(* The shared per-job body: resolve against the cache, execute misses,
   store them back — all under Fault supervision so transient failures
   retry and ultimate failures come back as data, never as an exception
   escaping a worker domain. *)
let one ?cache ?progress ?retry ~worker spec =
  let canon = Job.canonical spec in
  let supervised =
    Fault.supervise ?policy:retry ~name:(Job.describe spec) (fun () ->
        Fault.inject canon;
        let cached = Option.bind cache (fun c -> Cache.find c spec) in
        match cached with
        | Some r -> (r, true)
        | None ->
            let r = Job.execute spec in
            Option.iter
              (fun c ->
                Cache.store c spec r;
                if Fault.wants_corrupt canon then Cache.corrupt c spec)
              cache;
            (r, false))
  in
  match supervised with
  | Error _ as e -> e
  | Ok (result, cache_hit) ->
      Obs.count "engine.jobs";
      Obs.count (if cache_hit then "engine.cache.hits" else "engine.cache.misses");
      Option.iter
        (fun p ->
          Progress.record p ~worker ~cache_hit
            ~refs:(if cache_hit then 0 else result.Job.interp.Mlc_ir.Interp.total_refs))
        progress;
      Ok result

let run_collect ?cache ?progress ?obs ?retry ?cancel ?(stop_on_failure = false)
    ?jobs specs =
  Option.iter (fun p -> Progress.expect p (Array.length specs)) progress;
  let one = one ?cache ?progress ?retry in
  match obs with
  | None ->
      let stop = if stop_on_failure then Some Result.is_error else None in
      Pool.map_opt ?jobs ?cancel ?stop one specs
  | Some dst ->
      (* Each job records into a private per-job buffer tagged with its
         worker, so the hot path stays lock-free; the buffers are merged
         into [dst] in spec (submission) order, which makes every counter
         total and the event sequence independent of the worker count.
         Failures are caught inside the job span, so every buffer —
         including a failed job's — holds balanced spans, and completed
         jobs keep their telemetry even when a sibling cell fails. *)
      let instrumented ~worker spec =
        let buf = Obs.Buf.create ~tid:worker () in
        let result =
          Obs.with_buf buf (fun () ->
              Obs.with_span ~cat:"job"
                ~args:[ ("worker", `Int worker) ]
                (Job.describe spec)
                (fun () -> one ~worker spec))
        in
        (result, buf)
      in
      let stop =
        if stop_on_failure then Some (fun (r, _) -> Result.is_error r) else None
      in
      let pairs = Pool.map_opt ?jobs ?cancel ?stop instrumented specs in
      Array.iter
        (function Some (_, buf) -> Obs.Buf.merge ~into:dst buf | None -> ())
        pairs;
      Array.map (Option.map fst) pairs

let run ?cache ?progress ?obs ?retry ?jobs specs =
  let slots =
    run_collect ?cache ?progress ?obs ?retry ~stop_on_failure:true ?jobs specs
  in
  (* Fail fast, but only after the merge above: completed jobs' buffers
     are already in [obs], so a failing cell no longer truncates the
     trace of everything that did finish. *)
  let first_error =
    Array.fold_left
      (fun acc slot ->
        match (acc, slot) with
        | None, Some (Error f) -> Some f
        | acc, _ -> acc)
      None slots
  in
  match first_error with
  | Some f -> Printexc.raise_with_backtrace f.Fault.exn f.Fault.backtrace
  | None ->
      Array.map
        (function
          | Some (Ok r) -> r
          (* No error and no cancel flag was passed: every slot ran. *)
          | Some (Error _) | None -> assert false)
        slots

let merged_stats results =
  Array.fold_left
    (fun acc (r : Job.result) ->
      match acc with
      | [] -> List.map (fun s -> Cs.Stats.add (Cs.Stats.zero ()) s) r.Job.level_stats
      | acc ->
          if List.length acc <> List.length r.Job.level_stats then
            invalid_arg "Engine.merged_stats: results with different level counts"
          else List.map2 Cs.Stats.add acc r.Job.level_stats)
    [] results
