module Cs = Mlc_cachesim
module Obs = Mlc_obs.Obs

let run ?cache ?progress ?obs ?jobs specs =
  Option.iter (fun p -> Progress.expect p (Array.length specs)) progress;
  let one ~worker spec =
    let cached = Option.bind cache (fun c -> Cache.find c spec) in
    let result, cache_hit =
      match cached with
      | Some r -> (r, true)
      | None ->
          let r = Job.execute spec in
          Option.iter (fun c -> Cache.store c spec r) cache;
          (r, false)
    in
    Obs.count "engine.jobs";
    Obs.count (if cache_hit then "engine.cache.hits" else "engine.cache.misses");
    Option.iter
      (fun p ->
        Progress.record p ~worker ~cache_hit
          ~refs:(if cache_hit then 0 else result.Job.interp.Mlc_ir.Interp.total_refs))
      progress;
    result
  in
  match obs with
  | None -> Pool.map ?jobs one specs
  | Some dst ->
      (* Each job records into a private per-job buffer tagged with its
         worker, so the hot path stays lock-free; the buffers are merged
         into [dst] in spec (submission) order, which makes every counter
         total and the event sequence independent of the worker count. *)
      let instrumented ~worker spec =
        let buf = Obs.Buf.create ~tid:worker () in
        let result =
          Obs.with_buf buf (fun () ->
              Obs.with_span ~cat:"job"
                ~args:[ ("worker", `Int worker) ]
                (Job.describe spec)
                (fun () -> one ~worker spec))
        in
        (result, buf)
      in
      let pairs = Pool.map ?jobs instrumented specs in
      Array.iter (fun (_, buf) -> Obs.Buf.merge ~into:dst buf) pairs;
      Array.map fst pairs

let merged_stats results =
  Array.fold_left
    (fun acc (r : Job.result) ->
      match acc with
      | [] -> List.map (fun s -> Cs.Stats.add (Cs.Stats.zero ()) s) r.Job.level_stats
      | acc ->
          if List.length acc <> List.length r.Job.level_stats then
            invalid_arg "Engine.merged_stats: results with different level counts"
          else List.map2 Cs.Stats.add acc r.Job.level_stats)
    [] results
