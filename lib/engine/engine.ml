module Cs = Mlc_cachesim

let run ?cache ?progress ?jobs specs =
  Option.iter (fun p -> Progress.expect p (Array.length specs)) progress;
  let one ~worker spec =
    let cached = Option.bind cache (fun c -> Cache.find c spec) in
    let result, cache_hit =
      match cached with
      | Some r -> (r, true)
      | None ->
          let r = Job.execute spec in
          Option.iter (fun c -> Cache.store c spec r) cache;
          (r, false)
    in
    Option.iter
      (fun p ->
        Progress.record p ~worker ~cache_hit
          ~refs:(if cache_hit then 0 else result.Job.interp.Mlc_ir.Interp.total_refs))
      progress;
    result
  in
  Pool.map ?jobs one specs

let merged_stats results =
  Array.fold_left
    (fun acc (r : Job.result) ->
      match acc with
      | [] -> List.map (fun s -> Cs.Stats.add (Cs.Stats.zero ()) s) r.Job.level_stats
      | acc ->
          if List.length acc <> List.length r.Job.level_stats then
            invalid_arg "Engine.merged_stats: results with different level counts"
          else List.map2 Cs.Stats.add acc r.Job.level_stats)
    [] results
