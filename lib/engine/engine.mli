(** The experiment engine: content-addressed caching in front of the
    domain pool.

    [run specs] resolves each spec against the cache, executes the misses
    on the worker pool, stores them back, and returns results in spec
    order — so output built from the results is identical for any worker
    count, and a warm cache replays a whole sweep without simulating a
    single reference.

    Determinism contract: [Job.execute] is a pure function of the spec,
    the pool returns results in input order, and cached results are the
    marshalled bytes of a previous execution — therefore the result array
    is byte-for-byte independent of [jobs], of scheduling, and of which
    entries were cache hits.

    Every job runs under {!Fault.supervise}: pass [?retry] to retry
    transient failures with exponential backoff and to impose per-job
    deadlines.  The default policy (no retries) with no injected faults
    leaves behavior and output unchanged. *)

(** [run ?cache ?progress ?obs ?retry ?jobs specs].  [jobs] defaults to
    {!Pool.default_jobs}.  Fail-fast error policy: on a job failure the
    pool drains, completed jobs' Obs buffers are still merged into
    [obs], and the first (lowest-index) failure's exception is re-raised
    with its backtrace.

    When [obs] is given, each job executes inside a private
    [Mlc_obs.Obs] buffer tagged with its worker index and wrapped in a
    ["job"] span named [Job.describe spec]; per-job buffers are merged
    into [obs] in spec order, so counter totals and merged event
    sequences do not depend on [jobs].  (Cache-hit counters do depend on
    the cache's prior contents — pass no cache for reproducible
    counts.) *)
val run :
  ?cache:Cache.t ->
  ?progress:Progress.t ->
  ?obs:Mlc_obs.Obs.Buf.t ->
  ?retry:Fault.policy ->
  ?jobs:int ->
  Job.spec array ->
  Job.result array

(** [run_collect] — the error-isolating variant: each cell comes back as
    [Some (Ok result)], [Some (Error failure)] (the cell failed after
    its retries; see {!Fault.failure}), or [None] (the cell never ran
    because the pool drained first).  With [~stop_on_failure:true] the
    first failure drains the pool ([`Fail_fast] with failures as data);
    with the default [false] ([`Collect]) every cell runs regardless —
    one poisoned cell no longer discards a thousand finished ones.
    [cancel] is a cooperative interruption flag (e.g. set from a SIGINT
    handler): once true, workers stop claiming cells and the slots never
    claimed come back [None].

    When no cell fails and no cancellation fires, the [Ok] payloads are
    exactly {!run}'s results — same order, same bytes, for any [jobs]
    and either [stop_on_failure]. *)
val run_collect :
  ?cache:Cache.t ->
  ?progress:Progress.t ->
  ?obs:Mlc_obs.Obs.Buf.t ->
  ?retry:Fault.policy ->
  ?cancel:bool Atomic.t ->
  ?stop_on_failure:bool ->
  ?jobs:int ->
  Job.spec array ->
  (Job.result, Fault.failure) result option array

(** Per-level counters summed over all results with the associative
    [Stats.add] — totals independent of merge order.
    @raise Invalid_argument when results span machines with different
    level counts *)
val merged_stats : Job.result array -> Mlc_cachesim.Stats.t list
