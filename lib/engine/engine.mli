(** The experiment engine: content-addressed caching in front of the
    domain pool.

    [run specs] resolves each spec against the cache, executes the misses
    on the worker pool, stores them back, and returns results in spec
    order — so output built from the results is identical for any worker
    count, and a warm cache replays a whole sweep without simulating a
    single reference.

    Determinism contract: [Job.execute] is a pure function of the spec,
    [Pool.map] returns results in input order, and cached results are the
    marshalled bytes of a previous execution — therefore the result array
    is byte-for-byte independent of [jobs], of scheduling, and of which
    entries were cache hits. *)

(** [run ?cache ?progress ?obs ?jobs specs].  [jobs] defaults to
    {!Pool.default_jobs}.  Failures propagate as in {!Pool.map}
    (first exception re-raised after shutdown).

    When [obs] is given, each job executes inside a private
    [Mlc_obs.Obs] buffer tagged with its worker index and wrapped in a
    ["job"] span named [Job.describe spec]; per-job buffers are merged
    into [obs] in spec order, so counter totals and merged event
    sequences do not depend on [jobs].  (Cache-hit counters do depend on
    the cache's prior contents — pass no cache for reproducible
    counts.) *)
val run :
  ?cache:Cache.t ->
  ?progress:Progress.t ->
  ?obs:Mlc_obs.Obs.Buf.t ->
  ?jobs:int ->
  Job.spec array ->
  Job.result array

(** Per-level counters summed over all results with the associative
    [Stats.add] — totals independent of merge order.
    @raise Invalid_argument when results span machines with different
    level counts *)
val merged_stats : Job.result array -> Mlc_cachesim.Stats.t list
