module Obs = Mlc_obs.Obs

type kind = Crash | Flaky of int | Slow of float | Corrupt

type rule = { pattern : string; kind : kind }

exception Injected of string

exception Timeout of string

let () =
  Printexc.register_printer (function
    | Injected what -> Some (Printf.sprintf "Fault.Injected(%s)" what)
    | Timeout name -> Some (Printf.sprintf "Fault.Timeout(%s)" name)
    | _ -> None)

(* ----------------------------------------------------------------- *)
(* Rules                                                              *)
(* ----------------------------------------------------------------- *)

let parse s =
  let bad fmt = Printf.ksprintf (fun m -> invalid_arg ("Fault.parse: " ^ m)) fmt in
  String.split_on_char ';' s
  |> List.filter (fun r -> String.trim r <> "")
  |> List.map (fun r ->
         let r = String.trim r in
         match String.split_on_char ':' r with
         | [ "crash"; pattern ] when pattern <> "" -> { pattern; kind = Crash }
         | [ "corrupt"; pattern ] when pattern <> "" -> { pattern; kind = Corrupt }
         | [ "flaky"; pattern; k ] when pattern <> "" -> (
             match int_of_string_opt k with
             | Some k when k >= 0 -> { pattern; kind = Flaky k }
             | _ -> bad "flaky wants a count, got %S" k)
         | [ "slow"; pattern; ms ] when pattern <> "" -> (
             match float_of_string_opt ms with
             | Some ms when ms >= 0.0 -> { pattern; kind = Slow (ms /. 1000.0) }
             | _ -> bad "slow wants milliseconds, got %S" ms)
         | _ -> bad "unknown rule %S (crash:PAT | flaky:PAT:K | slow:PAT:MS | corrupt:PAT)" r)

(* The installed rules.  None = not yet initialized from MLC_FAULTS.
   Multi-domain safe: the ref is written before any pool spawns (either
   by set_rules in a test or by the first inject in the main domain),
   and a racy double-parse of the same env var is idempotent. *)
let installed : rule list option ref = ref None

(* Flaky rules count attempts per canonical spec, across domains. *)
let attempts_mu = Mutex.create ()

let attempts : (string, int) Hashtbl.t = Hashtbl.create 16

let set_rules rs =
  Mutex.lock attempts_mu;
  Hashtbl.reset attempts;
  Mutex.unlock attempts_mu;
  installed := Some rs

let rules () =
  match !installed with
  | Some rs -> rs
  | None ->
      let rs =
        match Sys.getenv_opt "MLC_FAULTS" with
        | None | Some "" -> []
        | Some s -> (
            try parse s
            with Invalid_argument m ->
              Printf.eprintf "mlc: ignoring MLC_FAULTS: %s\n%!" m;
              [])
      in
      installed := Some rs;
      rs

let contains ~pattern s =
  let lp = String.length pattern and ls = String.length s in
  let rec at i = i + lp <= ls && (String.sub s i lp = pattern || at (i + 1)) in
  lp = 0 || at 0

let matching canonical =
  List.filter (fun r -> contains ~pattern:r.pattern canonical) (rules ())

(* Interrupted sleeps (SIGINT during a Slow fault) just end early; the
   cancellation flag, if any, is checked at the next job boundary. *)
let sleep s =
  if s > 0.0 then try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

let inject canonical =
  match rules () with
  | [] -> ()
  | _ ->
      List.iter
        (fun r ->
          match r.kind with
          | Corrupt -> ()
          | Slow s -> sleep s
          | Crash -> raise (Injected canonical)
          | Flaky k ->
              let n =
                Mutex.lock attempts_mu;
                let n = (try Hashtbl.find attempts canonical with Not_found -> 0) + 1 in
                Hashtbl.replace attempts canonical n;
                Mutex.unlock attempts_mu;
                n
              in
              if n <= k then raise (Injected canonical))
        (matching canonical)

let wants_corrupt canonical =
  List.exists (fun r -> r.kind = Corrupt) (matching canonical)

(* ----------------------------------------------------------------- *)
(* Supervision                                                        *)
(* ----------------------------------------------------------------- *)

type policy = { retries : int; backoff : float; deadline : float option }

let default_policy = { retries = 0; backoff = 0.05; deadline = None }

let policy ?(retries = default_policy.retries) ?(backoff = default_policy.backoff)
    ?deadline () =
  { retries; backoff; deadline }

type failure = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;
  timed_out : bool;
}

let pp_failure ppf f =
  Format.fprintf ppf "%s (attempt%s: %d%s)"
    (Printexc.to_string f.exn)
    (if f.attempts = 1 then "" else "s")
    f.attempts
    (if f.timed_out then ", timed out" else "")

let default_permanent = function Job.Spec_error _ -> true | _ -> false

let supervise ?(policy = default_policy) ?(is_permanent = default_permanent)
    ~name f =
  let deadline_guard t0 v =
    match policy.deadline with
    | Some d when Unix.gettimeofday () -. t0 > d ->
        Obs.count "engine.timeouts";
        raise (Timeout name)
    | _ -> v
  in
  let attempt n =
    let body () =
      let t0 = Unix.gettimeofday () in
      deadline_guard t0 (f ())
    in
    if n = 1 then body ()
    else begin
      Obs.count "engine.retries";
      Obs.with_span ~cat:"retry" ~args:[ ("attempt", `Int n) ] ("retry:" ^ name)
        body
    end
  in
  let rec go n =
    match attempt n with
    | v -> Ok v
    | exception exn ->
        let backtrace = Printexc.get_raw_backtrace () in
        let timed_out = match exn with Timeout _ -> true | _ -> false in
        if n <= policy.retries && not (is_permanent exn) then begin
          sleep (min 30.0 (policy.backoff *. (2.0 ** float_of_int (n - 1))));
          go (n + 1)
        end
        else begin
          Obs.count "engine.failures";
          Error { exn; backtrace; attempts = n; timed_out }
        end
  in
  go 1
