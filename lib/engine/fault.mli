(** Per-job supervision: bounded retries with exponential backoff,
    optional per-job deadlines, and a deterministic fault-injection hook
    for testing crashes, slow jobs, and corrupt cache entries.

    The engine wraps every job in {!supervise}.  With the default policy
    (no retries, no deadline) and no injected faults the wrapper is a
    single function call — default behavior, and default output, is
    unchanged.

    Injection is driven by rules, installed either programmatically
    ({!set_rules}) or from the [MLC_FAULTS] environment variable the
    first time a rule is consulted.  Rules are matched by substring
    against the job's canonical spec string, so a test can target one
    sweep cell ([n=80]) or every cell of a kernel ([jacobi]).  Matching
    is deterministic: the same spec always hits the same rules. *)

(** What an injected fault does when its pattern matches. *)
type kind =
  | Crash  (** raise {!Injected} on every attempt *)
  | Flaky of int
      (** raise {!Injected} on the first [k] attempts for that spec
          (process-wide count), then succeed — exercises retry paths *)
  | Slow of float  (** sleep this many seconds before the job body runs *)
  | Corrupt
      (** mark the spec so the engine truncates its cache entry right
          after storing it — exercises quarantine-and-recompute *)

type rule = { pattern : string; kind : kind }

(** Raised by {!inject} when a [Crash] or still-failing [Flaky] rule
    matches.  Treated as transient by {!supervise} (retries apply). *)
exception Injected of string

(** Raised (synthetically) by {!supervise} when an attempt overruns the
    policy's deadline.  Deadlines are detected, not preempted: the
    attempt runs to completion and its result is then discarded. *)
exception Timeout of string

(** [parse s] — rules are separated by [';']; each rule is
    [crash:PATTERN], [flaky:PATTERN:K], [slow:PATTERN:MS] or
    [corrupt:PATTERN].  @raise Invalid_argument on a malformed rule. *)
val parse : string -> rule list

(** Install rules programmatically (tests); resets [Flaky] attempt
    counts.  [set_rules []] disables injection. *)
val set_rules : rule list -> unit

(** Current rules: installed ones, else parsed from [MLC_FAULTS] on
    first use (malformed [MLC_FAULTS] is reported once on stderr and
    ignored). *)
val rules : unit -> rule list

(** The injection hook.  [inject canonical] applies every matching rule:
    sleeps for [Slow], raises {!Injected} for [Crash] / failing [Flaky].
    Called by the engine at the start of every job attempt; no-op when no
    rule matches (the common case is one memoized empty-list check). *)
val inject : string -> unit

(** True when a [Corrupt] rule matches [canonical] — consulted by the
    engine after a cache store. *)
val wants_corrupt : string -> bool

(** Retry policy for one job. *)
type policy = {
  retries : int;  (** extra attempts after the first (0 = fail fast) *)
  backoff : float;
      (** seconds before the first retry; doubles on each further
          retry.  Sleeps are capped at 30 s. *)
  deadline : float option;
      (** per-attempt wall-clock budget in seconds; an attempt that
          overruns counts an [engine.timeouts] and fails with
          {!Timeout} (retryable like any transient failure) *)
}

(** No retries, 50 ms initial backoff, no deadline. *)
val default_policy : policy

(** [policy ()] with overrides. *)
val policy : ?retries:int -> ?backoff:float -> ?deadline:float -> unit -> policy

(** Everything known about a job that ultimately failed. *)
type failure = {
  exn : exn;  (** the last attempt's exception *)
  backtrace : Printexc.raw_backtrace;
  attempts : int;  (** how many attempts ran (>= 1) *)
  timed_out : bool;  (** the last failure was a {!Timeout} *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [supervise ~policy ~name f] runs [f] under the policy: transient
    failures are retried with exponential backoff up to
    [policy.retries] times, each retry inside a ["retry:"name] span and
    counted in [engine.retries]; deadline overruns count
    [engine.timeouts].  Permanent failures ({!Job.Spec_error} — the spec
    itself is wrong, no retry can help) and exhausted retries return
    [Error failure] and count [engine.failures].  [is_permanent]
    overrides the permanent-failure test. *)
val supervise :
  ?policy:policy ->
  ?is_permanent:(exn -> bool) ->
  name:string ->
  (unit -> 'a) ->
  ('a, failure) result
