open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module K = Mlc_kernels
module L = Locality

exception Spec_error of string

let spec_error fmt = Printf.ksprintf (fun s -> raise (Spec_error s)) fmt

(* ----------------------------------------------------------------- *)
(* Specs                                                              *)
(* ----------------------------------------------------------------- *)

type program_spec =
  | Registry of { name : string; n : int option }
  | Paper of { name : string; n : int }
  | Fused of { base : program_spec; at : int; max_shift : int }
  | Matmul of { n : int }
  | Tiled_matmul of { n : int; h : int; w : int }
  | Time_sweep of { n : int; steps : int }
  | Time_tiled of { n : int; steps : int; block : int }

type layout_spec =
  | Strategy of L.Pipeline.strategy
  | Initial
  | Pad_assoc of { size : int; line : int; assoc : int }

type machine_spec = {
  base : string;
  assoc : int option;
  write_allocate : bool option;
  prefetch_levels : int list;
}

let machine base = { base; assoc = None; write_allocate = None; prefetch_levels = [] }

type count_target = Nests of int list | Largest_body

type spec = {
  program : program_spec;
  layout : layout_spec;
  machine : machine_spec;
  predict : bool;
  count : (layout_spec * count_target) option;
  backend : Interp.backend;
}

let simulate ?(machine = machine "ultrasparc") ?(predict = false) ?count
    ?(backend = `Fast) ~layout program =
  { program; layout; machine; predict; count; backend }

(* ----------------------------------------------------------------- *)
(* Canonical serialization (the cache-key input)                      *)
(* ----------------------------------------------------------------- *)

let strategy_tag = function
  | L.Pipeline.Original -> "orig"
  | L.Pipeline.Pad_l1 -> "pad"
  | L.Pipeline.Pad_multilevel -> "multilvlpad"
  | L.Pipeline.Grouppad_l1 -> "grouppad"
  | L.Pipeline.Grouppad_l1_l2 -> "l2maxpad"

let strategy_of_tag = function
  | "orig" -> L.Pipeline.Original
  | "pad" -> L.Pipeline.Pad_l1
  | "multilvlpad" -> L.Pipeline.Pad_multilevel
  | "grouppad" -> L.Pipeline.Grouppad_l1
  | "l2maxpad" -> L.Pipeline.Grouppad_l1_l2
  | other -> spec_error "unknown strategy %S (orig|pad|multilvlpad|grouppad|l2maxpad)" other

let rec program_string = function
  | Registry { name; n } ->
      Printf.sprintf "registry(%s%s)"
        (String.lowercase_ascii name)
        (match n with None -> "" | Some n -> Printf.sprintf ",n=%d" n)
  | Paper { name; n } -> Printf.sprintf "paper(%s,n=%d)" name n
  | Fused { base; at; max_shift } ->
      Printf.sprintf "fused(%s,at=%d,max_shift=%d)" (program_string base) at max_shift
  | Matmul { n } -> Printf.sprintf "matmul(n=%d)" n
  | Tiled_matmul { n; h; w } -> Printf.sprintf "tiled_matmul(n=%d,h=%d,w=%d)" n h w
  | Time_sweep { n; steps } -> Printf.sprintf "time_sweep(n=%d,steps=%d)" n steps
  | Time_tiled { n; steps; block } ->
      Printf.sprintf "time_tiled(n=%d,steps=%d,block=%d)" n steps block

let layout_string = function
  | Strategy s -> "strategy:" ^ strategy_tag s
  | Initial -> "initial"
  | Pad_assoc { size; line; assoc } ->
      Printf.sprintf "pad_assoc(size=%d,line=%d,assoc=%d)" size line assoc

let machine_string m =
  Printf.sprintf "%s,assoc=%s,wa=%s,pf=[%s]" m.base
    (match m.assoc with None -> "-" | Some k -> string_of_int k)
    (match m.write_allocate with None -> "-" | Some b -> string_of_bool b)
    (String.concat ";" (List.map string_of_int m.prefetch_levels))

let count_target_string = function
  | Nests is -> Printf.sprintf "nests[%s]" (String.concat ";" (List.map string_of_int is))
  | Largest_body -> "largest_body"

let canonical spec =
  Printf.sprintf "program=%s|layout=%s|machine=%s|predict=%b|count=%s|backend=%s"
    (program_string spec.program)
    (layout_string spec.layout)
    (machine_string spec.machine)
    spec.predict
    (match spec.count with
    | None -> "-"
    | Some (l, t) ->
        Printf.sprintf "%s@%s" (count_target_string t) (layout_string l))
    (Interp.backend_name spec.backend)

let describe spec = program_string spec.program ^ "/" ^ layout_string spec.layout

(* ----------------------------------------------------------------- *)
(* Results                                                            *)
(* ----------------------------------------------------------------- *)

type result = {
  key : string;
  interp : Interp.result;
  level_stats : Cs.Stats.t list;
  cost_breakdown : (string * float) list;
  predicted : float list option;
  counts : An.Fusion_model.counts option;
}

(* ----------------------------------------------------------------- *)
(* Execution                                                          *)
(* ----------------------------------------------------------------- *)

let base_machine = function
  | "ultrasparc" -> Cs.Machine.ultrasparc
  | "alpha" -> Cs.Machine.alpha21164
  | other -> spec_error "unknown machine %S (ultrasparc|alpha)" other

let build_machine m =
  let base = base_machine m.base in
  match m.assoc with
  | None | Some 1 -> base
  | Some k -> Cs.Machine.with_associativity k base

let rec build_program = function
  | Registry { name; n } -> (
      match K.Registry.find_opt name with
      | None -> spec_error "unknown benchmark %S (see `mlc list`)" name
      | Some e -> (
          match (n, e.K.Registry.build_sized) with
          | None, _ -> e.K.Registry.build ()
          | Some n, Some f -> f n
          | Some _, None -> spec_error "%s takes no size parameter" e.K.Registry.name))
  | Paper { name; n } -> (
      match name with
      | "figure2" -> K.Paper_examples.figure2 n
      | "figure6_fused" -> K.Paper_examples.figure6_fused n
      | other -> spec_error "unknown paper example %S" other)
  | Fused { base; at; max_shift } ->
      L.Fusion.fuse_program ~max_shift (build_program base) at
  | Matmul { n } -> L.Tiling.matmul n
  | Tiled_matmul { n; h; w } -> L.Tiling.tiled_matmul ~n ~h ~w
  | Time_sweep { n; steps } -> K.Time_kernels.sweep_2d ~n ~steps
  | Time_tiled { n; steps; block } -> K.Time_kernels.time_tiled_2d ~n ~steps ~block

let build_layout machine_t lspec program =
  match lspec with
  | Strategy s -> L.Pipeline.layout_for machine_t s program
  | Initial -> Layout.initial program
  | Pad_assoc { size; line; assoc } ->
      L.Pad.apply_assoc ~size ~line ~assoc program (Layout.initial program)

let count_nests target (program : Program.t) =
  match target with
  | Nests is ->
      List.map
        (fun i ->
          match List.nth_opt program.Program.nests i with
          | Some n -> n
          | None -> spec_error "count target: program has no nest %d" i)
        is
  | Largest_body -> (
      match program.Program.nests with
      | [] -> spec_error "count target: program has no nests"
      | first :: _ ->
          [
            List.fold_left
              (fun best nest ->
                if List.length (Nest.refs nest) > List.length (Nest.refs best)
                then nest
                else best)
              first program.Program.nests;
          ])

let execute spec =
  let machine_t = build_machine spec.machine in
  let program = build_program spec.program in
  let layout = build_layout machine_t spec.layout program in
  (* Fast_sim does not model next-line prefetch; such specs silently run
     on the reference cascade (the two backends agree everywhere else, so
     this only costs time, never accuracy). *)
  let use_fast = spec.backend = `Fast && spec.machine.prefetch_levels = [] in
  let interp, level_stats, cost_breakdown =
    if use_fast then begin
      let sim =
        Cs.Fast_sim.create
          ?write_allocate:spec.machine.write_allocate
          machine_t.Cs.Machine.geometries
      in
      let interp = Interp.run_sim sim machine_t layout program in
      let live = Cs.Fast_sim.level_stats sim in
      ( interp,
        List.map (fun s -> Cs.Stats.add (Cs.Stats.zero ()) s) live,
        Cs.Cost_model.breakdown_of_stats machine_t.Cs.Machine.cost live )
    end
    else begin
      let hierarchy =
        Cs.Hierarchy.create
          ?write_allocate:spec.machine.write_allocate
          ~prefetch_levels:spec.machine.prefetch_levels
          machine_t.Cs.Machine.geometries
      in
      let interp = Interp.run_on hierarchy machine_t layout program in
      ( interp,
        List.map
          (fun level -> Cs.Stats.add (Cs.Stats.zero ()) (Cs.Level.stats level))
          (Cs.Hierarchy.levels hierarchy),
        Cs.Cost_model.breakdown machine_t.Cs.Machine.cost hierarchy )
    end
  in
  let predicted =
    if spec.predict then
      Some (An.Miss_predict.program_misses layout machine_t program)
    else None
  in
  let counts =
    Option.map
      (fun (lspec, target) ->
        let lay = build_layout machine_t lspec program in
        An.Fusion_model.count lay
          ~l1_size:(Cs.Machine.s1 machine_t)
          (count_nests target program))
      spec.count
  in
  { key = canonical spec; interp; level_stats; cost_breakdown; predicted; counts }
