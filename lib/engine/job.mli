(** Experiment jobs: pure closures over serializable specs.

    A job names everything its simulation depends on — the benchmark (by
    Table 1 registry name or constructive recipe), the layout strategy,
    the machine with its hierarchy options, and any attached analytical
    models — as plain data.  {!execute} rebuilds the program, runs the
    passes and the simulator, and returns a marshal-friendly {!result};
    because the spec fully determines the result, specs double as
    content-addressed cache keys (see {!Cache}) and jobs can run on any
    domain of the worker pool in any order. *)

open Mlc_ir
module Cs = Mlc_cachesim
module An = Mlc_analysis
module L = Locality

(** Raised by {!execute} on an unresolvable spec (unknown benchmark,
    machine or strategy name, bad nest index). *)
exception Spec_error of string

(** How to (re)build the program under test. *)
type program_spec =
  | Registry of { name : string; n : int option }
      (** Table 1 benchmark by name; [n] overrides the problem size. *)
  | Paper of { name : string; n : int }
      (** Worked example from the paper text ("figure2", "figure6_fused"). *)
  | Fused of { base : program_spec; at : int; max_shift : int }
      (** [Fusion.fuse_program] applied to nests [at], [at+1]. *)
  | Matmul of { n : int }
  | Tiled_matmul of { n : int; h : int; w : int }
  | Time_sweep of { n : int; steps : int }
  | Time_tiled of { n : int; steps : int; block : int }

(** How to lay the arrays out. *)
type layout_spec =
  | Strategy of L.Pipeline.strategy
  | Initial
  | Pad_assoc of { size : int; line : int; assoc : int }
      (** Associativity-aware PAD (the ablation's explicit variant). *)

(** Machine plus hierarchy construction options. *)
type machine_spec = {
  base : string;                (** "ultrasparc" or "alpha" *)
  assoc : int option;           (** override every level's associativity *)
  write_allocate : bool option; (** default: the simulator's (true) *)
  prefetch_levels : int list;   (** levels with next-line prefetching *)
}

(** [machine base] with no overrides. *)
val machine : string -> machine_spec

(** Nests fed to the Section 4 two-level accounting. *)
type count_target =
  | Nests of int list   (** by index *)
  | Largest_body        (** the nest with the most references (fused core) *)

type spec = {
  program : program_spec;
  layout : layout_spec;
  machine : machine_spec;
  predict : bool;
      (** also run the analytical miss predictor on the same layout *)
  count : (layout_spec * count_target) option;
      (** also run [Fusion_model.count] — under its own layout, as
          Figure 12 counts under GROUPPAD while simulating L2MAXPAD *)
  backend : Interp.backend;
      (** which simulator runs the job.  Part of the cache key, so warm
          results never cross backends.  [`Fast] specs with
          [prefetch_levels] fall back to the reference cascade at
          execution time (Fast_sim does not model prefetch). *)
}

(** Spec constructor with the common defaults (ultrasparc, fast backend,
    no extras). *)
val simulate :
  ?machine:machine_spec ->
  ?predict:bool ->
  ?count:layout_spec * count_target ->
  ?backend:Interp.backend ->
  layout:layout_spec ->
  program_spec ->
  spec

(** Stable, human-readable serialization — the digest input for cache
    keys.  Equal specs have equal canonical strings and vice versa. *)
val canonical : spec -> string

(** Short label for progress lines. *)
val describe : spec -> string

val strategy_tag : L.Pipeline.strategy -> string

(** @raise Spec_error on an unknown tag. *)
val strategy_of_tag : string -> L.Pipeline.strategy

(** Everything a job produces, as plain data (safe to [Marshal]). *)
type result = {
  key : string;                        (** [canonical] of the spec *)
  interp : Interp.result;
  level_stats : Cs.Stats.t list;       (** per-level counter snapshots *)
  cost_breakdown : (string * float) list;  (** additive cycle terms *)
  predicted : float list option;       (** analytical per-level misses *)
  counts : An.Fusion_model.counts option;  (** Section 4 accounting *)
}

(** Run the job on a fresh hierarchy.  Pure up to allocation: equal specs
    produce equal results, on any domain.
    @raise Spec_error on an unresolvable spec
    @raise Locality.Fusion.Illegal when a [Fused] spec has no legal shift *)
val execute : spec -> result
