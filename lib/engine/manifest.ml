type t = {
  path : string;
  cells : int;
  header : string list;  (** the lines identifying the sweep, in order *)
  done_already : bool array;  (** loaded from a resumed journal *)
}

let magic = "mlc-sweep-manifest 1"

let sweep_key ~version specs =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (version :: Array.to_list (Array.map Job.canonical specs))))

let manifests_dir cache = Filename.concat (Cache.dir cache) "manifests"

let header_lines ~version specs =
  magic
  :: Printf.sprintf "version %s" version
  :: Printf.sprintf "cells %d" (Array.length specs)
  :: Array.to_list
       (Array.mapi
          (fun i spec -> Printf.sprintf "spec %d %s" i (Job.canonical spec))
          specs)

let read_lines path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = go [] in
      close_in_noerr ic;
      Some lines

(* An existing journal resumes this sweep iff its leading lines are
   exactly the header we would write — same models version, same cells
   in the same order.  Anything else (including a journal from an older
   format) is ignored and overwritten. *)
let load_done ~header ~cells path =
  match read_lines path with
  | None -> None
  | Some lines ->
      let rec split_header expected lines =
        match (expected, lines) with
        | [], rest -> Some rest
        | e :: es, l :: ls when e = l -> split_header es ls
        | _ -> None
      in
      Option.map
        (fun rest ->
          let done_ = Array.make cells false in
          List.iter
            (fun line ->
              match String.split_on_char ' ' line with
              | [ "done"; i ] -> (
                  match int_of_string_opt i with
                  | Some i when i >= 0 && i < cells -> done_.(i) <- true
                  | _ -> ())
              | _ -> ())
            rest;
          done_)
        (split_header header lines)

let write_fresh path header =
  try
    let oc = open_out path in
    (try List.iter (fun l -> output_string oc (l ^ "\n")) header
     with e -> close_out_noerr oc; raise e);
    close_out oc
  with Sys_error _ -> ()

let create ~cache ~resume specs =
  let cells = Array.length specs in
  let version = Cache.version cache in
  let header = header_lines ~version specs in
  let dir = manifests_dir cache in
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  let path =
    Filename.concat dir (sweep_key ~version specs ^ ".journal")
  in
  let done_already =
    match if resume then load_done ~header ~cells path else None with
    | Some d -> d
    | None ->
        write_fresh path header;
        Array.make cells false
  in
  { path; cells; header; done_already }

let path t = t.path

let cells t = t.cells

let completed t = Array.fold_left (fun n d -> if d then n + 1 else n) 0 t.done_already

let checkpoint t ~done_ =
  try
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 t.path in
    (try
       Array.iteri
         (fun i d -> if d && not t.done_already.(i) then
             output_string oc (Printf.sprintf "done %d\n" i))
         done_
     with e -> close_out_noerr oc; raise e);
    close_out oc
  with Sys_error _ -> ()

let finish t = try Sys.remove t.path with Sys_error _ -> ()
