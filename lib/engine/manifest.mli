(** Sweep manifest journal — the resume record for interrupted sweeps.

    A sweep is identified by the digest of its full spec list salted
    with the models version; its journal lives next to the result cache
    ([<cache-dir>/manifests/<key>.journal]) and records the sweep's
    header, every cell's canonical spec, and a [done] line per completed
    cell.  The journal is bookkeeping, not durability: cell {e results}
    live in the content-addressed cache the moment each job finishes, so
    a resumed sweep re-runs only the cells the cache does not hold and
    produces byte-identical final output.  The journal is what lets
    [mlc sweep --resume] verify it is resuming the {e same} sweep and
    report how much of it already ran.

    A journal is removed when its sweep completes with every cell
    [done]; it is checkpointed (kept, with completed cells appended) on
    failure or interrupt. *)

type t

(** The sweep's identity: digest of [version] and every canonical spec,
    in order. *)
val sweep_key : version:string -> Job.spec array -> string

(** [create ~cache ~resume specs] — opens (or starts) the journal for
    this spec list under [Cache.dir cache].  With [~resume:true] an
    existing journal whose header matches is loaded; a missing or
    mismatched journal (different spec list, different models version)
    starts fresh. *)
val create : cache:Cache.t -> resume:bool -> Job.spec array -> t

val path : t -> string

(** Number of cells in the sweep. *)
val cells : t -> int

(** Cells already recorded [done] by a previous run (0 unless resumed). *)
val completed : t -> int

(** [checkpoint t ~done_] appends a [done] line for every newly
    completed cell and flushes the journal to disk.  Errors degrade to
    not journaling (the cache still holds the results). *)
val checkpoint : t -> done_:bool array -> unit

(** The sweep finished with every cell done: remove the journal. *)
val finish : t -> unit
