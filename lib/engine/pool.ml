let default_jobs () = Domain.recommended_domain_count ()

(* One shared Atomic index feeds the workers; each worker owns the result
   slots it claimed, so no two domains ever write the same cell.  The
   caller observes results only after every domain is joined, which
   publishes the writes.

   [map_opt] is the general core: workers stop claiming indices when the
   [cancel] flag is set, when [stop] returned true on any produced
   result, or when any call raised; unclaimed slots come back [None].
   The first exception (if any) is re-raised after every domain is
   joined — callers that want failures as data make [f] total and use
   [stop] instead. *)
let map_opt ?(jobs = default_jobs ()) ?cancel ?stop f items =
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  let cancelled () = match cancel with Some c -> Atomic.get c | None -> false in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let stopped = Atomic.make false in
    let failed = Atomic.make None in
    let worker w =
      let rec loop () =
        if Atomic.get stopped || Atomic.get failed <> None || cancelled () then ()
        else
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then ()
          else begin
            (match f ~worker:w items.(i) with
            | y ->
                results.(i) <- Some y;
                (match stop with
                | Some p when p y -> Atomic.set stopped true
                | _ -> ())
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failed None (Some (e, bt))));
            loop ()
          end
      in
      loop ()
    in
    if jobs = 1 then worker 0
    else begin
      let spawned =
        Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
      in
      (* The calling domain is worker 0: even with [jobs] worth of
         failures to spawn domains, the pool degrades to sequential
         execution rather than deadlocking. *)
      let self_exn =
        match worker 0 with
        | () -> None
        | exception e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Array.iter Domain.join spawned;
      match self_exn with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end;
    (match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    results
  end

let map ?jobs f items =
  Array.map
    (function
      | Some y -> y
      (* Reachable only if no failure, no stop and no cancel, in which
         case every index was claimed and filled. *)
      | None -> assert false)
    (map_opt ?jobs f items)
