let default_jobs () = Domain.recommended_domain_count ()

(* One shared Atomic index feeds the workers; each worker owns the result
   slots it claimed, so no two domains ever write the same cell.  The
   caller observes results only after every domain is joined, which
   publishes the writes. *)
let map ?(jobs = default_jobs ()) f items =
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if n = 0 then [||]
  else if jobs = 1 then Array.map (fun x -> f ~worker:0 x) items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker w =
      let rec loop () =
        if Atomic.get failed <> None then ()
        else
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then ()
          else begin
            (match f ~worker:w items.(i) with
            | y -> results.(i) <- Some y
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failed None (Some (e, bt))));
            loop ()
          end
      in
      loop ()
    in
    let spawned =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    (* The calling domain is worker 0: even with [jobs] worth of failures
       to spawn domains, the pool degrades to sequential execution rather
       than deadlocking. *)
    let self_exn =
      match worker 0 with
      | () -> None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Array.iter Domain.join spawned;
    (match self_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    (match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    (* Reachable only if no failure was recorded, in which case every
       claimed index was filled. *)
    Array.map (function Some y -> y | None -> assert false) results
  end
