(** Fixed worker pool over OCaml 5 domains.

    [map] runs [f] on every element using up to [jobs] domains fed from a
    shared queue (an atomic next-index counter), and returns the results
    {e in input order} — the merge is deterministic no matter how the
    scheduler interleaved the workers.  If any call to [f] raises, the
    remaining workers stop after their current element, every domain is
    joined, and the first exception is re-raised with its backtrace: a
    failing job fails the run instead of hanging it or leaking domains.

    [map_opt] is the underlying error-policy-aware core: callers that
    want per-element failures as data (the engine's [`Collect] policy)
    make [f] total — returning a [result] — and use [stop] to decide
    whether a produced error should drain the pool ([`Fail_fast]) or
    not. *)

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map ~jobs f items] — [f] receives the worker index ([0..jobs-1],
    worker 0 is the calling domain) for per-worker accounting; it must be
    safe to call from multiple domains at once.  [jobs] defaults to
    {!default_jobs} and is clamped to [1 .. length items]. *)
val map : ?jobs:int -> (worker:int -> 'a -> 'b) -> 'a array -> 'b array

(** [map_opt ?cancel ?stop f items] — like {!map}, but workers stop
    claiming new elements as soon as [cancel] (an external interruption
    flag, e.g. set from a SIGINT handler) is true or [stop] returned
    true on any produced result; elements never claimed come back as
    [None] in input order.  Elements already running when the pool
    drains still complete (cooperative cancellation — nothing is
    preempted).  Exceptions from [f] propagate as in {!map}. *)
val map_opt :
  ?jobs:int ->
  ?cancel:bool Atomic.t ->
  ?stop:('b -> bool) ->
  (worker:int -> 'a -> 'b) ->
  'a array ->
  'b option array
