type worker = {
  mutable jobs_done : int;
  mutable cache_hits : int;
  mutable refs_streamed : int;
}

type t = {
  workers : worker array;
  mutable total : int;
  started : float;
  live : bool;
  render_mutex : Mutex.t;
  mutable last_render : float;
  mutable line_shown : bool;
}

let create ?live ~jobs () =
  let live =
    match live with
    | Some b -> b
    | None -> (
        (* All telemetry goes to stderr; the live line additionally
           requires a tty (or an explicit MLC_PROGRESS override), so
           redirected runs never see spinner control characters. *)
        match Sys.getenv_opt "MLC_PROGRESS" with
        | Some ("0" | "no" | "false" | "off") -> false
        | Some _ -> true
        | None -> Unix.isatty Unix.stderr)
  in
  {
    workers =
      Array.init (max 1 jobs) (fun _ ->
          { jobs_done = 0; cache_hits = 0; refs_streamed = 0 });
    total = 0;
    started = Unix.gettimeofday ();
    live;
    render_mutex = Mutex.create ();
    last_render = 0.0;
    line_shown = false;
  }

let expect t n = t.total <- t.total + n

let sum t f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers

let jobs_done t = sum t (fun w -> w.jobs_done)

let cache_hits t = sum t (fun w -> w.cache_hits)

let refs_streamed t = sum t (fun w -> w.refs_streamed)

let elapsed t = Unix.gettimeofday () -. t.started

let jobs_per_sec t =
  let dt = elapsed t in
  if dt <= 0.0 then 0.0 else float_of_int (jobs_done t) /. dt

let hit_rate t =
  let d = jobs_done t in
  if d = 0 then 0.0 else float_of_int (cache_hits t) /. float_of_int d

let render t =
  Printf.eprintf "\r  engine: %d/%d jobs  %d cache hits  %.2e refs  %.1fs \
                  (%d workers)%!"
    (jobs_done t) t.total (cache_hits t)
    (float_of_int (refs_streamed t))
    (elapsed t) (Array.length t.workers);
  t.line_shown <- true

let maybe_render t =
  if t.live then begin
    Mutex.lock t.render_mutex;
    let now = Unix.gettimeofday () in
    if now -. t.last_render >= 0.1 then begin
      t.last_render <- now;
      render t
    end;
    Mutex.unlock t.render_mutex
  end

(* Each worker slot is written by exactly one domain; cross-domain reads
   (the live line, the final totals) are monotone counters whose final
   values are published by Domain.join before anyone sums them. *)
let record t ~worker ~cache_hit ~refs =
  let w = t.workers.(worker) in
  w.jobs_done <- w.jobs_done + 1;
  if cache_hit then w.cache_hits <- w.cache_hits + 1;
  w.refs_streamed <- w.refs_streamed + refs;
  maybe_render t

let finish t =
  if t.live && t.line_shown then begin
    render t;
    prerr_newline ()
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(extra = []) t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "  \"%s\": %s,\n" (json_escape k) v))
    extra;
  Buffer.add_string b
    (Printf.sprintf "  \"jobs_done\": %d,\n  \"cache_hits\": %d,\n"
       (jobs_done t) (cache_hits t));
  Buffer.add_string b
    (Printf.sprintf "  \"cache_hit_rate\": %.4f,\n  \"refs_streamed\": %d,\n"
       (hit_rate t) (refs_streamed t));
  Buffer.add_string b
    (Printf.sprintf "  \"jobs_per_sec\": %.3f,\n  \"wall_s\": %.3f,\n"
       (jobs_per_sec t) (elapsed t));
  Buffer.add_string b
    (Printf.sprintf "  \"workers\": [%s]\n"
       (String.concat ", "
          (Array.to_list
             (Array.map
                (fun w ->
                  Printf.sprintf
                    "{\"jobs_done\": %d, \"cache_hits\": %d, \
                     \"refs_streamed\": %d}"
                    w.jobs_done w.cache_hits w.refs_streamed)
                t.workers))));
  Buffer.add_string b "}\n";
  Buffer.contents b
