(** Per-worker progress counters: jobs done, cache hits, simulated
    addresses streamed, wall time.  Rendered as a single live line on
    stderr (when it is a tty, or [~live:true]) and dumped as JSON for the
    machine-readable bench record.

    Counters are per-worker slots written only by their owning domain;
    totals are summed on demand.  Everything user-visible goes to stderr
    so stdout stays byte-identical across worker counts. *)

type t

(** [create ~jobs ()] — [live] defaults to [stderr] being a tty, overridable
    with the [MLC_PROGRESS] env var ([0]/[no]/[false]/[off] force it off,
    any other value forces it on). *)
val create : ?live:bool -> jobs:int -> unit -> t

(** Announce [n] more expected jobs (the live line's denominator). *)
val expect : t -> int -> unit

(** One job finished on [worker].  [refs] is the number of simulated
    references the job streamed (0 for a cache hit). *)
val record : t -> worker:int -> cache_hit:bool -> refs:int -> unit

(** Final render + newline, if a live line was shown. *)
val finish : t -> unit

val jobs_done : t -> int

val cache_hits : t -> int

val refs_streamed : t -> int

val elapsed : t -> float

val jobs_per_sec : t -> float

(** Cache hits over jobs done (0 before any job). *)
val hit_rate : t -> float

(** JSON object with the totals and the per-worker counters.  [extra]
    key/value pairs (values are raw JSON) are emitted first. *)
val to_json : ?extra:(string * string) list -> t -> string

val json_escape : string -> string
