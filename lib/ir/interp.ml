module Cs = Mlc_cachesim
module Obs = Mlc_obs.Obs

type result = {
  total_refs : int;
  misses : int list;
  miss_rates : float list;
  memory_accesses : int;
  writebacks : int;
  flops : int;
  cycles : float;
  seconds : float;
  mflops : float;
}

(* A compiled reference: either fully linear in the loop variables, or a
   slow closure for gather subscripts. *)
type cref =
  | Linear of { base : int; strides : int array }
  | Slow of Ref_.t

let compile_ref layout ~var_level ~depth r =
  if Ref_.is_affine r then begin
    let addr = Layout.address_expr layout r in
    let strides = Array.make depth 0 in
    List.iter
      (fun v ->
        match Hashtbl.find_opt var_level v with
        | Some level -> strides.(level) <- Expr.coeff addr v
        | None -> invalid_arg ("Interp: unbound loop variable " ^ v))
      (Expr.vars addr);
    Linear { base = Expr.const_part addr; strides }
  end
  else Slow r

let feed_nest hierarchy layout nest =
  let loops = Array.of_list nest.Nest.loops in
  let depth = Array.length loops in
  let var_level = Hashtbl.create 8 in
  Array.iteri (fun i l -> Hashtbl.replace var_level l.Loop.var i) loops;
  let body_refs = List.concat_map (fun s -> s.Stmt.refs) nest.Nest.body in
  let crefs =
    body_refs
    |> List.map (compile_ref layout ~var_level ~depth)
    |> Array.of_list
  in
  let is_write = Array.of_list (List.map Ref_.is_write body_refs) in
  let nrefs = Array.length crefs in
  let flops_per_iter =
    List.fold_left (fun acc s -> acc + s.Stmt.flops) 0 nest.Nest.body
  in
  (* partials.(l).(r): address contribution of loop levels < l plus the
     base constant; column 0 holds the bases. *)
  let partials = Array.make_matrix (depth + 1) nrefs 0 in
  Array.iteri
    (fun r cref ->
      match cref with
      | Linear { base; _ } -> partials.(0).(r) <- base
      | Slow _ -> ())
    crefs;
  let ivs = Array.make depth 0 in
  let env v =
    match Hashtbl.find_opt var_level v with
    | Some level -> ivs.(level)
    | None -> invalid_arg ("Interp: unbound variable " ^ v)
  in
  let flops = ref 0 in
  let rec go level =
    if level = depth then begin
      let leaf = partials.(depth) in
      for r = 0 to nrefs - 1 do
        let addr =
          match crefs.(r) with
          | Linear _ -> leaf.(r)
          | Slow ref_ -> Layout.address_of_ref layout env ref_
        in
        ignore (Cs.Hierarchy.access hierarchy ~write:is_write.(r) addr)
      done;
      flops := !flops + flops_per_iter
    end
    else begin
      let loop = loops.(level) in
      let cur = partials.(level) in
      let next = partials.(level + 1) in
      Loop.iter env loop (fun iv ->
          ivs.(level) <- iv;
          for r = 0 to nrefs - 1 do
            let stride =
              match crefs.(r) with
              | Linear { strides; _ } -> strides.(level)
              | Slow _ -> 0
            in
            next.(r) <- cur.(r) + (stride * iv)
          done;
          go (level + 1))
    end
  in
  go 0;
  !flops

let feed hierarchy layout program =
  let flops = ref 0 in
  for _step = 1 to program.Program.time_steps do
    List.iter
      (fun nest -> flops := !flops + feed_nest hierarchy layout nest)
      program.Program.nests
  done;
  !flops

(* Fast-backend twin of [feed_nest]: the outer levels walk the same
   partial-address matrix, but the whole innermost loop is handed to
   [Fast_sim.block] as (base, stride, count) per reference, letting the
   simulator account steady runs of L1 hits in bulk.  Gather subscripts
   (and zero-depth bodies) fall back to per-access feeding, which is
   still exact — just not bulked. *)
let feed_nest_fast sim layout nest =
  let loops = Array.of_list nest.Nest.loops in
  let depth = Array.length loops in
  let var_level = Hashtbl.create 8 in
  Array.iteri (fun i l -> Hashtbl.replace var_level l.Loop.var i) loops;
  let body_refs = List.concat_map (fun s -> s.Stmt.refs) nest.Nest.body in
  let crefs =
    body_refs
    |> List.map (compile_ref layout ~var_level ~depth)
    |> Array.of_list
  in
  let is_write = Array.of_list (List.map Ref_.is_write body_refs) in
  let nrefs = Array.length crefs in
  let flops_per_iter =
    List.fold_left (fun acc s -> acc + s.Stmt.flops) 0 nest.Nest.body
  in
  let partials = Array.make_matrix (depth + 1) nrefs 0 in
  Array.iteri
    (fun r cref ->
      match cref with
      | Linear { base; _ } -> partials.(0).(r) <- base
      | Slow _ -> ())
    crefs;
  let ivs = Array.make depth 0 in
  let env v =
    match Hashtbl.find_opt var_level v with
    | Some level -> ivs.(level)
    | None -> invalid_arg ("Interp: unbound variable " ^ v)
  in
  let flops = ref 0 in
  let all_linear =
    Array.for_all (function Linear _ -> true | Slow _ -> false) crefs
  in
  let iter_outer ~leaf =
    let rec go level =
      if level = depth then leaf ()
      else begin
        let loop = loops.(level) in
        let cur = partials.(level) in
        let next = partials.(level + 1) in
        Loop.iter env loop (fun iv ->
            ivs.(level) <- iv;
            for r = 0 to nrefs - 1 do
              let stride =
                match crefs.(r) with
                | Linear { strides; _ } -> strides.(level)
                | Slow _ -> 0
              in
              next.(r) <- cur.(r) + (stride * iv)
            done;
            go (level + 1))
      end
    in
    go
  in
  if all_linear && depth >= 1 then begin
    let inner = depth - 1 in
    let inner_loop = loops.(inner) in
    let strides_inner =
      Array.map
        (function Linear { strides; _ } -> strides.(inner) | Slow _ -> 0)
        crefs
    in
    let block_strides =
      Array.map (fun s -> s * inner_loop.Loop.step) strides_inner
    in
    let bases = Array.make nrefs 0 in
    let rec go level =
      if level = inner then begin
        let count = Loop.trip_count env inner_loop in
        if count > 0 then begin
          let lo = Loop.effective_lo env inner_loop in
          let cur = partials.(inner) in
          for r = 0 to nrefs - 1 do
            bases.(r) <- cur.(r) + (strides_inner.(r) * lo)
          done;
          Cs.Fast_sim.block sim ~bases ~strides:block_strides ~writes:is_write
            ~count;
          flops := !flops + (flops_per_iter * count)
        end
      end
      else begin
        let loop = loops.(level) in
        let cur = partials.(level) in
        let next = partials.(level + 1) in
        Loop.iter env loop (fun iv ->
            ivs.(level) <- iv;
            for r = 0 to nrefs - 1 do
              let stride =
                match crefs.(r) with
                | Linear { strides; _ } -> strides.(level)
                | Slow _ -> 0
              in
              next.(r) <- cur.(r) + (stride * iv)
            done;
            go (level + 1))
      end
    in
    go 0
  end
  else begin
    let leaf () =
      let addrs = partials.(depth) in
      for r = 0 to nrefs - 1 do
        let addr =
          match crefs.(r) with
          | Linear _ -> addrs.(r)
          | Slow ref_ -> Layout.address_of_ref layout env ref_
        in
        ignore (Cs.Fast_sim.access sim ~write:is_write.(r) addr)
      done;
      flops := !flops + flops_per_iter
    in
    iter_outer ~leaf 0
  end;
  !flops

let feed_fast sim layout program =
  let flops = ref 0 in
  for _step = 1 to program.Program.time_steps do
    List.iter
      (fun nest -> flops := !flops + feed_nest_fast sim layout nest)
      program.Program.nests
  done;
  !flops

(* --- observability ------------------------------------------------------- *)

(* Per-level counters are recorded as deltas against a pre-run snapshot,
   so reused (cleared or accumulating) hierarchies and simulators never
   double-count.  Everything below is skipped when no buffer is
   installed; the counters are per-run, never per-access, so the
   instrumentation cost is independent of trace length. *)

let obs_snapshot stats = List.map (fun s -> Cs.Stats.add s (Cs.Stats.zero ())) stats

let obs_count name n = if n <> 0 then Obs.count ~n name

let obs_record_levels ~before ~after =
  List.iteri
    (fun i (b, a) ->
      let l = Printf.sprintf "sim.L%d." (i + 1) in
      obs_count (l ^ "accesses") (a.Cs.Stats.accesses - b.Cs.Stats.accesses);
      obs_count (l ^ "hits") (a.Cs.Stats.hits - b.Cs.Stats.hits);
      obs_count (l ^ "misses") (a.Cs.Stats.misses - b.Cs.Stats.misses);
      obs_count (l ^ "writes") (a.Cs.Stats.writes - b.Cs.Stats.writes);
      obs_count (l ^ "writebacks") (a.Cs.Stats.writebacks - b.Cs.Stats.writebacks))
    (List.combine before after);
  match (before, after) with
  | b1 :: _, a1 :: _ ->
      obs_count "sim.refs" (a1.Cs.Stats.accesses - b1.Cs.Stats.accesses)
  | _ -> ()

let run_on hierarchy machine layout program =
  let enabled = Obs.enabled () in
  let stats_of () = List.map Cs.Level.stats (Cs.Hierarchy.levels hierarchy) in
  let before = if enabled then obs_snapshot (stats_of ()) else [] in
  let flops =
    if not enabled then feed hierarchy layout program
    else
      Obs.with_span ~cat:"sim"
        ~args:
          [
            ("backend", `Str "reference");
            ("program", `Str program.Program.name);
          ]
        "sim:run"
        (fun () -> feed hierarchy layout program)
  in
  if enabled then obs_record_levels ~before ~after:(obs_snapshot (stats_of ()));
  let total_refs = Cs.Hierarchy.total_refs hierarchy in
  let misses =
    List.map
      (fun level -> (Cs.Level.stats level).Cs.Stats.misses)
      (Cs.Hierarchy.levels hierarchy)
  in
  let cycles = Cs.Cost_model.cycles machine.Cs.Machine.cost hierarchy in
  let seconds = Cs.Cost_model.seconds machine.Cs.Machine.cost hierarchy in
  {
    total_refs;
    misses;
    miss_rates = Cs.Hierarchy.miss_rates hierarchy;
    memory_accesses = Cs.Hierarchy.memory_accesses hierarchy;
    writebacks = Cs.Hierarchy.writebacks hierarchy;
    flops;
    cycles;
    seconds;
    mflops = Cs.Cost_model.mflops machine.Cs.Machine.cost ~flops hierarchy;
  }

let run_sim sim machine layout program =
  let enabled = Obs.enabled () in
  let before = if enabled then obs_snapshot (Cs.Fast_sim.level_stats sim) else [] in
  let m0 = if enabled then Some (Cs.Fast_sim.metrics sim) else None in
  let flops =
    if not enabled then feed_fast sim layout program
    else
      Obs.with_span ~cat:"sim"
        ~args:
          [ ("backend", `Str "fast"); ("program", `Str program.Program.name) ]
        "sim:run"
        (fun () -> feed_fast sim layout program)
  in
  if enabled then begin
    obs_record_levels ~before ~after:(obs_snapshot (Cs.Fast_sim.level_stats sim));
    match m0 with
    | Some m0 ->
        let m1 = Cs.Fast_sim.metrics sim in
        obs_count "sim.fast.bulk_segments"
          (m1.Cs.Fast_sim.bulk_segments - m0.Cs.Fast_sim.bulk_segments);
        obs_count "sim.fast.bulk_iterations"
          (m1.Cs.Fast_sim.bulk_iterations - m0.Cs.Fast_sim.bulk_iterations);
        obs_count "sim.fast.seq_iterations"
          (m1.Cs.Fast_sim.seq_iterations - m0.Cs.Fast_sim.seq_iterations)
    | None -> ()
  end;
  let stats = Cs.Fast_sim.level_stats sim in
  let cost = machine.Cs.Machine.cost in
  {
    total_refs = Cs.Fast_sim.total_refs sim;
    misses = List.map (fun s -> s.Cs.Stats.misses) stats;
    miss_rates = Cs.Fast_sim.miss_rates sim;
    memory_accesses = Cs.Fast_sim.memory_accesses sim;
    writebacks = Cs.Fast_sim.writebacks sim;
    flops;
    cycles = Cs.Cost_model.cycles_of_stats cost stats;
    seconds = Cs.Cost_model.seconds_of_stats cost stats;
    mflops = Cs.Cost_model.mflops_of_stats cost ~flops stats;
  }

type backend = [ `Reference | `Fast ]

let backend_name = function `Reference -> "reference" | `Fast -> "fast"

let backend_of_string = function
  | "reference" -> Some `Reference
  | "fast" -> Some `Fast
  | _ -> None

let run ?(backend = `Reference) machine layout program =
  match backend with
  | `Reference -> run_on (Cs.Machine.hierarchy machine) machine layout program
  | `Fast ->
      run_sim
        (Cs.Fast_sim.create machine.Cs.Machine.geometries)
        machine layout program

let trace layout program =
  let out = ref [] in
  let rec run_nest env loops body =
    match loops with
    | [] ->
        List.iter
          (fun s ->
            List.iter
              (fun r ->
                let env_fn v =
                  match List.assoc_opt v env with
                  | Some value -> value
                  | None -> invalid_arg ("Interp.trace: unbound " ^ v)
                in
                out := Layout.address_of_ref layout env_fn r :: !out)
              s.Stmt.refs)
          body
    | loop :: rest ->
        let env_fn v =
          match List.assoc_opt v env with
          | Some value -> value
          | None -> invalid_arg ("Interp.trace: unbound " ^ v)
        in
        Loop.iter env_fn loop (fun iv ->
            run_nest ((loop.Loop.var, iv) :: env) rest body)
  in
  for _step = 1 to program.Program.time_steps do
    List.iter (fun n -> run_nest [] n.Nest.loops n.Nest.body) program.Program.nests
  done;
  Array.of_list (List.rev !out)
