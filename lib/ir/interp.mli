(** Executes a program's memory-reference stream against a cache
    hierarchy.

    References with affine subscripts are compiled to a base constant plus
    one stride per loop level, so the inner loop only performs integer
    adds; gather references take a slow path that evaluates the table
    lookup.  [trace] is a deliberately naive evaluator used to cross-check
    the fast path in tests. *)

type result = {
  total_refs : int;
  misses : int list;       (** per level, L1 first *)
  miss_rates : float list; (** per level, vs total refs (paper convention) *)
  memory_accesses : int;
  writebacks : int;        (** dirty-line evictions, summed over levels *)
  flops : int;
  cycles : float;
  seconds : float;
  mflops : float;
}

(** Which simulator executes the reference stream.  [`Reference] walks
    the {!Mlc_cachesim.Hierarchy} cascade access by access; [`Fast] uses
    {!Mlc_cachesim.Fast_sim}, which bulk-accounts steady runs of L1 hits.
    The two produce identical results for any machine without hardware
    prefetching (the differential test suite enforces this); [`Fast] does
    not model prefetch, so callers with [prefetch_levels] must use
    [`Reference]. *)
type backend = [ `Reference | `Fast ]

val backend_name : backend -> string

val backend_of_string : string -> backend option

(** [run ?backend machine layout program] simulates one full execution on
    a fresh simulator ([backend] defaults to [`Reference]). *)
val run :
  ?backend:backend -> Mlc_cachesim.Machine.t -> Layout.t -> Program.t -> result

(** [run_on hierarchy machine layout program] is {!run} against a
    caller-created hierarchy — pass one built with non-default options
    (write policy, prefetching, associativity overrides).  The hierarchy
    must be fresh: its counters become the result.  The cost model still
    comes from [machine]. *)
val run_on :
  Mlc_cachesim.Hierarchy.t ->
  Mlc_cachesim.Machine.t ->
  Layout.t ->
  Program.t ->
  result

(** [run_sim sim machine layout program] is the [`Fast] analogue of
    {!run_on}: runs against a caller-created {!Mlc_cachesim.Fast_sim}
    (which must be fresh) so the caller can inspect its per-level stats
    afterwards. *)
val run_sim :
  Mlc_cachesim.Fast_sim.t ->
  Mlc_cachesim.Machine.t ->
  Layout.t ->
  Program.t ->
  result

(** [feed hierarchy layout program] pushes the reference stream through an
    existing hierarchy (no cost model applied); returns flops executed. *)
val feed : Mlc_cachesim.Hierarchy.t -> Layout.t -> Program.t -> int

(** [`Fast] analogue of {!feed}. *)
val feed_fast : Mlc_cachesim.Fast_sim.t -> Layout.t -> Program.t -> int

(** Naive full address trace (byte addresses, program order).  Intended
    for small programs in tests; allocates the whole trace. *)
val trace : Layout.t -> Program.t -> int array
