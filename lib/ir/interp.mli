(** Executes a program's memory-reference stream against a cache
    hierarchy.

    References with affine subscripts are compiled to a base constant plus
    one stride per loop level, so the inner loop only performs integer
    adds; gather references take a slow path that evaluates the table
    lookup.  [trace] is a deliberately naive evaluator used to cross-check
    the fast path in tests. *)

type result = {
  total_refs : int;
  misses : int list;       (** per level, L1 first *)
  miss_rates : float list; (** per level, vs total refs (paper convention) *)
  memory_accesses : int;
  writebacks : int;        (** dirty-line evictions, summed over levels *)
  flops : int;
  cycles : float;
  seconds : float;
  mflops : float;
}

(** [run machine layout program] simulates one full execution on a fresh
    hierarchy. *)
val run : Mlc_cachesim.Machine.t -> Layout.t -> Program.t -> result

(** [run_on hierarchy machine layout program] is {!run} against a
    caller-created hierarchy — pass one built with non-default options
    (write policy, prefetching, associativity overrides).  The hierarchy
    must be fresh: its counters become the result.  The cost model still
    comes from [machine]. *)
val run_on :
  Mlc_cachesim.Hierarchy.t ->
  Mlc_cachesim.Machine.t ->
  Layout.t ->
  Program.t ->
  result

(** [feed hierarchy layout program] pushes the reference stream through an
    existing hierarchy (no cost model applied); returns flops executed. *)
val feed : Mlc_cachesim.Hierarchy.t -> Layout.t -> Program.t -> int

(** Naive full address trace (byte addresses, program order).  Intended
    for small programs in tests; allocates the whole trace. *)
val trace : Layout.t -> Program.t -> int array
