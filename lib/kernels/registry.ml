open Mlc_ir

type category = Kernel | Nas | Spec

type entry = {
  name : string;
  description : string;
  category : category;
  paper_lines : int;
  build : unit -> Program.t;
  build_sized : (int -> Program.t) option;
}

let category_name = function
  | Kernel -> "KERNELS"
  | Nas -> "NAS BENCHMARKS"
  | Spec -> "SPEC95 BENCHMARKS"

let entry ?build_sized name description category paper_lines build =
  { name; description; category; paper_lines; build; build_sized }

let kernels =
  [
    entry "ADI32" "2D ADI Integration Fragment (Liv8)" Kernel 63
      (fun () -> Livermore.adi 256)
      ~build_sized:Livermore.adi;
    entry "DOT256" "Vector Dot Product (Liv3)" Kernel 32
      (fun () -> Livermore.dot 256_000)
      ~build_sized:Livermore.dot;
    entry "ERLE64" "3D Tridiagonal Solver" Kernel 612
      (fun () -> Livermore.erle 64)
      ~build_sized:Livermore.erle;
    entry "EXPL512" "2D Explicit Hydrodynamics (Liv18)" Kernel 59
      (fun () -> Livermore.expl 512)
      ~build_sized:Livermore.expl;
    entry "IRR500K" "Relaxation over Irregular Mesh" Kernel 196
      (fun () -> Livermore.irr 500_000)
      ~build_sized:Livermore.irr;
    entry "JACOBI512" "2D Jacobi with Convergence Test" Kernel 52
      (fun () -> Livermore.jacobi 512)
      ~build_sized:Livermore.jacobi;
    entry "LINPACKD" "Gaussian Elimination w/Pivoting" Kernel 795
      (fun () -> Livermore.linpackd 256)
      ~build_sized:Livermore.linpackd;
    entry "SHAL512" "Shallow Water Model" Kernel 227
      (fun () -> Livermore.shal 512)
      ~build_sized:(fun n -> Livermore.shal n);
  ]

let nas =
  [
    entry "APPBT" "Block-Tridiagonal PDE Solver" Nas 4441 (fun () -> Nas.bt 64)
      ~build_sized:Nas.bt;
    entry "APPLU" "Parabolic/Elliptic PDE Solver" Nas 3417 (fun () -> Nas.lu 64)
      ~build_sized:Nas.lu;
    entry "APPSP" "Scalar-Pentadiagonal PDE Solver" Nas 3991 (fun () -> Nas.sp 64)
      ~build_sized:Nas.sp;
    entry "BUK" "Integer Bucket Sort" Nas 305 (fun () -> Nas.buk 1_000_000)
      ~build_sized:(fun n -> Nas.buk n);
    entry "CGM" "Sparse Conjugate Gradient" Nas 855 (fun () -> Nas.cgm 75_000)
      ~build_sized:(fun n -> Nas.cgm n);
    entry "EMBAR" "Monte Carlo" Nas 265 (fun () -> Nas.embar 1_000_000)
      ~build_sized:Nas.embar;
    entry "FFTPDE" "3D Fast Fourier Transform" Nas 773 (fun () -> Nas.fftpde 262_144)
      ~build_sized:Nas.fftpde;
    entry "MGRID" "Multigrid Solver" Nas 680 (fun () -> Nas.mgrid 64)
      ~build_sized:Nas.mgrid;
  ]

let spec =
  [
    entry "APSI" "Pseudospectral Air Pollution" Spec 7361 (fun () -> Spec.apsi 128)
      ~build_sized:Spec.apsi;
    entry "FPPPP" "2 Electron Integral Derivative" Spec 2784 (fun () -> Spec.fpppp 2048)
      ~build_sized:Spec.fpppp;
    entry "HYDRO2D" "Navier-Stokes" Spec 4292 (fun () -> Spec.hydro2d 512)
      ~build_sized:Spec.hydro2d;
    entry "SU2COR" "Quantum Physics" Spec 2332 (fun () -> Spec.su2cor 256)
      ~build_sized:Spec.su2cor;
    entry "SWIM" "Vector Shallow Water Model" Spec 429 (fun () -> Spec.swim 512)
      ~build_sized:Spec.swim;
    entry "TOMCATV" "Mesh Generation" Spec 190 (fun () -> Spec.tomcatv 257)
      ~build_sized:Spec.tomcatv;
    entry "TURB3D" "Isotropic Turbulence" Spec 2100 (fun () -> Spec.turb3d 64)
      ~build_sized:Spec.turb3d;
    entry "WAVE5" "Maxwell's Equations" Spec 7764 (fun () -> Spec.wave5 512)
      ~build_sized:(fun n -> Spec.wave5 n);
  ]

let all = kernels @ nas @ spec

let find_opt name =
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name)
    all

let find name =
  match find_opt name with
  | Some e -> e
  | None -> raise Not_found
