(** The program inventory of Table 1, with builders at their default
    (paper) problem sizes. *)

open Mlc_ir

type category = Kernel | Nas | Spec

type entry = {
  name : string;        (** Table 1 name, e.g. "EXPL512" *)
  description : string; (** Table 1 description *)
  category : category;
  paper_lines : int;    (** source-line count from Table 1 *)
  build : unit -> Program.t;         (** at the default size *)
  build_sized : (int -> Program.t) option;  (** size-parameterized, when meaningful *)
}

val all : entry list

val kernels : entry list

val nas : entry list

val spec : entry list

(** @raise Not_found *)
val find : string -> entry

(** Case-insensitive lookup by Table 1 name — the resolution step behind
    the experiment engine's by-name job specs and cache keys. *)
val find_opt : string -> entry option

val category_name : category -> string
