(* Structured observability: spans, counters, sinks.

   Design constraints (see doc/OBSERVABILITY.md):
   - the disabled path must be near-free: with no buffer installed in the
     current domain, every entry point is a Domain.DLS read and a branch;
   - recording is single-domain: a buffer is only ever written by the
     domain that installed it, so the hot path takes no locks;
   - merging is deterministic: Buf.merge appends events buffer-by-buffer
     and sums counters, so merging per-worker buffers in submission order
     yields the same totals for any worker count. *)

type arg = [ `Int of int | `Float of float | `Str of string | `Bool of bool ]

type kind = Span_begin | Span_end | Instant | Sample

type event = {
  kind : kind;
  name : string;
  cat : string;
  ts : int;
  tid : int;
  args : (string * arg) list;
  value : int;
}

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

module Buf = struct
  type t = {
    tid : int;
    mutable events_rev : event list;  (* newest first *)
    mutable n_events : int;
    mutable depth : int;
    mutable last_ts : int;
    counters : (string, int ref) Hashtbl.t;
  }

  let create ?(tid = 0) () =
    {
      tid;
      events_rev = [];
      n_events = 0;
      depth = 0;
      last_ts = 0;
      counters = Hashtbl.create 16;
    }

  let tid t = t.tid

  let events t = List.rev t.events_rev

  let n_events t = t.n_events

  let depth t = t.depth

  (* Monotone per-buffer clock: gettimeofday can step backwards under
     NTP; clamping keeps every buffer's event stream non-decreasing,
     which the Chrome-trace export and validator rely on. *)
  let stamp t =
    let now = now_us () in
    let ts = if now > t.last_ts then now else t.last_ts in
    t.last_ts <- ts;
    ts

  let emit t e =
    t.events_rev <- e :: t.events_rev;
    t.n_events <- t.n_events + 1

  let bump t name n =
    let r =
      match Hashtbl.find_opt t.counters name with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.add t.counters name r;
          r
    in
    r := !r + n;
    !r

  let counters t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counter t name =
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

  let merge ~into src =
    (* events_rev is newest-first, so prepending src's (newest-first)
       list keeps each buffer's events contiguous and ordered:
       chronological output is "into's events, then src's". *)
    into.events_rev <- src.events_rev @ into.events_rev;
    into.n_events <- into.n_events + src.n_events;
    into.depth <- into.depth + src.depth;
    if src.last_ts > into.last_ts then into.last_ts <- src.last_ts;
    Hashtbl.iter (fun name r -> ignore (bump into name !r)) src.counters
end

(* One mutable slot per domain; only the owning domain reads or writes
   it, so no synchronization is needed. *)
let slot : Buf.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get slot)

let enabled () = current () <> None

let with_buf buf f =
  let r = Domain.DLS.get slot in
  let saved = !r in
  r := Some buf;
  Fun.protect ~finally:(fun () -> r := saved) f

(* --- spans --------------------------------------------------------------- *)

type span = (Buf.t * string * string) option

let begin_span ?(cat = "") ?(args = []) name : span =
  match current () with
  | None -> None
  | Some b ->
      b.Buf.depth <- b.Buf.depth + 1;
      Buf.emit b
        {
          kind = Span_begin;
          name;
          cat;
          ts = Buf.stamp b;
          tid = b.Buf.tid;
          args;
          value = 0;
        };
      Some (b, name, cat)

let end_span (s : span) =
  match s with
  | None -> ()
  | Some (b, name, cat) ->
      b.Buf.depth <- b.Buf.depth - 1;
      Buf.emit b
        {
          kind = Span_end;
          name;
          cat;
          ts = Buf.stamp b;
          tid = b.Buf.tid;
          args = [];
          value = 0;
        }

let with_span ?cat ?args name f =
  match current () with
  | None -> f ()
  | Some _ ->
      let s = begin_span ?cat ?args name in
      Fun.protect ~finally:(fun () -> end_span s) f

(* --- instants and counters ----------------------------------------------- *)

let instant ?(cat = "") ?(args = []) name =
  match current () with
  | None -> ()
  | Some b ->
      Buf.emit b
        {
          kind = Instant;
          name;
          cat;
          ts = Buf.stamp b;
          tid = b.Buf.tid;
          args;
          value = 0;
        }

let count ?(n = 1) name =
  match current () with
  | None -> ()
  | Some b ->
      let total = Buf.bump b name n in
      Buf.emit b
        {
          kind = Sample;
          name;
          cat = "counter";
          ts = Buf.stamp b;
          tid = b.Buf.tid;
          args = [];
          value = total;
        }

(* --- sinks --------------------------------------------------------------- *)

module Sink = struct
  type t = Null | Pretty of out_channel | Jsonl of out_channel | Chrome of out_channel

  let null = Null

  let pretty oc = Pretty oc

  let jsonl oc = Jsonl oc

  let chrome oc = Chrome oc

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let arg_json : arg -> string = function
    | `Int i -> string_of_int i
    | `Float f -> Printf.sprintf "%.6g" f
    | `Str s -> Printf.sprintf "\"%s\"" (json_escape s)
    | `Bool b -> string_of_bool b

  let args_json args =
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (arg_json v))
            args))

  let ph = function
    | Span_begin -> "B"
    | Span_end -> "E"
    | Instant -> "i"
    | Sample -> "C"

  let chrome_event e =
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \
                       \"ts\": %d, \"pid\": 1, \"tid\": %d"
         (json_escape e.name)
         (json_escape (if e.cat = "" then "default" else e.cat))
         (ph e.kind) e.ts e.tid);
    (match e.kind with
    | Sample -> Buffer.add_string b (Printf.sprintf ", \"args\": {\"value\": %d}" e.value)
    | Instant ->
        Buffer.add_string b ", \"s\": \"t\"";
        if e.args <> [] then
          Buffer.add_string b (Printf.sprintf ", \"args\": %s" (args_json e.args))
    | Span_begin ->
        if e.args <> [] then
          Buffer.add_string b (Printf.sprintf ", \"args\": %s" (args_json e.args))
    | Span_end -> ());
    Buffer.add_string b "}";
    Buffer.contents b

  (* Merged buffers concatenate per-worker event runs; a stable sort by
     timestamp restores one global monotone timeline while preserving
     each tid's internal (already monotone) order, so B/E pairs stay
     well-nested per tid. *)
  let chrome_events buf =
    List.stable_sort (fun a b -> compare a.ts b.ts) (Buf.events buf)

  let write_chrome oc buf =
    output_string oc "{\"traceEvents\": [\n";
    let events = chrome_events buf in
    List.iteri
      (fun i e ->
        if i > 0 then output_string oc ",\n";
        output_string oc (chrome_event e))
      events;
    output_string oc "\n]}\n"

  let jsonl_event e =
    let fields =
      [
        ("ph", Printf.sprintf "\"%s\"" (ph e.kind));
        ("name", Printf.sprintf "\"%s\"" (json_escape e.name));
        ("cat", Printf.sprintf "\"%s\"" (json_escape e.cat));
        ("ts", string_of_int e.ts);
        ("tid", string_of_int e.tid);
      ]
      @ (if e.kind = Sample then [ ("value", string_of_int e.value) ] else [])
      @ if e.args <> [] then [ ("args", args_json e.args) ] else []
    in
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) fields))

  let write_jsonl oc buf =
    List.iter
      (fun e ->
        output_string oc (jsonl_event e);
        output_char oc '\n')
      (Buf.events buf)

  let write_pretty oc buf =
    let events = Buf.events buf in
    let tids =
      List.sort_uniq compare (List.map (fun e -> e.tid) events)
    in
    List.iter
      (fun tid ->
        Printf.fprintf oc "worker %d:\n" tid;
        let depth = ref 0 in
        (* stack of span begin timestamps for duration reporting *)
        let starts = ref [] in
        List.iter
          (fun e ->
            if e.tid = tid then
              match e.kind with
              | Span_begin ->
                  Printf.fprintf oc "  %s> %s%s\n"
                    (String.make (2 * !depth) ' ')
                    e.name
                    (if e.cat = "" then "" else Printf.sprintf " [%s]" e.cat);
                  starts := e.ts :: !starts;
                  incr depth
              | Span_end ->
                  decr depth;
                  let t0 =
                    match !starts with
                    | t :: rest ->
                        starts := rest;
                        t
                    | [] -> e.ts
                  in
                  Printf.fprintf oc "  %s< %s (%.3f ms)\n"
                    (String.make (2 * !depth) ' ')
                    e.name
                    (float_of_int (e.ts - t0) /. 1000.0)
              | Instant ->
                  Printf.fprintf oc "  %s. %s\n"
                    (String.make (2 * !depth) ' ')
                    e.name
              | Sample -> ())
          events)
      tids;
    (match Buf.counters buf with
    | [] -> ()
    | counters ->
        Printf.fprintf oc "counters:\n";
        List.iter
          (fun (name, v) -> Printf.fprintf oc "  %-40s %d\n" name v)
          counters)

  let write t buf =
    match t with
    | Null -> ()
    | Pretty oc -> write_pretty oc buf
    | Jsonl oc -> write_jsonl oc buf
    | Chrome oc -> write_chrome oc buf
end
