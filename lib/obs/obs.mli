(** Structured observability: nestable timed spans, monotonic counters,
    and pluggable sinks (human pretty-print, JSON-lines, and Chrome
    [trace_event] JSON loadable in perfetto).

    Recording is explicit and domain-local: nothing is recorded unless a
    {!Buf.t} is installed in the current domain with {!with_buf}.  With no
    buffer installed, every entry point is one domain-local load and a
    branch — the disabled path is near-free, so instrumentation can live
    permanently in production code paths.

    Buffers are single-domain (no locks, no atomics on the hot path).  A
    parallel pool gives each worker its own buffer and merges them with
    {!Buf.merge} in {e submission order}: counter totals are sums, so the
    merged result is independent of how work was scheduled — the property
    that keeps [--jobs N] output byte-identical to [--jobs 1]. *)

type arg = [ `Int of int | `Float of float | `Str of string | `Bool of bool ]

type kind =
  | Span_begin
  | Span_end
  | Instant  (** a point event (a decision, a cache hit, ...) *)
  | Sample  (** a counter observation ([value] is the running total) *)

type event = {
  kind : kind;
  name : string;
  cat : string;
  ts : int;  (** microseconds since the epoch, monotone per buffer *)
  tid : int;  (** worker/thread attribution (buffer's [tid]) *)
  args : (string * arg) list;
  value : int;  (** meaningful for [Sample] only *)
}

(** Current wall clock in integer microseconds. *)
val now_us : unit -> int

(** Event buffers. *)
module Buf : sig
  type t

  (** [create ?tid ()] — [tid] is the worker attribution stamped on every
      event (default 0). *)
  val create : ?tid:int -> unit -> t

  val tid : t -> int

  (** Events in chronological (record) order. *)
  val events : t -> event list

  val n_events : t -> int

  (** Currently open spans (0 once every span has been finished). *)
  val depth : t -> int

  (** Counter totals, sorted by name. *)
  val counters : t -> (string * int) list

  (** A single counter's total (0 when never bumped). *)
  val counter : t -> string -> int

  (** [merge ~into src] appends [src]'s events after [into]'s (each
      buffer's internal order preserved) and adds counter totals.
      Merging a list of buffers in a fixed order is deterministic. *)
  val merge : into:t -> t -> unit
end

(** [with_buf buf f] records everything [f] emits in the current domain
    into [buf] (restores the previous buffer afterwards, even on raise). *)
val with_buf : Buf.t -> (unit -> 'a) -> 'a

(** True iff a buffer is installed in the current domain. *)
val enabled : unit -> bool

(** The installed buffer, if any. *)
val current : unit -> Buf.t option

(** {2 Spans} *)

type span

(** [begin_span name] opens a span; a no-op returning a dummy token when
    disabled.  Prefer {!with_span}. *)
val begin_span : ?cat:string -> ?args:(string * arg) list -> string -> span

val end_span : span -> unit

(** [with_span name f] times [f] inside a nestable span (exception-safe). *)
val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

(** {2 Point events and counters} *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit

(** [count ?n name] bumps monotonic counter [name] by [n] (default 1) and
    records a sample of the new running total. *)
val count : ?n:int -> string -> unit

(** {2 Sinks} *)

module Sink : sig
  type t

  (** Discards everything. *)
  val null : t

  (** Human-readable span tree (per worker) + counter table. *)
  val pretty : out_channel -> t

  (** One JSON object per event, one per line. *)
  val jsonl : out_channel -> t

  (** Chrome [trace_event] JSON ([{"traceEvents": [...]}]), sorted by
      timestamp, B/E pairs per tid — load in [ui.perfetto.dev] or
      [chrome://tracing]. *)
  val chrome : out_channel -> t

  (** Write a buffer's events and counters to the sink. *)
  val write : t -> Buf.t -> unit
end
