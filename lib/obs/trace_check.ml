(* Chrome trace_event validation: a small hand-rolled JSON parser (the
   repo deliberately has no JSON dependency) plus the structural checks
   CI runs on every exported trace. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

  type state = { src : string; mutable pos : int }

  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some x when x = c -> advance st
    | Some x -> fail "at %d: expected %c, found %c" st.pos c x
    | None -> fail "at %d: expected %c, found end of input" st.pos c

  let literal st word value =
    let n = String.length word in
    if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
    then begin
      st.pos <- st.pos + n;
      value
    end
    else fail "at %d: invalid literal" st.pos

  let parse_string st =
    expect st '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> fail "unterminated string"
      | Some '"' -> advance st
      | Some '\\' -> (
          advance st;
          match peek st with
          | None -> fail "unterminated escape"
          | Some c ->
              advance st;
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'r' -> Buffer.add_char b '\r'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if st.pos + 4 > String.length st.src then fail "bad \\u escape";
                  let hex = String.sub st.src st.pos 4 in
                  st.pos <- st.pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape %S" hex
                  in
                  (* keep it simple: BMP code points as UTF-8 *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | c -> fail "bad escape \\%c" c);
              go ())
      | Some c ->
          advance st;
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b

  let parse_number st =
    let start = st.pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek st with Some c when is_num_char c -> true | _ -> false) do
      advance st
    done;
    let s = String.sub st.src start (st.pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "at %d: bad number %S" start s)

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string st)
    | Some '{' ->
        advance st;
        skip_ws st;
        if peek st = Some '}' then begin
          advance st;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws st;
            let k = parse_string st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                members ((k, v) :: acc)
            | Some '}' ->
                advance st;
                List.rev ((k, v) :: acc)
            | _ -> fail "at %d: expected , or } in object" st.pos
          in
          Obj (members [])
        end
    | Some '[' ->
        advance st;
        skip_ws st;
        if peek st = Some ']' then begin
          advance st;
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                elements (v :: acc)
            | Some ']' ->
                advance st;
                List.rev (v :: acc)
            | _ -> fail "at %d: expected , or ] in array" st.pos
          in
          List (elements [])
        end
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some ('-' | '0' .. '9') -> parse_number st
    | Some c -> fail "at %d: unexpected character %c" st.pos c

  let parse src =
    let st = { src; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then fail "trailing garbage at %d" st.pos;
    v
end

type stats = {
  events : int;
  spans : int;
  counters : int;
  instants : int;
  tids : int;
}

let field obj k = match obj with Json.Obj kvs -> List.assoc_opt k kvs | _ -> None

let validate_json json =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let events =
    match json with
    | Json.List evs -> evs
    | Json.Obj _ -> (
        match field json "traceEvents" with
        | Some (Json.List evs) -> evs
        | Some _ ->
            err "traceEvents is not an array";
            []
        | None ->
            err "top-level object has no traceEvents array";
            [])
    | _ ->
        err "top level is neither an array nor an object";
        []
  in
  let spans = ref 0 and counters = ref 0 and instants = ref 0 in
  let last_ts = ref min_int in
  (* per (pid, tid): stack of open span names *)
  let stacks : (int * int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of key =
    match Hashtbl.find_opt stacks key with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks key s;
        s
  in
  List.iteri
    (fun i ev ->
      match ev with
      | Json.Obj _ -> (
          let ph =
            match field ev "ph" with
            | Some (Json.String p) -> p
            | _ ->
                err "event %d: missing string ph" i;
                ""
          in
          if ph <> "" && not (List.mem ph [ "B"; "E"; "i"; "I"; "C"; "M"; "X" ])
          then err "event %d: unknown ph %S" i ph;
          let name =
            match field ev "name" with Some (Json.String n) -> Some n | _ -> None
          in
          if List.mem ph [ "B"; "C"; "i"; "I" ] && name = None then
            err "event %d (ph %s): missing string name" i ph;
          let int_field k =
            match field ev k with
            | Some (Json.Int n) -> Some n
            | _ ->
                err "event %d: missing integer %s" i k;
                None
          in
          let ts = int_field "ts" in
          (match ts with
          | Some t ->
              if t < 0 then err "event %d: negative ts" i;
              if t < !last_ts then
                err "event %d: ts %d goes backwards (previous %d)" i t !last_ts
              else last_ts := t
          | None -> ());
          let pid = int_field "pid" and tid = int_field "tid" in
          (match (pid, tid) with
          | Some pid, Some tid -> (
              let stack = stack_of (pid, tid) in
              match ph with
              | "B" ->
                  stack := Option.value name ~default:"" :: !stack
              | "E" -> (
                  match !stack with
                  | [] -> err "event %d: E without matching B (tid %d)" i tid
                  | top :: rest ->
                      (match name with
                      | Some n when n <> top ->
                          err
                            "event %d: E name %S does not match open span %S \
                             (tid %d)"
                            i n top tid
                      | _ -> ());
                      stack := rest;
                      incr spans)
              | _ -> ())
          | _ -> ());
          match ph with
          | "C" -> (
              incr counters;
              match field ev "args" with
              | Some args -> (
                  match field args "value" with
                  | Some (Json.Int _ | Json.Float _) -> ()
                  | _ -> err "event %d: counter without numeric args.value" i)
              | None -> err "event %d: counter without args" i)
          | "i" | "I" -> incr instants
          | _ -> ())
      | _ -> err "event %d is not an object" i)
    events;
  Hashtbl.iter
    (fun (pid, tid) stack ->
      match !stack with
      | [] -> ()
      | open_spans ->
          err "pid %d tid %d: %d unclosed span(s), innermost %S" pid tid
            (List.length open_spans) (List.hd open_spans))
    stacks;
  match !errors with
  | [] ->
      Ok
        {
          events = List.length events;
          spans = !spans;
          counters = !counters;
          instants = !instants;
          tids = Hashtbl.length stacks;
        }
  | errs -> Error (List.rev errs)

let validate_string s =
  match Json.parse s with
  | json -> validate_json json
  | exception Json.Parse_error msg -> Error [ "JSON parse error: " ^ msg ]

let validate_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error [ msg ]
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      validate_string s
