(** Validation of Chrome [trace_event] JSON (the format [Obs.Sink.chrome]
    emits and perfetto loads).  Used by [mlc trace-check] and CI.

    Checks performed:
    - the file parses as JSON: either a bare event array or an object
      with a [traceEvents] array;
    - every event is an object with a string [ph] among B/E/i/I/C/M/X,
      integer [ts] >= 0, and integer [pid]/[tid]; B, C and i events
      carry a string [name];
    - timestamps are monotone (non-decreasing) in file order;
    - per (pid, tid), B and E events match like brackets (same name,
      LIFO order) and every span is closed by the end of the file;
    - C (counter) events carry a numeric [args.value]. *)

type stats = {
  events : int;
  spans : int;  (** matched B/E pairs *)
  counters : int;  (** C events *)
  instants : int;
  tids : int;  (** distinct (pid, tid) lanes *)
}

(** Validate an in-memory JSON document. *)
val validate_string : string -> (stats, string list) result

(** Validate a file on disk. *)
val validate_file : string -> (stats, string list) result

(** Minimal JSON parser (exposed for tests). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  (** @raise Parse_error on malformed input. *)
  val parse : string -> t
end
