(* Unit and property tests for the multi-level cache simulator. *)

module Cs = Mlc_cachesim

let geom size line assoc = { Cs.Level.size; line; assoc }

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* --- Level ------------------------------------------------------------ *)

let test_direct_mapped_basics () =
  let level = Cs.Level.create (geom 1024 32 1) in
  check_bool "cold miss" false (Cs.Level.access level 0);
  check_bool "hit same line" true (Cs.Level.access level 8);
  check_bool "hit line end" true (Cs.Level.access level 31);
  check_bool "miss next line" false (Cs.Level.access level 32);
  (* 1024-byte cache: address 1024 maps onto line of address 0 *)
  check_bool "conflict evicts" false (Cs.Level.access level 1024);
  check_bool "original evicted" false (Cs.Level.access level 0)

let test_direct_mapped_stats () =
  let level = Cs.Level.create (geom 1024 32 1) in
  for i = 0 to 99 do
    ignore (Cs.Level.access level (i * 8))
  done;
  let stats = Cs.Level.stats level in
  check_int "accesses" 100 stats.Cs.Stats.accesses;
  (* 100 accesses of 8B cover 800 bytes = 25 lines *)
  check_int "misses = lines touched" 25 stats.Cs.Stats.misses

let test_lru_two_way () =
  let level = Cs.Level.create (geom 64 16 2) in
  (* 2 sets; addresses 0, 32, 64 all map to set 0. *)
  check_bool "miss a" false (Cs.Level.access level 0);
  check_bool "miss b" false (Cs.Level.access level 32);
  check_bool "hit a" true (Cs.Level.access level 0);
  (* c evicts b (LRU), not a *)
  check_bool "miss c" false (Cs.Level.access level 64);
  check_bool "a survives" true (Cs.Level.access level 0);
  check_bool "b evicted" false (Cs.Level.access level 32)

let test_fully_assoc_lru () =
  let level = Cs.Level.create (geom 64 16 4) in
  (* one set of 4 ways *)
  List.iter (fun a -> ignore (Cs.Level.access level a)) [ 0; 64; 128; 192 ];
  check_bool "all resident" true
    (List.for_all (Cs.Level.access level) [ 0; 64; 128; 192 ]);
  ignore (Cs.Level.access level 256);
  (* LRU victim is 0 after the hits above... the hit order made 0 oldest *)
  check_bool "lru evicted" false (Cs.Level.access level 0)

let test_geometry_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Cs.Level.create (geom 1000 32 1));
  expect_invalid (fun () -> Cs.Level.create (geom 1024 24 1));
  expect_invalid (fun () -> Cs.Level.create (geom 1024 32 3));
  expect_invalid (fun () -> Cs.Level.create (geom 16 32 1));
  expect_invalid (fun () -> Cs.Level.create (geom 1024 32 0))

let test_clear () =
  let level = Cs.Level.create (geom 1024 32 1) in
  ignore (Cs.Level.access level 0);
  Cs.Level.clear level;
  check_int "stats reset" 0 (Cs.Level.stats level).Cs.Stats.accesses;
  check_bool "contents gone" false (Cs.Level.access level 0)

let test_resident_lines () =
  let level = Cs.Level.create (geom 1024 32 1) in
  ignore (Cs.Level.access level 0);
  ignore (Cs.Level.access level 100);
  let lines = List.sort compare (Cs.Level.resident_lines level) in
  Alcotest.(check (list int)) "lines" [ 0; 96 ] lines

let test_write_allocate_policies () =
  (* write-allocate (default): a write miss installs the line *)
  let wa = Cs.Level.create (geom 1024 32 1) in
  check_bool "write miss" false (Cs.Level.access wa ~write:true 0);
  check_bool "read hits after write-allocate" true (Cs.Level.access wa 8);
  (* no-allocate: the write bypasses, the later read still misses *)
  let nwa = Cs.Level.create ~write_allocate:false (geom 1024 32 1) in
  check_bool "write miss" false (Cs.Level.access nwa ~write:true 0);
  check_bool "read still misses" false (Cs.Level.access nwa 8);
  (* but reads install lines normally, and writes then hit *)
  check_bool "write hits resident line" true (Cs.Level.access nwa ~write:true 8)

let test_writeback_counting () =
  let level = Cs.Level.create (geom 64 32 1) in
  (* two sets; write dirties line 0; conflicting line at 64 evicts it *)
  ignore (Cs.Level.access level ~write:true 0);
  check_int "no writeback yet" 0 (Cs.Level.writebacks level);
  ignore (Cs.Level.access level 64);
  check_int "dirty eviction counted" 1 (Cs.Level.writebacks level);
  (* clean eviction: read-only line replaced silently *)
  ignore (Cs.Level.access level 128);
  check_int "clean eviction free" 1 (Cs.Level.writebacks level);
  Cs.Level.clear level;
  check_int "clear resets" 0 (Cs.Level.writebacks level)

let test_writes_vs_writebacks_distinct () =
  (* Regression: write misses and dirty evictions are different axes and
     must never share a counter.  A stream of write misses to disjoint
     lines produces writes without writebacks; only evicting a dirtied
     line produces a writeback, and it does not bump the write count. *)
  let level = Cs.Level.create (geom 64 32 1) in
  ignore (Cs.Level.access level ~write:true 0);
  ignore (Cs.Level.access level ~write:true 32);
  let s = Cs.Level.stats level in
  check_int "write misses counted as writes" 2 s.Cs.Stats.writes;
  check_int "write misses counted as misses" 2 s.Cs.Stats.misses;
  check_int "write misses are not writebacks" 0 s.Cs.Stats.writebacks;
  (* conflicting read evicts the dirty line at set 0 *)
  ignore (Cs.Level.access level 64);
  let s = Cs.Level.stats level in
  check_int "dirty eviction is a writeback" 1 s.Cs.Stats.writebacks;
  check_int "dirty eviction is not a write" 2 s.Cs.Stats.writes;
  (* no-allocate: write misses bypass the level, so no line is ever
     dirtied and later evictions stay silent *)
  let wa = Cs.Level.create ~write_allocate:false (geom 64 32 1) in
  ignore (Cs.Level.access wa ~write:true 0);
  ignore (Cs.Level.access wa 64);
  ignore (Cs.Level.access wa 128);
  let s = Cs.Level.stats wa in
  check_int "no-allocate write miss recorded" 1 s.Cs.Stats.writes;
  check_int "no-allocate write misses never write back" 0 s.Cs.Stats.writebacks;
  check_int "accessor agrees with stats" (Cs.Level.writebacks wa)
    s.Cs.Stats.writebacks

let test_next_line_prefetch () =
  let base = Cs.Level.create (geom 1024 32 1) in
  let pf = Cs.Level.create ~prefetch_next_line:true (geom 1024 32 1) in
  (* sequential walk: without prefetch every line misses; with next-line
     prefetch only the first line of the stream misses *)
  let walk level =
    let misses = ref 0 in
    for i = 0 to 255 do
      if not (Cs.Level.access level (i * 4)) then incr misses
    done;
    !misses
  in
  check_int "no prefetch: one miss per line" 32 (walk base);
  check_int "prefetch: only the first miss" 1 (walk pf);
  (* the prefetcher never fabricates hits on random far jumps *)
  let pf2 = Cs.Level.create ~prefetch_next_line:true (geom 1024 32 1) in
  check_bool "cold far miss" false (Cs.Level.access pf2 0);
  check_bool "far jump still misses" false (Cs.Level.access pf2 8192)

(* --- Hierarchy --------------------------------------------------------- *)

let test_hierarchy_propagation () =
  let h = Cs.Hierarchy.create [ geom 64 16 1; geom 256 16 1 ] in
  check_int "memory on cold miss" 2 (Cs.Hierarchy.access h 0);
  check_int "l1 hit" 0 (Cs.Hierarchy.access h 0);
  (* evict from L1 (64B cache: addr 64 conflicts), keep in L2 *)
  check_int "conflict to l2" 2 (Cs.Hierarchy.access h 64);
  check_int "l2 still holds 0" 1 (Cs.Hierarchy.access h 0)

let test_hierarchy_miss_rates () =
  let h = Cs.Hierarchy.create [ geom 64 16 1; geom 256 16 1 ] in
  ignore (Cs.Hierarchy.access h 0);
  ignore (Cs.Hierarchy.access h 0);
  ignore (Cs.Hierarchy.access h 0);
  ignore (Cs.Hierarchy.access h 0);
  match Cs.Hierarchy.miss_rates h with
  | [ l1; l2 ] ->
      Alcotest.(check (float 1e-9)) "l1 rate" 0.25 l1;
      Alcotest.(check (float 1e-9)) "l2 rate (vs total refs)" 0.25 l2
  | _ -> Alcotest.fail "two levels expected"

let test_ultrasparc_preset () =
  let h = Cs.Hierarchy.ultrasparc () in
  check_int "levels" 2 (Cs.Hierarchy.n_levels h);
  match Cs.Hierarchy.levels h with
  | [ l1; l2 ] ->
      check_int "l1 size" (16 * 1024) (Cs.Level.geometry l1).Cs.Level.size;
      check_int "l1 line" 32 (Cs.Level.geometry l1).Cs.Level.line;
      check_int "l2 size" (512 * 1024) (Cs.Level.geometry l2).Cs.Level.size;
      check_int "l2 line" 64 (Cs.Level.geometry l2).Cs.Level.line
  | _ -> Alcotest.fail "two levels expected"

(* --- Cost model -------------------------------------------------------- *)

let test_cost_model () =
  let h = Cs.Hierarchy.create [ geom 64 16 1; geom 256 16 1 ] in
  (* one access: L1 miss, L2 miss, memory *)
  ignore (Cs.Hierarchy.access h 0);
  let model =
    { Cs.Cost_model.hit_cycles = [| 1.0; 10.0 |]; memory_cycles = 100.0; clock_hz = 1e6 }
  in
  Alcotest.(check (float 1e-9)) "cycles" 111.0 (Cs.Cost_model.cycles model h);
  (* second access hits L1: +1 cycle *)
  ignore (Cs.Hierarchy.access h 0);
  Alcotest.(check (float 1e-9)) "cycles" 112.0 (Cs.Cost_model.cycles model h)

let test_improvement () =
  Alcotest.(check (float 1e-9)) "50%" 50.0
    (Cs.Cost_model.improvement ~orig:100.0 ~opt:50.0);
  Alcotest.(check (float 1e-9)) "degradation" (-10.0)
    (Cs.Cost_model.improvement ~orig:100.0 ~opt:110.0)

(* --- Trace ------------------------------------------------------------- *)

let test_trace_combinators () =
  let a = Cs.Trace.strided ~base:0 ~stride:8 ~count:3 in
  Alcotest.(check (array int)) "strided" [| 0; 8; 16 |] a;
  let b = Cs.Trace.strided ~base:100 ~stride:1 ~count:2 in
  Alcotest.(check (array int)) "interleave" [| 0; 100; 8; 101; 16 |]
    (Cs.Trace.interleave [ a; b ]);
  Alcotest.(check (array int)) "repeat" [| 0; 8; 16; 0; 8; 16 |] (Cs.Trace.repeat 2 a);
  Alcotest.(check int) "lines" 2 (Cs.Trace.lines_touched ~line:16 a)

(* --- Properties -------------------------------------------------------- *)

(* Random traces: miss count of an assoc cache never exceeds the number of
   distinct lines times the worst case; and replaying the same trace twice
   on a big-enough cache yields all hits the second time. *)
let prop_second_pass_hits =
  QCheck.Test.make ~name:"second pass over small working set all hits" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 1000))
    (fun addrs ->
      let level = Cs.Level.create (geom 4096 32 1) in
      List.iter (fun a -> ignore (Cs.Level.access level a)) addrs;
      (* working set is 1001 bytes < 4096 and a direct-mapped 4096 cache
         maps [0,1000] without conflicts *)
      List.for_all (fun a -> Cs.Level.access level a) addrs)

let prop_higher_assoc_never_conflicts_within_set_count =
  QCheck.Test.make ~name:"fully-assoc LRU holds any working set <= ways" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 4) (int_range 0 100_000))
    (fun addrs ->
      let distinct_lines =
        List.sort_uniq compare (List.map (fun a -> a / 32) addrs)
      in
      let level = Cs.Level.create (geom (32 * 8) 32 8) in
      (* one set, 8 ways; at most 4 distinct lines *)
      List.iter (fun a -> ignore (Cs.Level.access level a)) addrs;
      ignore distinct_lines;
      List.for_all (fun a -> Cs.Level.access level a) addrs)

let prop_miss_rates_bounded =
  QCheck.Test.make ~name:"miss rates in [0,1], monotone down levels" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 1_000_000))
    (fun addrs ->
      let h = Cs.Hierarchy.create [ geom 1024 32 1; geom 8192 32 1 ] in
      List.iter (fun a -> ignore (Cs.Hierarchy.access h a)) addrs;
      match Cs.Hierarchy.miss_rates h with
      | [ l1; l2 ] -> l1 >= 0.0 && l1 <= 1.0 && l2 >= 0.0 && l2 <= l1
      | _ -> false)

let prop_inclusion_like =
  (* With equal line sizes and L2 ⊇ L1 capacity, any L1 hit address was
     previously installed in L2 as well (we never see an L2 access for
     it unless L1 missed): L2 accesses = L1 misses. *)
  QCheck.Test.make ~name:"L2 accesses equal L1 misses" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 300) (int_range 0 100_000))
    (fun addrs ->
      let h = Cs.Hierarchy.create [ geom 512 32 1; geom 4096 32 1 ] in
      List.iter (fun a -> ignore (Cs.Hierarchy.access h a)) addrs;
      match Cs.Hierarchy.levels h with
      | [ l1; l2 ] ->
          (Cs.Level.stats l2).Cs.Stats.accesses = (Cs.Level.stats l1).Cs.Stats.misses
      | _ -> false)

let () =
  Alcotest.run "cachesim"
    [
      ( "level",
        [
          Alcotest.test_case "direct-mapped basics" `Quick test_direct_mapped_basics;
          Alcotest.test_case "direct-mapped stats" `Quick test_direct_mapped_stats;
          Alcotest.test_case "2-way LRU" `Quick test_lru_two_way;
          Alcotest.test_case "fully-assoc LRU" `Quick test_fully_assoc_lru;
          Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "resident lines" `Quick test_resident_lines;
          Alcotest.test_case "write policies" `Quick test_write_allocate_policies;
          Alcotest.test_case "writeback counting" `Quick test_writeback_counting;
          Alcotest.test_case "writes vs writebacks distinct" `Quick
            test_writes_vs_writebacks_distinct;
          Alcotest.test_case "next-line prefetch" `Quick test_next_line_prefetch;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "propagation" `Quick test_hierarchy_propagation;
          Alcotest.test_case "miss rates" `Quick test_hierarchy_miss_rates;
          Alcotest.test_case "ultrasparc preset" `Quick test_ultrasparc_preset;
        ] );
      ( "cost",
        [
          Alcotest.test_case "cost model" `Quick test_cost_model;
          Alcotest.test_case "improvement" `Quick test_improvement;
        ] );
      ("trace", [ Alcotest.test_case "combinators" `Quick test_trace_combinators ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_second_pass_hits;
            prop_higher_assoc_never_conflicts_within_set_count;
            prop_miss_rates_bounded;
            prop_inclusion_like;
          ] );
    ]
