(* Differential oracle: the fast backend against the reference cascade.

   Fast_sim claims bit-identical per-level stats (hits, misses, writes,
   writebacks) for arbitrary hierarchies without prefetch.  These tests
   hold it to that over random traces, random block-shaped access
   patterns, and random power-of-two geometries, and check the
   stack-distance sweep against full per-associativity simulations.

   Case counts scale with the QCHECK_COUNT environment variable (the
   nightly CI job sets it to 2000); the defaults already exceed 1000
   random (trace, hierarchy) cases per run. *)

module Cs = Mlc_cachesim

let qcheck_count default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* --- generators -------------------------------------------------------- *)

let gen_geom =
  QCheck.Gen.(
    let* line_bits = int_range 4 6 in
    let* sets_bits = int_range 0 4 in
    let* assoc = oneofl [ 1; 2; 4 ] in
    let line = 1 lsl line_bits in
    let n_sets = 1 lsl sets_bits in
    return { Cs.Level.size = line * n_sets * assoc; line; assoc })

let gen_hierarchy =
  QCheck.Gen.(
    let* geoms = list_size (int_range 1 3) gen_geom in
    let* write_allocate = bool in
    return (write_allocate, geoms))

let gen_trace =
  QCheck.Gen.(
    list_size (int_range 1 400) (pair (int_range 0 8191) bool))

let print_geom (g : Cs.Level.geometry) =
  Printf.sprintf "{size=%d;line=%d;assoc=%d}" g.Cs.Level.size g.Cs.Level.line
    g.Cs.Level.assoc

let print_hierarchy (wa, geoms) =
  Printf.sprintf "write_allocate=%b [%s]" wa
    (String.concat "; " (List.map print_geom geoms))

(* --- trace-level equivalence ------------------------------------------- *)

let stats_match h f =
  List.for_all2 Cs.Stats.equal
    (List.map Cs.Level.stats (Cs.Hierarchy.levels h))
    (Cs.Fast_sim.level_stats f)

let prop_trace_equivalence =
  QCheck.Test.make
    ~name:"random trace: Fast_sim.access = Hierarchy.access (stats + hit level)"
    ~count:(qcheck_count 600)
    (QCheck.make
       ~print:(fun (h, trace) ->
         Printf.sprintf "%s trace=%s" (print_hierarchy h)
           (String.concat ","
              (List.map
                 (fun (a, w) -> Printf.sprintf "%d%s" a (if w then "w" else ""))
                 trace)))
       QCheck.Gen.(pair gen_hierarchy gen_trace))
    (fun ((write_allocate, geoms), trace) ->
      let h = Cs.Hierarchy.create ~write_allocate geoms in
      let f = Cs.Fast_sim.create ~write_allocate geoms in
      let levels_agree = ref true in
      List.iter
        (fun (addr, write) ->
          let lh = Cs.Hierarchy.access h ~write addr in
          let lf = Cs.Fast_sim.access f ~write addr in
          if lh <> lf then levels_agree := false)
        trace;
      !levels_agree && stats_match h f
      && Cs.Hierarchy.writebacks h = Cs.Fast_sim.writebacks f
      && Cs.Hierarchy.miss_rates h = Cs.Fast_sim.miss_rates f
      && Cs.Hierarchy.memory_accesses h = Cs.Fast_sim.memory_accesses f)

(* --- block-level equivalence ------------------------------------------- *)

(* Loop-shaped access patterns: a handful of references advancing by
   per-ref strides, the shape [block] bulk-optimizes.  Strides are drawn
   to cover the interesting regimes: zero stride, sub-line strides
   (steady hits), line-sized and super-line strides (miss per segment),
   negative strides, and non-power-of-two ones. *)
let gen_block =
  QCheck.Gen.(
    let* nrefs = int_range 1 4 in
    let* bases = list_repeat nrefs (int_range 0 4096) in
    let* strides =
      list_repeat nrefs
        (oneofl [ -100; -64; -32; -8; -4; 0; 4; 8; 12; 16; 24; 32; 64; 100; 256 ])
    in
    let* writes = list_repeat nrefs bool in
    let* count = int_range 1 300 in
    return (Array.of_list bases, Array.of_list strides, Array.of_list writes, count))

let prop_block_equivalence =
  QCheck.Test.make
    ~name:"random block: Fast_sim.block = per-access reference cascade"
    ~count:(qcheck_count 400)
    (QCheck.make
       ~print:(fun (h, (bases, strides, writes, count)) ->
         Printf.sprintf "%s bases=[%s] strides=[%s] writes=[%s] count=%d"
           (print_hierarchy h)
           (String.concat ";" (Array.to_list (Array.map string_of_int bases)))
           (String.concat ";" (Array.to_list (Array.map string_of_int strides)))
           (String.concat ";"
              (Array.to_list (Array.map string_of_bool writes)))
           count)
       QCheck.Gen.(pair gen_hierarchy gen_block))
    (fun ((write_allocate, geoms), (bases, strides, writes, count)) ->
      let h = Cs.Hierarchy.create ~write_allocate geoms in
      let f = Cs.Fast_sim.create ~write_allocate geoms in
      for j = 0 to count - 1 do
        for r = 0 to Array.length bases - 1 do
          ignore
            (Cs.Hierarchy.access h ~write:writes.(r)
               (bases.(r) + (j * strides.(r))))
        done
      done;
      Cs.Fast_sim.block f ~bases ~strides ~writes ~count;
      stats_match h f && Cs.Hierarchy.writebacks h = Cs.Fast_sim.writebacks f)

(* --- run-length replay -------------------------------------------------- *)

let prop_compact_replay =
  QCheck.Test.make
    ~name:"compress/expand round-trips; compact replay = reference replay"
    ~count:(qcheck_count 200)
    (QCheck.make QCheck.Gen.(pair gen_hierarchy (list_size (int_range 1 300) (int_range 0 8191))))
    (fun ((write_allocate, geoms), addrs) ->
      let trace = Array.of_list addrs in
      let compact = Cs.Trace.compress trace in
      let h = Cs.Hierarchy.create ~write_allocate geoms in
      let f = Cs.Fast_sim.create ~write_allocate geoms in
      Cs.Trace.replay h trace;
      Cs.Fast_sim.replay_compact f compact;
      Cs.Trace.expand compact = trace
      && Cs.Trace.length compact = Array.length trace
      && stats_match h f)

(* --- stack-distance sweep vs direct simulation -------------------------- *)

let prop_sweep_matches_levels =
  QCheck.Test.make
    ~name:"Assoc_sweep.stats_at = full Level simulation (assoc 1,2,4,8)"
    ~count:(qcheck_count 300)
    (QCheck.make
       QCheck.Gen.(
         let* line_bits = int_range 4 6 in
         let* sets_bits = int_range 0 3 in
         let* trace = list_size (int_range 1 300) (pair (int_range 0 8191) bool) in
         return (1 lsl line_bits, 1 lsl sets_bits, trace)))
    (fun (line, n_sets, trace) ->
      let sweep = Cs.Fast_sim.Assoc_sweep.create ~line ~n_sets in
      List.iter (fun (addr, write) -> Cs.Fast_sim.Assoc_sweep.touch ~write sweep addr) trace;
      List.for_all
        (fun assoc ->
          let level =
            Cs.Level.create { Cs.Level.size = line * n_sets * assoc; line; assoc }
          in
          List.iter
            (fun (addr, write) -> ignore (Cs.Level.access level ~write addr))
            trace;
          let ref_stats = Cs.Level.stats level in
          let sweep_stats = Cs.Fast_sim.Assoc_sweep.stats_at sweep ~assoc in
          ref_stats.Cs.Stats.accesses = sweep_stats.Cs.Stats.accesses
          && ref_stats.Cs.Stats.hits = sweep_stats.Cs.Stats.hits
          && ref_stats.Cs.Stats.misses = sweep_stats.Cs.Stats.misses
          && ref_stats.Cs.Stats.writes = sweep_stats.Cs.Stats.writes)
        [ 1; 2; 4; 8 ])

(* --- whole-kernel equivalence ------------------------------------------- *)

(* End-to-end: Interp with backend:`Fast must reproduce the reference
   result record exactly — counters and derived floats — on real kernels,
   on both machine presets, including a gather kernel (IRR) that takes
   the per-access fallback inside feed_nest_fast. *)
let test_kernel_equivalence () =
  let open Mlc_ir in
  let cases =
    [
      ("jacobi64", Mlc_kernels.Livermore.jacobi 64);
      ("expl48", Mlc_kernels.Livermore.expl 48);
      ("dot512", Mlc_kernels.Livermore.dot 512);
      ("irr40", Mlc_kernels.Livermore.irr 40);
      ("adi32", Mlc_kernels.Livermore.adi 32);
    ]
  in
  List.iter
    (fun (name, program) ->
      List.iter
        (fun machine ->
          let layout = Layout.initial program in
          let reference = Interp.run ~backend:`Reference machine layout program in
          let fast = Interp.run ~backend:`Fast machine layout program in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" name machine.Cs.Machine.name)
            true
            (reference = fast))
        [ Cs.Machine.ultrasparc; Cs.Machine.alpha21164 ])
    cases

let () =
  Alcotest.run "differential"
    [
      ( "oracle",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_trace_equivalence;
            prop_block_equivalence;
            prop_compact_replay;
            prop_sweep_matches_levels;
          ] );
      ( "kernels",
        [ Alcotest.test_case "Interp fast = reference" `Quick test_kernel_equivalence ] );
    ]
