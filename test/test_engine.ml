(* The parallel experiment engine: pool semantics (deterministic merge,
   failure propagation), cache round-trips and key invalidation,
   parallel-vs-sequential determinism on a real sweep, and the algebraic
   law (associative + commutative merge) the engine's result merging
   relies on. *)

module Cs = Mlc_cachesim
module E = Mlc_engine
module L = Locality

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    let rec go path =
      if Sys.is_directory path then begin
        Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    go dir
  end

(* A small but real sweep: two kernels, two sizes, two strategies. *)
let sweep_specs () =
  List.concat_map
    (fun name ->
      List.concat_map
        (fun n ->
          List.map
            (fun s ->
              E.Job.simulate ~layout:(E.Job.Strategy s)
                (E.Job.Registry { name; n = Some n }))
            [ L.Pipeline.Original; L.Pipeline.Grouppad_l1 ])
        [ 64; 72 ])
    [ "JACOBI512"; "EXPL512" ]
  |> Array.of_list

let check_results_equal msg (a : E.Job.result array) (b : E.Job.result array) =
  Alcotest.(check int) (msg ^ ": count") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (ra : E.Job.result) ->
      let rb = b.(i) in
      Alcotest.(check string) (msg ^ ": key") ra.E.Job.key rb.E.Job.key;
      Alcotest.(check int)
        (msg ^ ": refs")
        ra.E.Job.interp.Mlc_ir.Interp.total_refs
        rb.E.Job.interp.Mlc_ir.Interp.total_refs;
      Alcotest.(check (list int))
        (msg ^ ": misses")
        ra.E.Job.interp.Mlc_ir.Interp.misses
        rb.E.Job.interp.Mlc_ir.Interp.misses;
      Alcotest.(check (float 0.0))
        (msg ^ ": cycles")
        ra.E.Job.interp.Mlc_ir.Interp.cycles
        rb.E.Job.interp.Mlc_ir.Interp.cycles;
      List.iter2
        (fun sa sb ->
          Alcotest.(check bool) (msg ^ ": level stats") true (Cs.Stats.equal sa sb))
        ra.E.Job.level_stats rb.E.Job.level_stats)
    a

(* --- pool ----------------------------------------------------------------- *)

let test_pool_order () =
  let items = Array.init 100 (fun i -> i) in
  let out = E.Pool.map ~jobs:4 (fun ~worker:_ x -> x * x) items in
  Array.iteri
    (fun i y -> Alcotest.(check int) "square in order" (i * i) y)
    out;
  (* jobs beyond the item count are clamped, not spawned *)
  let out = E.Pool.map ~jobs:64 (fun ~worker:_ x -> x + 1) [| 1; 2 |] in
  Alcotest.(check (array int)) "clamped" [| 2; 3 |] out

exception Boom

let test_pool_failure () =
  (* A failing element must fail the whole run (not hang, not return),
     with the original exception. *)
  let items = Array.init 50 (fun i -> i) in
  let raised =
    match
      E.Pool.map ~jobs:4
        (fun ~worker:_ x -> if x = 37 then raise Boom else x)
        items
    with
    | _ -> false
    | exception Boom -> true
  in
  Alcotest.(check bool) "Boom propagated" true raised

let test_engine_failure () =
  (* Same through Engine.run, with a spec that fails to resolve. *)
  let specs =
    Array.append (sweep_specs ())
      [|
        E.Job.simulate ~layout:E.Job.Initial
          (E.Job.Registry { name = "NO_SUCH_KERNEL"; n = None });
      |]
  in
  let raised =
    match E.Engine.run ~jobs:4 specs with
    | _ -> false
    | exception E.Job.Spec_error _ -> true
  in
  Alcotest.(check bool) "Spec_error propagated" true raised

(* --- determinism ---------------------------------------------------------- *)

let test_parallel_deterministic () =
  let sequential = E.Engine.run ~jobs:1 (sweep_specs ()) in
  let parallel = E.Engine.run ~jobs:4 (sweep_specs ()) in
  check_results_equal "jobs=4 vs jobs=1" sequential parallel

(* --- cache ---------------------------------------------------------------- *)

let test_cache_roundtrip () =
  let dir = tmpdir "mlc_cache_rt" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let specs = sweep_specs () in
      let cold_cache = E.Cache.open_ ~dir ~version:"v1" () in
      let cold_progress = E.Progress.create ~live:false ~jobs:2 () in
      let cold = E.Engine.run ~cache:cold_cache ~progress:cold_progress ~jobs:2 specs in
      Alcotest.(check int) "cold run has no hits" 0
        (E.Progress.cache_hits cold_progress);
      let warm_cache = E.Cache.open_ ~dir ~version:"v1" () in
      let warm_progress = E.Progress.create ~live:false ~jobs:2 () in
      let warm = E.Engine.run ~cache:warm_cache ~progress:warm_progress ~jobs:2 specs in
      Alcotest.(check int) "warm run is all hits" (Array.length specs)
        (E.Progress.cache_hits warm_progress);
      Alcotest.(check int) "warm run streams no refs" 0
        (E.Progress.refs_streamed warm_progress);
      check_results_equal "warm vs cold" cold warm)

let test_cache_stale_key () =
  let dir = tmpdir "mlc_cache_stale" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let spec =
        E.Job.simulate ~layout:E.Job.Initial
          (E.Job.Registry { name = "JACOBI512"; n = Some 64 })
      in
      let v1 = E.Cache.open_ ~dir ~version:"v1" () in
      let result = E.Job.execute spec in
      E.Cache.store v1 spec result;
      Alcotest.(check bool) "hit under the writing version" true
        (E.Cache.find v1 spec <> None);
      (* A model change (new version) re-keys everything: the old entry
         is simply never addressed again. *)
      let v2 = E.Cache.open_ ~dir ~version:"v2" () in
      Alcotest.(check bool) "stale version misses" true
        (E.Cache.find v2 spec = None);
      (* Explicit invalidation drops the key. *)
      E.Cache.invalidate v1 spec;
      Alcotest.(check bool) "invalidated key misses" true
        (E.Cache.find v1 spec = None);
      (* A corrupt entry reads as a miss, not as a wrong result. *)
      E.Cache.store v1 spec result;
      let path =
        Filename.concat
          (Filename.concat dir (String.sub (E.Cache.key v1 spec) 0 2))
          (E.Cache.key v1 spec ^ ".bin")
      in
      let oc = open_out_bin path in
      output_string oc "garbage";
      close_out oc;
      Alcotest.(check bool) "corrupt entry misses" true
        (E.Cache.find v1 spec = None))

let test_cache_key_scheme () =
  let dir = tmpdir "mlc_cache_key" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c = E.Cache.open_ ~dir ~version:"v1" () in
      let spec n strategy =
        E.Job.simulate ~layout:(E.Job.Strategy strategy)
          (E.Job.Registry { name = "EXPL512"; n = Some n })
      in
      let k = E.Cache.key c (spec 64 L.Pipeline.Original) in
      Alcotest.(check string) "key is stable" k
        (E.Cache.key c (spec 64 L.Pipeline.Original));
      Alcotest.(check bool) "size changes the key" true
        (k <> E.Cache.key c (spec 72 L.Pipeline.Original));
      Alcotest.(check bool) "strategy changes the key" true
        (k <> E.Cache.key c (spec 64 L.Pipeline.Grouppad_l1)))

(* --- Stats.add ------------------------------------------------------------ *)

let arb_stats =
  let open QCheck in
  map
    (fun (a, h) ->
      let s = Cs.Stats.create () in
      s.Cs.Stats.accesses <- a + h;
      s.Cs.Stats.hits <- h;
      s.Cs.Stats.misses <- a;
      s)
    (pair (int_range 0 10_000) (int_range 0 10_000))

let prop_add_assoc_comm =
  QCheck.Test.make ~name:"Stats.add associative + commutative" ~count:300
    (QCheck.triple arb_stats arb_stats arb_stats)
    (fun (a, b, c) ->
      let open Cs.Stats in
      equal (add a (add b c)) (add (add a b) c)
      && equal (add a b) (add b a)
      && equal (add a (zero ())) (add (zero ()) a))

let prop_merge_order_independent =
  QCheck.Test.make
    ~name:"merge totals independent of fold order and permutation" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 20) arb_stats) (int_bound 1000))
    (fun (stats, seed) ->
      let open Cs.Stats in
      let left = List.fold_left add (zero ()) stats in
      let right = List.fold_right add stats (zero ()) in
      let shuffled =
        let arr = Array.of_list stats in
        let st = Random.State.make [| seed |] in
        for i = Array.length arr - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let t = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- t
        done;
        Array.fold_left add (zero ()) arr
      in
      equal left right && equal left shuffled)

(* --- merged stats through the engine -------------------------------------- *)

let test_merged_stats () =
  let results = E.Engine.run ~jobs:4 (sweep_specs ()) in
  let merged = E.Engine.merged_stats results in
  let total_refs =
    Array.fold_left
      (fun acc (r : E.Job.result) ->
        acc + r.E.Job.interp.Mlc_ir.Interp.total_refs)
      0 results
  in
  match merged with
  | l1 :: _ ->
      Alcotest.(check int) "merged L1 accesses = summed refs" total_refs
        l1.Cs.Stats.accesses
  | [] -> Alcotest.fail "no merged levels"

(* --- golden sweep output ------------------------------------------------ *)

(* `mlc sweep` stdout must be byte-identical however the work is
   scheduled and simulated: worker count, cache state, and backend are
   implementation details that may never leak into results.  Timing and
   progress go to stderr, which this test discards. *)

(* Relative to the test's build directory under `dune runtest`; the
   fallbacks cover running the test executable from the repo root. *)
let mlc_exe =
  List.find_opt Sys.file_exists
    [ "../bin/mlc.exe"; "_build/default/bin/mlc.exe" ]

let capture_stdout cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Buffer.contents buf
  | _ -> Alcotest.fail (Printf.sprintf "command failed: %s" cmd)

let fresh_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mlc_golden_%s_%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let test_golden_sweep () =
  let mlc_exe =
    match mlc_exe with
    | Some exe -> exe
    | None -> Alcotest.fail "mlc.exe not built (missing test dependency)"
  in
  let base = mlc_exe ^ " sweep JACOBI512 --lo 64 --hi 80 --step 8" in
  let cache_fast = fresh_dir "fast" and cache_ref = fresh_dir "ref" in
  let variants =
    [
      ("jobs=1 no-cache fast", " --jobs 1 --no-cache");
      ("jobs=4 no-cache fast", " --jobs 4 --no-cache");
      ("jobs=4 cold cache fast", " --jobs 4 --cache-dir " ^ cache_fast);
      ("jobs=1 warm cache fast", " --jobs 1 --cache-dir " ^ cache_fast);
      ("jobs=1 no-cache reference", " --jobs 1 --no-cache --backend reference");
      ( "jobs=4 cold cache reference",
        " --jobs 4 --backend reference --cache-dir " ^ cache_ref );
    ]
  in
  let outputs =
    List.map (fun (label, args) -> (label, capture_stdout (base ^ args))) variants
  in
  match outputs with
  | [] -> assert false
  | (_, golden) :: rest ->
      Alcotest.(check bool) "golden output non-empty" true (String.length golden > 0);
      List.iter
        (fun (label, out) ->
          Alcotest.(check string) (label ^ " matches golden") golden out)
        rest

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "deterministic order" `Quick test_pool_order;
          Alcotest.test_case "failure fails the run" `Quick test_pool_failure;
          Alcotest.test_case "spec failure through engine" `Quick
            test_engine_failure;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel = sequential" `Slow
            test_parallel_deterministic;
          Alcotest.test_case "merged stats" `Slow test_merged_stats;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round-trip, second run all hits" `Slow
            test_cache_roundtrip;
          Alcotest.test_case "stale keys and invalidation" `Quick
            test_cache_stale_key;
          Alcotest.test_case "key scheme" `Quick test_cache_key_scheme;
        ] );
      ( "stats",
        List.map QCheck_alcotest.to_alcotest
          [ prop_add_assoc_comm; prop_merge_order_independent ] );
      ( "golden",
        [
          Alcotest.test_case "sweep stdout stable across jobs/cache/backend"
            `Slow test_golden_sweep;
        ] );
    ]
