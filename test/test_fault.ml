(* Fault injection and resilience: per-cell error isolation under
   `Collect`, retry-then-succeed with its counters, deadline timeouts,
   corrupt-entry quarantine and recompute, engine-level resume from the
   cache after a partial failure, cache verify/gc maintenance, the CLI
   resume path (crash -> collect -> --resume -> byte-identical output),
   and the property that with no faults installed `Collect`,
   `Fail_fast` and plain Engine.run agree for any worker count. *)

module Cs = Mlc_cachesim
module E = Mlc_engine
module L = Locality
module Obs = Mlc_obs.Obs

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    let rec go path =
      if Sys.is_directory path then begin
        Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    go dir
  end

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Rules are process-global state; every test restores the clean slate
   even when its body fails. *)
let with_rules rules f =
  E.Fault.set_rules rules;
  Fun.protect ~finally:(fun () -> E.Fault.set_rules []) f

let counter buf name =
  match List.assoc_opt name (Obs.Buf.counters buf) with Some v -> v | None -> 0

(* Two kernels, two sizes, two strategies: canonical specs contain
   "jacobi512" / "expl512" and "n=64" / "n=72" to target rules at. *)
let sweep_specs () =
  List.concat_map
    (fun name ->
      List.concat_map
        (fun n ->
          List.map
            (fun s ->
              E.Job.simulate ~layout:(E.Job.Strategy s)
                (E.Job.Registry { name; n = Some n }))
            [ L.Pipeline.Original; L.Pipeline.Grouppad_l1 ])
        [ 64; 72 ])
    [ "JACOBI512"; "EXPL512" ]
  |> Array.of_list

let spec1 ?(n = 64) () =
  E.Job.simulate ~layout:(E.Job.Strategy L.Pipeline.Grouppad_l1)
    (E.Job.Registry { name = "JACOBI512"; n = Some n })

(* --- collect isolates failing cells --------------------------------------- *)

let test_collect_isolation () =
  with_rules [ { E.Fault.pattern = "expl512"; kind = E.Fault.Crash } ]
  @@ fun () ->
  let specs = sweep_specs () in
  let slots = E.Engine.run_collect ~jobs:4 specs in
  Array.iteri
    (fun i slot ->
      let crashes = contains (E.Job.canonical specs.(i)) "expl512" in
      match slot with
      | Some (Error f) ->
          Alcotest.(check bool) "only crash cells fail" true crashes;
          Alcotest.(check bool)
            "failure carries the injected exception" true
            (match f.E.Fault.exn with E.Fault.Injected _ -> true | _ -> false)
      | Some (Ok _) ->
          Alcotest.(check bool) "healthy cells complete" false crashes
      | None -> Alcotest.fail "collect must run every cell")
    slots;
  (* The same sweep through fail-fast Engine.run raises the injection. *)
  let raised =
    match E.Engine.run ~jobs:4 specs with
    | _ -> false
    | exception E.Fault.Injected _ -> true
  in
  Alcotest.(check bool) "Engine.run re-raises the injected crash" true raised

(* --- retry-then-succeed ---------------------------------------------------- *)

let test_retry_then_succeed () =
  with_rules [ { E.Fault.pattern = "n=64"; kind = E.Fault.Flaky 2 } ]
  @@ fun () ->
  let buf = Obs.Buf.create ~tid:0 () in
  let results =
    E.Engine.run ~obs:buf
      ~retry:(E.Fault.policy ~retries:3 ~backoff:0.001 ())
      ~jobs:1 [| spec1 () |]
  in
  Alcotest.(check int) "job succeeded" 1 (Array.length results);
  Alcotest.(check int) "two retries counted" 2 (counter buf "engine.retries");
  Alcotest.(check int) "no failure counted" 0 (counter buf "engine.failures")

(* --- deadline timeouts ----------------------------------------------------- *)

let test_deadline_timeout () =
  with_rules [ { E.Fault.pattern = "n=64"; kind = E.Fault.Slow 0.05 } ]
  @@ fun () ->
  let buf = Obs.Buf.create ~tid:0 () in
  let slots =
    E.Engine.run_collect ~obs:buf
      ~retry:(E.Fault.policy ~deadline:0.005 ())
      ~jobs:1 [| spec1 () |]
  in
  (match slots.(0) with
  | Some (Error f) ->
      Alcotest.(check bool) "failure is a timeout" true f.E.Fault.timed_out
  | _ -> Alcotest.fail "overrunning cell must fail");
  Alcotest.(check int) "timeout counted" 1 (counter buf "engine.timeouts");
  Alcotest.(check int) "failure counted" 1 (counter buf "engine.failures")

(* --- corrupt entry: quarantined, recomputed -------------------------------- *)

let test_corrupt_quarantine () =
  let dir = tmpdir "mlc_fault_corrupt" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let spec = spec1 () in
      let first =
        with_rules [ { E.Fault.pattern = "n=64"; kind = E.Fault.Corrupt } ]
        @@ fun () ->
        let c = E.Cache.open_ ~dir ~version:"v1" () in
        E.Engine.run ~cache:c ~jobs:1 [| spec |]
      in
      (* The stored entry was truncated right after the store; the next
         run must quarantine it and recompute, not crash or mis-read. *)
      let c = E.Cache.open_ ~dir ~version:"v1" () in
      let buf = Obs.Buf.create ~tid:0 () in
      let second = E.Engine.run ~cache:c ~obs:buf ~jobs:1 [| spec |] in
      Alcotest.(check int) "handle counted the quarantine" 1
        (E.Cache.quarantined c);
      Alcotest.(check int) "obs counted the quarantine" 1
        (counter buf "engine.cache.quarantined");
      Alcotest.(check bool) "quarantine dir holds the damaged entry" true
        (Sys.file_exists (E.Cache.quarantine_dir c)
        && Array.length (Sys.readdir (E.Cache.quarantine_dir c)) = 1);
      Alcotest.(check string) "recomputed result matches" first.(0).E.Job.key
        second.(0).E.Job.key;
      (* The recomputed store is intact: a third open is a clean hit. *)
      let c3 = E.Cache.open_ ~dir ~version:"v1" () in
      Alcotest.(check bool) "re-stored entry readable" true
        (E.Cache.find c3 spec <> None))

(* --- resume recomputes only the missing cells ------------------------------ *)

let test_resume_only_missing () =
  let dir = tmpdir "mlc_fault_resume" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let specs = sweep_specs () in
      let failed =
        with_rules [ { E.Fault.pattern = "expl512"; kind = E.Fault.Crash } ]
        @@ fun () ->
        let c = E.Cache.open_ ~dir ~version:"v1" () in
        let slots = E.Engine.run_collect ~cache:c ~jobs:2 specs in
        Array.fold_left
          (fun n -> function Some (Error _) -> n + 1 | _ -> n)
          0 slots
      in
      Alcotest.(check int) "half the sweep failed" 4 failed;
      (* Faults cleared: a plain re-run replays the completed half from
         the cache and computes only what is missing. *)
      let c = E.Cache.open_ ~dir ~version:"v1" () in
      let progress = E.Progress.create ~live:false ~jobs:2 () in
      let results = E.Engine.run ~cache:c ~progress ~jobs:2 specs in
      Alcotest.(check int) "every cell resolved" 8 (Array.length results);
      Alcotest.(check int) "completed cells replay from cache" 4
        (E.Progress.cache_hits progress))

(* --- cache maintenance: verify and gc -------------------------------------- *)

let test_cache_verify_gc () =
  let dir = tmpdir "mlc_fault_verify" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c = E.Cache.open_ ~dir ~version:"v1" () in
      let specs = [| spec1 ~n:64 (); spec1 ~n:72 (); spec1 ~n:80 () |] in
      Array.iter (fun s -> E.Cache.store c s (E.Job.execute s)) specs;
      E.Cache.corrupt c specs.(1);
      let r = E.Cache.verify c in
      Alcotest.(check int) "checked all" 3 r.E.Cache.checked;
      Alcotest.(check int) "two intact" 2 r.E.Cache.intact;
      Alcotest.(check int) "one damaged" 1 r.E.Cache.damaged;
      let s = E.Cache.disk_stats c in
      Alcotest.(check int) "damaged entry quarantined" 1 s.E.Cache.quarantined_files;
      Alcotest.(check int) "intact entries remain" 2 s.E.Cache.entries;
      let g = E.Cache.gc c in
      Alcotest.(check int) "gc removed the quarantined file" 1 g.E.Cache.removed_files;
      Alcotest.(check int) "entries survive plain gc" 2
        (E.Cache.disk_stats c).E.Cache.entries;
      let _ = E.Cache.gc ~all:true c in
      Alcotest.(check int) "gc --all empties the cache" 0
        (E.Cache.disk_stats c).E.Cache.entries)

(* --- CLI: crash under collect, then --resume is byte-identical -------------- *)

let mlc_exe =
  List.find_opt Sys.file_exists
    [ "../bin/mlc.exe"; "_build/default/bin/mlc.exe" ]

let run_cmd cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (Buffer.contents buf, status)

let test_cli_collect_resume () =
  let exe =
    match mlc_exe with
    | Some exe -> exe
    | None -> Alcotest.fail "mlc.exe not built (missing test dependency)"
  in
  let d_crash = tmpdir "mlc_fault_cli" and d_full = tmpdir "mlc_fault_cli_full" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf d_crash;
      rm_rf d_full)
    (fun () ->
      let base =
        Printf.sprintf
          "%s sweep JACOBI512 --lo 64 --hi 80 --step 8 --strategies grouppad \
           --jobs 2"
          exe
      in
      let crashed, st =
        run_cmd
          (Printf.sprintf "MLC_FAULTS='crash:n=80' %s --error-policy collect --cache-dir %s"
             base d_crash)
      in
      Alcotest.(check bool) "collect sweep with a crash exits non-zero" true
        (st = Unix.WEXITED 1);
      Alcotest.(check bool) "failed cell marked in the table" true
        (contains crashed "FAILED");
      let resumed, st =
        run_cmd (Printf.sprintf "%s --resume --cache-dir %s" base d_crash)
      in
      Alcotest.(check bool) "resume completes cleanly" true
        (st = Unix.WEXITED 0);
      let full, st =
        run_cmd (Printf.sprintf "%s --cache-dir %s" base d_full)
      in
      Alcotest.(check bool) "uninterrupted run succeeds" true
        (st = Unix.WEXITED 0);
      Alcotest.(check string) "resumed output is byte-identical" full resumed)

(* --- property: no faults => collect = fail-fast = run, any jobs ------------- *)

let small_specs () =
  List.map
    (fun (n, s) ->
      E.Job.simulate ~layout:(E.Job.Strategy s)
        (E.Job.Registry { name = "JACOBI512"; n = Some n }))
    [
      (64, L.Pipeline.Original);
      (64, L.Pipeline.Grouppad_l1);
      (72, L.Pipeline.Original);
      (72, L.Pipeline.Grouppad_l1);
    ]
  |> Array.of_list

let slot_key = function
  | Some (Ok (r : E.Job.result)) ->
      Some (r.E.Job.key, r.E.Job.interp.Mlc_ir.Interp.misses)
  | Some (Error _) | None -> None

let prop_policies_agree =
  QCheck.Test.make ~name:"no faults: collect = fail-fast = run across jobs"
    ~count:4
    QCheck.(int_range 1 4)
    (fun jobs ->
      let specs = small_specs () in
      let plain = E.Engine.run ~jobs specs in
      let collect = E.Engine.run_collect ~jobs specs in
      let fail_fast = E.Engine.run_collect ~stop_on_failure:true ~jobs specs in
      let expect =
        Array.map
          (fun (r : E.Job.result) ->
            Some (r.E.Job.key, r.E.Job.interp.Mlc_ir.Interp.misses))
          plain
      in
      expect = Array.map slot_key collect
      && expect = Array.map slot_key fail_fast)

(* --- parse ------------------------------------------------------------------ *)

let test_parse () =
  let rules = E.Fault.parse "crash:n=80; flaky:jacobi:2;slow:expl:250;corrupt:n=64" in
  Alcotest.(check int) "four rules" 4 (List.length rules);
  (match rules with
  | [ a; b; c; d ] ->
      Alcotest.(check bool) "crash" true (a.E.Fault.kind = E.Fault.Crash);
      Alcotest.(check bool) "flaky" true (b.E.Fault.kind = E.Fault.Flaky 2);
      Alcotest.(check bool) "slow is seconds" true
        (c.E.Fault.kind = E.Fault.Slow 0.25);
      Alcotest.(check bool) "corrupt" true (d.E.Fault.kind = E.Fault.Corrupt)
  | _ -> Alcotest.fail "rule shapes");
  let malformed =
    match E.Fault.parse "flaky:jacobi" with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "malformed rule rejected" true malformed

let () =
  Alcotest.run "fault"
    [
      ( "inject",
        [
          Alcotest.test_case "rule parsing" `Quick test_parse;
          Alcotest.test_case "collect isolates crashing cells" `Slow
            test_collect_isolation;
          Alcotest.test_case "flaky cell retries then succeeds" `Quick
            test_retry_then_succeed;
          Alcotest.test_case "deadline overrun times out" `Quick
            test_deadline_timeout;
        ] );
      ( "cache",
        [
          Alcotest.test_case "corrupt entry quarantined and recomputed" `Quick
            test_corrupt_quarantine;
          Alcotest.test_case "verify and gc" `Quick test_cache_verify_gc;
        ] );
      ( "resume",
        [
          Alcotest.test_case "re-run computes only missing cells" `Slow
            test_resume_only_missing;
          Alcotest.test_case "CLI collect crash then --resume byte-identical"
            `Slow test_cli_collect_resume;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_policies_agree ] );
    ]
