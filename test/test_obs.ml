(* The observability layer: span/counter semantics in Mlc_obs, Chrome
   export validated by the same checker CI runs, conservation laws tying
   the simulation counters to the reference stream, determinism of the
   engine's buffer merge across worker counts and backends, and the
   Pass-pipeline layouts' bit-identity with the historical per-module
   compositions. *)

module Cs = Mlc_cachesim
module E = Mlc_engine
module K = Mlc_kernels
module L = Locality
module Obs = Mlc_obs.Obs
module Tc = Mlc_obs.Trace_check
open Mlc_ir

(* --- span and counter model ----------------------------------------------- *)

let test_span_model () =
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  Alcotest.(check int) "disabled with_span is pass-through" 42
    (Obs.with_span "nothing" (fun () -> 42));
  Obs.count "dropped";
  Obs.instant "dropped";
  let buf = Obs.Buf.create ~tid:3 () in
  let r =
    Obs.with_buf buf (fun () ->
        Alcotest.(check bool) "enabled under with_buf" true (Obs.enabled ());
        Obs.with_span ~cat:"t" "outer" (fun () ->
            Obs.count ~n:2 "c.x";
            Obs.with_span "inner" (fun () ->
                Obs.instant "tick";
                Obs.count "c.x";
                Obs.count "c.y");
            Alcotest.(check int) "inner span closed" 1 (Obs.Buf.depth buf);
            7))
  in
  Alcotest.(check bool) "disabled again after with_buf" false (Obs.enabled ());
  Alcotest.(check int) "with_span returns the body's value" 7 r;
  Alcotest.(check int) "all spans closed" 0 (Obs.Buf.depth buf);
  Alcotest.(check (list (pair string int)))
    "counter totals, sorted"
    [ ("c.x", 3); ("c.y", 1) ]
    (Obs.Buf.counters buf);
  Alcotest.(check int) "single counter" 3 (Obs.Buf.counter buf "c.x");
  Alcotest.(check int) "absent counter" 0 (Obs.Buf.counter buf "nope");
  (* 2 begins + 2 ends + 1 instant + 3 samples *)
  Alcotest.(check int) "event count" 8 (Obs.Buf.n_events buf);
  (* timestamps never go backwards within a buffer *)
  ignore
    (List.fold_left
       (fun prev (e : Obs.event) ->
         Alcotest.(check bool) "monotone ts" true (e.Obs.ts >= prev);
         e.Obs.ts)
       0 (Obs.Buf.events buf))

let test_span_exception_safe () =
  let buf = Obs.Buf.create () in
  (match
     Obs.with_buf buf (fun () ->
         Obs.with_span "boom" (fun () -> raise Exit))
   with
  | () -> Alcotest.fail "Exit swallowed"
  | exception Exit -> ());
  Alcotest.(check int) "span closed on raise" 0 (Obs.Buf.depth buf);
  Alcotest.(check bool) "buffer uninstalled on raise" false (Obs.enabled ())

(* --- Chrome export and the validator -------------------------------------- *)

let with_temp_file tag f =
  let path = Filename.temp_file ("mlc_obs_" ^ tag) ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let sink_to_file sink buf path =
  let oc = open_out path in
  Obs.Sink.write (sink oc) buf;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Mimics the engine: a worker buffer on its own lane, merged into the
   main buffer while the main buffer's top span is still open.  The
   exported trace must still be globally ts-sorted with matched B/E
   pairs per lane. *)
let merged_buffer () =
  let dst = Obs.Buf.create ~tid:0 () in
  Obs.with_buf dst (fun () ->
      Obs.with_span ~cat:"cli" "top" (fun () ->
          Obs.count ~n:5 "top.counter";
          let w = Obs.Buf.create ~tid:1 () in
          Obs.with_buf w (fun () ->
              Obs.with_span ~cat:"job" "job:0" (fun () ->
                  Obs.instant ~cat:"decision" "chose";
                  Obs.count ~n:3 "job.counter"));
          Obs.Buf.merge ~into:dst w));
  dst

let test_chrome_roundtrip () =
  let dst = merged_buffer () in
  Alcotest.(check int) "merge adds counters" 3
    (Obs.Buf.counter dst "job.counter");
  Alcotest.(check int) "merge keeps counters" 5
    (Obs.Buf.counter dst "top.counter");
  with_temp_file "chrome" (fun path ->
      sink_to_file Obs.Sink.chrome dst path;
      match Tc.validate_file path with
      | Error errs -> Alcotest.fail (String.concat "; " errs)
      | Ok s ->
          Alcotest.(check int) "events" (Obs.Buf.n_events dst) s.Tc.events;
          Alcotest.(check int) "spans" 2 s.Tc.spans;
          Alcotest.(check int) "counter samples" 2 s.Tc.counters;
          Alcotest.(check int) "instants" 1 s.Tc.instants;
          Alcotest.(check int) "lanes" 2 s.Tc.tids)

let test_other_sinks () =
  let dst = merged_buffer () in
  with_temp_file "pretty" (fun path ->
      sink_to_file Obs.Sink.pretty dst path;
      Alcotest.(check bool) "pretty output non-empty" true
        (String.length (read_file path) > 0));
  with_temp_file "jsonl" (fun path ->
      sink_to_file Obs.Sink.jsonl dst path;
      let lines =
        String.split_on_char '\n' (String.trim (read_file path))
      in
      Alcotest.(check int) "one JSON line per event" (Obs.Buf.n_events dst)
        (List.length lines));
  (* the null sink accepts anything *)
  Obs.Sink.write Obs.Sink.null dst

let test_validator_accepts_minimal () =
  let ok =
    {|{"traceEvents": [
        {"ph": "B", "name": "s", "cat": "t", "ts": 1, "pid": 1, "tid": 0},
        {"ph": "i", "name": "p", "ts": 2, "pid": 1, "tid": 0, "s": "t"},
        {"ph": "C", "name": "c", "ts": 3, "pid": 1, "tid": 0,
         "args": {"value": 7}},
        {"ph": "E", "name": "s", "ts": 4, "pid": 1, "tid": 0}
      ]}|}
  in
  match Tc.validate_string ok with
  | Error errs -> Alcotest.fail (String.concat "; " errs)
  | Ok s ->
      Alcotest.(check int) "events" 4 s.Tc.events;
      Alcotest.(check int) "spans" 1 s.Tc.spans;
      Alcotest.(check int) "counters" 1 s.Tc.counters;
      Alcotest.(check int) "instants" 1 s.Tc.instants;
      Alcotest.(check int) "lanes" 1 s.Tc.tids

let test_validator_rejects () =
  let bad =
    [
      ( "mismatched E name",
        {|{"traceEvents": [
            {"ph": "B", "name": "a", "ts": 0, "pid": 1, "tid": 0},
            {"ph": "E", "name": "b", "ts": 1, "pid": 1, "tid": 0}]}|} );
      ( "unclosed span",
        {|{"traceEvents": [
            {"ph": "B", "name": "a", "ts": 0, "pid": 1, "tid": 0}]}|} );
      ( "E without B",
        {|{"traceEvents": [
            {"ph": "E", "name": "a", "ts": 0, "pid": 1, "tid": 0}]}|} );
      ( "ts goes backwards",
        {|{"traceEvents": [
            {"ph": "i", "name": "a", "ts": 5, "pid": 1, "tid": 0},
            {"ph": "i", "name": "b", "ts": 3, "pid": 1, "tid": 0}]}|} );
      ( "negative ts",
        {|{"traceEvents": [
            {"ph": "i", "name": "a", "ts": -1, "pid": 1, "tid": 0}]}|} );
      ( "counter without value",
        {|{"traceEvents": [
            {"ph": "C", "name": "c", "ts": 0, "pid": 1, "tid": 0,
             "args": {}}]}|} );
      ( "unknown phase",
        {|{"traceEvents": [
            {"ph": "Q", "name": "a", "ts": 0, "pid": 1, "tid": 0}]}|} );
      ( "missing ts",
        {|{"traceEvents": [
            {"ph": "i", "name": "a", "pid": 1, "tid": 0}]}|} );
      ("no traceEvents", {|{"foo": 1}|});
      ("JSON syntax error", "{nope");
    ]
  in
  List.iter
    (fun (label, s) ->
      match Tc.validate_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (label ^ ": accepted"))
    bad

(* --- engine merge determinism --------------------------------------------- *)

(* Same sweep test_engine uses: two kernels, two sizes, two strategies. *)
let sweep_specs ?backend () =
  List.concat_map
    (fun name ->
      List.concat_map
        (fun n ->
          List.map
            (fun s ->
              E.Job.simulate ?backend ~layout:(E.Job.Strategy s)
                (E.Job.Registry { name; n = Some n }))
            [ L.Pipeline.Original; L.Pipeline.Grouppad_l1 ])
        [ 64; 72 ])
    [ "JACOBI512"; "EXPL512" ]
  |> Array.of_list

let run_counters ~jobs specs =
  let buf = Obs.Buf.create () in
  let (_ : E.Job.result array) = E.Engine.run ~obs:buf ~jobs specs in
  Obs.Buf.counters buf

let test_counters_jobs_invariant () =
  (* No cache: cache-hit counters depend on cache state, everything else
     is a pure function of the specs. *)
  let sequential = run_counters ~jobs:1 (sweep_specs ()) in
  let parallel = run_counters ~jobs:4 (sweep_specs ()) in
  Alcotest.(check (list (pair string int)))
    "counters identical across --jobs 1 and --jobs 4" sequential parallel;
  let lookup name = List.assoc_opt name parallel in
  Alcotest.(check (option int)) "one engine.jobs per spec" (Some 8)
    (lookup "engine.jobs");
  Alcotest.(check (option int)) "all misses without a cache" (Some 8)
    (lookup "engine.cache.misses");
  Alcotest.(check (option int)) "no hits without a cache" None
    (lookup "engine.cache.hits")

let sim_level_counters counters =
  List.filter
    (fun (name, _) ->
      name = "sim.refs"
      || (String.length name >= 5 && String.sub name 0 5 = "sim.L"))
    counters

let test_counters_backend_invariant () =
  (* The fast simulator must account exactly like the reference cascade;
     only its private sim.fast.* counters may differ (the reference
     backend has none). *)
  let fast = run_counters ~jobs:2 (sweep_specs ~backend:`Fast ()) in
  let reference = run_counters ~jobs:2 (sweep_specs ~backend:`Reference ()) in
  Alcotest.(check (list (pair string int)))
    "per-level counters identical across backends"
    (sim_level_counters reference) (sim_level_counters fast);
  Alcotest.(check bool) "fast backend reports bulk segments" true
    (List.mem_assoc "sim.fast.bulk_segments" fast)

(* --- conservation --------------------------------------------------------- *)

let test_counter_conservation () =
  let spec =
    E.Job.simulate ~layout:E.Job.Initial
      (E.Job.Registry { name = "JACOBI512"; n = Some 64 })
  in
  let buf = Obs.Buf.create () in
  let results = E.Engine.run ~obs:buf ~jobs:1 [| spec |] in
  let c name = Obs.Buf.counter buf name in
  let total_refs = results.(0).E.Job.interp.Interp.total_refs in
  (* sim.refs = the job's reference count = the naive trace length *)
  Alcotest.(check int) "sim.refs = result refs" total_refs (c "sim.refs");
  let program =
    match (K.Registry.find "JACOBI512").K.Registry.build_sized with
    | Some f -> f 64
    | None -> Alcotest.fail "JACOBI512 not size-parameterized"
  in
  let trace_len = Array.length (Interp.trace (Layout.initial program) program) in
  Alcotest.(check int) "sim.refs = trace length" trace_len (c "sim.refs");
  (* every reference enters L1 *)
  Alcotest.(check int) "sim.L1.accesses = sim.refs" (c "sim.refs")
    (c "sim.L1.accesses");
  (* per level: accesses split into hits and misses; misses cascade *)
  let levels = List.length results.(0).E.Job.level_stats in
  for i = 1 to levels do
    let l suffix = c (Printf.sprintf "sim.L%d.%s" i suffix) in
    Alcotest.(check bool)
      (Printf.sprintf "L%d sees traffic" i)
      true
      (l "accesses" > 0);
    Alcotest.(check int)
      (Printf.sprintf "L%d hits+misses = accesses" i)
      (l "accesses")
      (l "hits" + l "misses");
    if i < levels then
      Alcotest.(check int)
        (Printf.sprintf "L%d accesses = L%d misses" (i + 1) i)
        (l "misses")
        (c (Printf.sprintf "sim.L%d.accesses" (i + 1)))
  done

(* --- pass pipeline vs historical composition ------------------------------ *)

(* The pre-Pass Pipeline.layout_for, reconstructed from the individual
   padding modules.  Pipeline.passes must reproduce it bit for bit. *)
let old_layout_for machine strategy program =
  let layout = Layout.initial program in
  let g =
    match machine.Cs.Machine.geometries with
    | g :: _ -> g
    | [] -> invalid_arg "machine without cache levels"
  in
  let s1 = g.Cs.Level.size and l1_line = g.Cs.Level.line in
  let with_intra layout =
    L.Intra_pad.apply ~size:s1 ~line:l1_line program layout
  in
  match strategy with
  | L.Pipeline.Original -> layout
  | L.Pipeline.Pad_l1 ->
      L.Pad.apply ~size:s1 ~line:l1_line program (with_intra layout)
  | L.Pipeline.Pad_multilevel ->
      L.Multilvlpad.apply machine program (with_intra layout)
  | L.Pipeline.Grouppad_l1 ->
      L.Grouppad.apply ~size:s1 ~line:l1_line program (with_intra layout)
  | L.Pipeline.Grouppad_l1_l2 ->
      let layout =
        L.Grouppad.apply ~size:s1 ~line:l1_line program (with_intra layout)
      in
      let l2_size =
        match machine.Cs.Machine.geometries with
        | _ :: g2 :: _ -> g2.Cs.Level.size
        | _ -> s1
      in
      L.Maxpad.apply_l2 ~s1 ~l2_size program layout

let check_layouts_equal msg a b =
  Alcotest.(check (list string))
    (msg ^ ": arrays")
    (Layout.array_names a) (Layout.array_names b);
  List.iter
    (fun name ->
      Alcotest.(check int)
        (Printf.sprintf "%s: %s base" msg name)
        (Layout.base a name) (Layout.base b name);
      Alcotest.(check int)
        (Printf.sprintf "%s: %s pad_before" msg name)
        (Layout.pad_before a name)
        (Layout.pad_before b name);
      Alcotest.(check int)
        (Printf.sprintf "%s: %s intra_pad" msg name)
        (Layout.intra_pad a name)
        (Layout.intra_pad b name))
    (Layout.array_names a);
  Alcotest.(check int)
    (msg ^ ": total_bytes")
    (Layout.total_bytes a) (Layout.total_bytes b)

let test_pass_pipeline_layouts () =
  let programs =
    List.map
      (fun (name, n) ->
        match (K.Registry.find name).K.Registry.build_sized with
        | Some f -> f n
        | None -> Alcotest.fail (name ^ " not size-parameterized"))
      [ ("JACOBI512", 64); ("EXPL512", 64); ("ADI32", 32) ]
  in
  List.iter
    (fun machine ->
      List.iter
        (fun program ->
          List.iter
            (fun strategy ->
              let msg =
                Printf.sprintf "%s/%s/%s" machine.Cs.Machine.name
                  program.Program.name
                  (L.Pipeline.strategy_name strategy)
              in
              check_layouts_equal msg
                (old_layout_for machine strategy program)
                (L.Pipeline.layout_for machine strategy program))
            L.Pipeline.all)
        programs)
    [ Cs.Machine.ultrasparc; Cs.Machine.alpha21164 ]

(* --- golden: mlc simulate --metrics --------------------------------------- *)

let mlc_exe =
  List.find_opt Sys.file_exists
    [ "../bin/mlc.exe"; "_build/default/bin/mlc.exe" ]

let capture_stdout cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Buffer.contents buf
  | _ -> Alcotest.fail (Printf.sprintf "command failed: %s" cmd)

let test_golden_simulate_metrics () =
  let mlc_exe =
    match mlc_exe with
    | Some exe -> exe
    | None -> Alcotest.fail "mlc.exe not built (missing test dependency)"
  in
  let base = mlc_exe ^ " simulate JACOBI512 -n 64" in
  let plain = capture_stdout base in
  let with_metrics = capture_stdout (base ^ " --metrics") in
  (* --metrics appends to stdout; it may not perturb the simulation
     output that precedes it *)
  let marker = "metrics:\n" in
  let split =
    let rec find i =
      if i + String.length marker > String.length with_metrics then
        Alcotest.fail "--metrics output has no metrics section"
      else if String.sub with_metrics i (String.length marker) = marker then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check string) "simulation output unchanged by --metrics" plain
    (String.sub with_metrics 0 split);
  let expected =
    String.concat ""
      (marker
      :: List.map
           (fun (name, v) -> Printf.sprintf "  %-36s %d\n" name v)
           [
             ("pass.pad.decisions", 1);
             ("sim.L1.accesses", 61504);
             ("sim.L1.hits", 40143);
             ("sim.L1.misses", 21361);
             ("sim.L1.writebacks", 9158);
             ("sim.L1.writes", 15376);
             ("sim.L2.accesses", 21361);
             ("sim.L2.hits", 19345);
             ("sim.L2.misses", 2016);
             ("sim.L2.writes", 4836);
             ("sim.refs", 61504);
           ])
  in
  Alcotest.(check string) "golden metrics section" expected
    (String.sub with_metrics split (String.length with_metrics - split))

let () =
  Alcotest.run "obs"
    [
      ( "model",
        [
          Alcotest.test_case "spans, counters, instants" `Quick test_span_model;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "chrome export validates" `Quick
            test_chrome_roundtrip;
          Alcotest.test_case "pretty and jsonl render" `Quick test_other_sinks;
        ] );
      ( "validator",
        [
          Alcotest.test_case "accepts a well-formed trace" `Quick
            test_validator_accepts_minimal;
          Alcotest.test_case "rejects malformed traces" `Quick
            test_validator_rejects;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "counters invariant under --jobs" `Slow
            test_counters_jobs_invariant;
          Alcotest.test_case "counters invariant under backend" `Slow
            test_counters_backend_invariant;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "per-level counter laws" `Slow
            test_counter_conservation;
        ] );
      ( "passes",
        [
          Alcotest.test_case "Pass pipeline = historical layouts" `Quick
            test_pass_pipeline_layouts;
        ] );
      ( "golden",
        [
          Alcotest.test_case "simulate --metrics" `Slow
            test_golden_simulate_metrics;
        ] );
    ]
