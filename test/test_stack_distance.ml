(* Stack-distance analysis: checked against direct simulation of fully
   associative LRU caches — the defining property of the method. *)

module Cs = Mlc_cachesim

(* Case counts scale with QCHECK_COUNT (nightly CI raises it). *)
let qcheck_count default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let check_int = Alcotest.(check int)

let test_simple_trace () =
  (* lines: a b a c b a  (line = 32 bytes) *)
  let trace = [| 0; 32; 0; 64; 32; 0 |] in
  let sd = Cs.Stack_distance.analyze ~line:32 trace in
  check_int "total" 6 (Cs.Stack_distance.total sd);
  check_int "cold" 3 (Cs.Stack_distance.cold sd);
  (* distances: a@2 -> 1 other (b); b@4 -> 2 others (a, c); a@5 -> 2 (c, b) *)
  Alcotest.(check (list (pair int int)))
    "histogram"
    [ (1, 1); (2, 2) ]
    (Cs.Stack_distance.histogram sd);
  (* capacity 2 lines: hits need d+1 <= 2: only the first reuse hits *)
  check_int "misses at 2 lines" 5 (Cs.Stack_distance.misses_at sd ~lines:2);
  check_int "misses at 3 lines" 3 (Cs.Stack_distance.misses_at sd ~lines:3);
  check_int "misses at 1 line" 6 (Cs.Stack_distance.misses_at sd ~lines:1)

let fully_assoc_misses ~line ~lines trace =
  let level = Cs.Level.create { Cs.Level.size = line * lines; line; assoc = lines } in
  Array.iter (fun a -> ignore (Cs.Level.access level a)) trace;
  (Cs.Level.stats level).Cs.Stats.misses

let prop_matches_lru_simulation =
  QCheck.Test.make
    ~name:"misses_at = fully-associative LRU simulation (all capacities)"
    ~count:(qcheck_count 100)
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 300) (int_range 0 4000))
        (int_range 1 5))
    (fun (addrs, log_lines) ->
      let trace = Array.of_list addrs in
      let lines = 1 lsl log_lines in
      let sd = Cs.Stack_distance.analyze ~line:32 trace in
      Cs.Stack_distance.misses_at sd ~lines
      = fully_assoc_misses ~line:32 ~lines trace)

let prop_curve_monotone =
  QCheck.Test.make ~name:"miss curve is non-increasing in capacity" ~count:(qcheck_count 100)
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 10_000))
    (fun addrs ->
      let sd = Cs.Stack_distance.analyze (Array.of_list addrs) in
      let curve =
        Cs.Stack_distance.miss_curve sd ~capacities:[ 1; 2; 4; 8; 16; 32; 64 ]
      in
      let rec mono = function
        | (_, m1) :: ((_, m2) :: _ as rest) -> m1 >= m2 && mono rest
        | _ -> true
      in
      mono curve)

let prop_cold_equals_distinct_lines =
  QCheck.Test.make ~name:"cold misses = distinct lines" ~count:(qcheck_count 100)
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 10_000))
    (fun addrs ->
      let sd = Cs.Stack_distance.analyze ~line:32 (Array.of_list addrs) in
      let distinct = List.sort_uniq compare (List.map (fun a -> a / 32) addrs) in
      Cs.Stack_distance.cold sd = List.length distinct)

let prop_inclusion_monotone =
  (* The defining inclusion property of LRU stacks, checked per access:
     any access that hits a fully-associative LRU cache of S lines also
     hits one of 2S lines fed the same stream. *)
  QCheck.Test.make
    ~name:"per-access inclusion: hits at S lines are hits at 2S lines"
    ~count:(qcheck_count 100)
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 300) (int_range 0 8000))
        (int_range 0 4))
    (fun (addrs, log_lines) ->
      let lines = 1 lsl log_lines in
      let small =
        Cs.Level.create { Cs.Level.size = 32 * lines; line = 32; assoc = lines }
      in
      let big =
        Cs.Level.create
          { Cs.Level.size = 32 * 2 * lines; line = 32; assoc = 2 * lines }
      in
      List.for_all
        (fun addr ->
          let hit_small = Cs.Level.access small addr in
          let hit_big = Cs.Level.access big addr in
          (not hit_small) || hit_big)
        addrs)

let prop_histogram_accounts_every_access =
  (* Every access lands either in the cold count or in exactly one
     histogram bucket, so the two always sum to the trace length. *)
  QCheck.Test.make
    ~name:"cold + histogram total = trace length"
    ~count:(qcheck_count 100)
    QCheck.(list_of_size Gen.(int_range 0 300) (int_range 0 10_000))
    (fun addrs ->
      let trace = Array.of_list addrs in
      let sd = Cs.Stack_distance.analyze ~line:32 trace in
      let hist_total =
        List.fold_left (fun acc (_, n) -> acc + n) 0 (Cs.Stack_distance.histogram sd)
      in
      Cs.Stack_distance.total sd = Array.length trace
      && Cs.Stack_distance.cold sd + hist_total = Array.length trace)

let prop_sweep_histogram_accounts_every_access =
  (* Same conservation law for the per-set sweep in the fast backend. *)
  QCheck.Test.make
    ~name:"Assoc_sweep: cold + histogram total = trace length"
    ~count:(qcheck_count 100)
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 300) (int_range 0 10_000))
        (int_range 0 4))
    (fun (addrs, sets_bits) ->
      let trace = Array.of_list addrs in
      let sweep =
        Cs.Fast_sim.Assoc_sweep.analyze ~line:32 ~n_sets:(1 lsl sets_bits) trace
      in
      let hist_total =
        Array.fold_left ( + ) 0 (Cs.Fast_sim.Assoc_sweep.histogram sweep)
      in
      Cs.Fast_sim.Assoc_sweep.total sweep = Array.length trace
      && Cs.Fast_sim.Assoc_sweep.cold sweep + hist_total = Array.length trace)

let prop_sweep_hits_monotone_in_assoc =
  (* More ways can only catch more reuse at fixed line/set count. *)
  QCheck.Test.make
    ~name:"Assoc_sweep: hits non-decreasing in associativity"
    ~count:(qcheck_count 100)
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 300) (int_range 0 10_000))
        (int_range 0 3))
    (fun (addrs, sets_bits) ->
      let trace = Array.of_list addrs in
      let sweep =
        Cs.Fast_sim.Assoc_sweep.analyze ~line:32 ~n_sets:(1 lsl sets_bits) trace
      in
      let hits = List.map (fun a -> Cs.Fast_sim.Assoc_sweep.hits_at sweep ~assoc:a) in
      let rec mono = function
        | h1 :: (h2 :: _ as rest) -> h1 <= h2 && mono rest
        | _ -> true
      in
      mono (hits [ 1; 2; 4; 8; 16 ]))

let test_kernel_curve_brackets_levels () =
  (* EXPL's reuse is bracketed by the two cache levels: a 16K-worth of
     lines holds much less of the reuse than a 512K-worth. *)
  let p = Mlc_kernels.Livermore.expl 128 in
  let layout = Mlc_ir.Layout.initial p in
  let trace = Mlc_ir.Interp.trace layout p in
  let sd = Cs.Stack_distance.analyze ~line:32 trace in
  let m16k = Cs.Stack_distance.misses_at sd ~lines:(16 * 1024 / 32) in
  let m512k = Cs.Stack_distance.misses_at sd ~lines:(512 * 1024 / 32) in
  Alcotest.(check bool) "bigger cache catches more reuse" true (m512k < m16k);
  Alcotest.(check bool) "cold below both" true (Cs.Stack_distance.cold sd <= m512k)

let () =
  Alcotest.run "stack_distance"
    [
      ( "unit",
        [
          Alcotest.test_case "simple trace" `Quick test_simple_trace;
          Alcotest.test_case "kernel curve brackets levels" `Quick
            test_kernel_curve_brackets_levels;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_lru_simulation;
            prop_curve_monotone;
            prop_cold_equals_distinct_lines;
            prop_inclusion_monotone;
            prop_histogram_accounts_every_access;
            prop_sweep_histogram_accounts_every_access;
            prop_sweep_hits_monotone_in_assoc;
          ] );
    ]
